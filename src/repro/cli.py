"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``
    Run the paper's case study end to end and print the table (with
    simulator ground truth alongside).
``studies``
    Run every boxed-example experiment and print each report.
``import``
    Normalise a measurement CSV and run the IXP study on it
    (``--ixp`` names the exchange; ``--prefix`` may repeat to supply
    its peering-LAN prefixes for hop-IP matching).
``simulate``
    Build a named scenario, generate its speed tests (batched columnar
    path by default), and write the measurement frame to CSV — ready to
    feed back through ``import``.
``validate``
    Parse a DAG file (dagitty-like text) and report identification
    strategies for ``--treatment``/``--outcome``.
``power``
    Placebo-test power analysis for a synthetic-control design: can
    this many donors over this window detect the effect you care about?
``stream``
    Replay a scenario's measurements as a time-ordered feed through the
    incremental study engine (``--batches``/``--batch-hours`` pick the
    split), printing a per-batch progress line and the final table;
    ``--parity-check`` re-runs the batch study on the same measurements
    and fails unless the rows match exactly.
``report``
    Offline profiling analysis of an exported ``--trace`` file: the
    top-K self-time hotspot table, the critical path, optionally the
    span tree, and ``--folded FILE`` writes folded stacks for standard
    flame-graph tooling.
``campaign``
    Run a multi-scenario measurement campaign: a fleet of seeded
    scenario perturbations (``--scenarios N`` for a default fleet, or a
    campaign file path for a declarative one) interleaved on one shared
    worker pool, with the placebo-refit budget allocated adaptively
    toward the scenarios whose effect estimates are still uncertain
    (``--allocation uniform`` disables this — the Sisyphus baseline).
    Prints the cross-scenario verdict table; ``--export-csv`` /
    ``--export-json`` write machine-readable copies, ``--checkpoint
    DIR`` / ``--resume`` journal per-scenario progress, and
    ``--serve-telemetry PORT`` multiplexes per-scenario health under
    one endpoint.

Observability
-------------
``table1``, ``import``, ``simulate``, and ``stream`` accept
``--trace FILE.jsonl``
(hierarchical span trace of the run) and ``--metrics FILE.prom``
(Prometheus-style metrics dump); ``table1`` and ``stream`` add
``--sample-resources SECONDS`` (a background sampler recording RSS,
live shared-memory bytes, checkpoint size, executor queue depth, and
GC pressure into the metrics output).  ``stream`` additionally accepts
``--serve-telemetry PORT``: a live loopback HTTP endpoint serving
``/metrics``, ``/health``, and ``/live`` for the duration of the run
(``--telemetry-linger`` keeps it up after the final table for scrapes).
The top-level ``--log-level`` flag turns on structured stderr logging
for all of ``repro``.

Fault tolerance
---------------
``table1``, ``import``, and ``stream`` accept ``--retries N`` and
``--task-timeout S`` (retry transiently failed or overrunning fit
tasks with exponential backoff), and ``--checkpoint FILE.jsonl`` /
``--resume`` (journal finished units so a killed run picks up where it
stopped, producing byte-identical output).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.errors import ReproError


def _retry_policy(args: argparse.Namespace):
    """Build a RetryPolicy from ``--retries``/``--task-timeout``, or None."""
    retries = getattr(args, "retries", 1)
    timeout = getattr(args, "task_timeout", None)
    if retries <= 1 and timeout is None:
        return None
    from repro.pipeline.executor import RetryPolicy

    return RetryPolicy(max_attempts=max(retries, 1), timeout=timeout)


def _maybe_sampler(args: argparse.Namespace):
    """A running ResourceSampler context per ``--sample-resources``, or a no-op."""
    import contextlib

    interval = getattr(args, "sample_resources", None)
    if not interval:
        return contextlib.nullcontext()
    from repro.obs.resources import ResourceSampler

    return ResourceSampler(interval_s=interval)


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.studies import run_table1_experiment

    with _maybe_sampler(args):
        output = run_table1_experiment(
            n_donor_ases=args.donors,
            duration_days=args.days,
            join_day=args.days // 2,
            seed=args.seed,
            n_jobs=args.jobs,
            retry=_retry_policy(args),
            checkpoint=args.checkpoint,
            resume=args.resume,
            batch_fits=not args.no_batch_fits,
            share_frames=args.shared_frames,
        )
    print(output.format_report())
    _maybe_print_timings(args, output.result)
    _write_obs_outputs(args)
    return 0


def _maybe_print_timings(args: argparse.Namespace, result) -> None:
    if getattr(args, "timings", False) and result.timings is not None:
        print()
        print("stage timings:")
        print(result.timings.format())


def _write_obs_outputs(args: argparse.Namespace) -> None:
    """Write the run's trace/metrics files when the flags asked for them."""
    from repro.obs import export_jsonl, get_metrics

    trace_path = getattr(args, "trace", None)
    if trace_path:
        n = export_jsonl(trace_path)
        print(f"wrote {n} spans to {trace_path}", file=sys.stderr)
    metrics_path = getattr(args, "metrics", None)
    if metrics_path:
        with open(metrics_path, "w") as f:
            f.write(get_metrics().render())
        print(f"wrote metrics to {metrics_path}", file=sys.stderr)


def _cmd_studies(args: argparse.Namespace) -> int:
    from repro.studies import (
        run_collider_experiment,
        run_confounding_experiment,
        run_edge_selection_experiment,
        run_instrument_experiment,
        run_randomization_experiment,
        run_reroute_experiment,
        run_root_cause_experiment,
    )

    sections = [
        ("E1 confounding (cellular reliability box)", run_confounding_experiment),
        ("E2 collider (speed-test box)", run_collider_experiment),
        ("E3 instruments (natural-experiment box)", run_instrument_experiment),
        ("E4 counterfactual (Xaminer box)", run_reroute_experiment),
        ("E5 randomization (M-Lab load balancer)", run_randomization_experiment),
        ("E6 root cause (PoiRoot poisoning)", run_root_cause_experiment),
        ("E7 edge selection (resolver rotation)", run_edge_selection_experiment),
    ]
    for title, runner in sections:
        print("=" * 64)
        print(title)
        print("=" * 64)
        print(runner().format_report())
        print()
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    from repro.netsim.ids import Prefix
    from repro.pipeline import import_csv, run_ixp_study

    prefixes = None
    if args.prefix:
        prefixes = {args.ixp: [Prefix.parse(p) for p in args.prefix]}
    import time

    arena = None
    if args.shared_frames:
        from repro.pipeline.shm import SharedFrameArena

        arena = SharedFrameArena(tag="import")
    try:
        t0 = time.perf_counter()
        frame = import_csv(args.csv, prefixes, arena=arena)
        import_seconds = time.perf_counter() - t0
        print(f"imported {frame.num_rows} measurements from {args.csv}")
        result = run_ixp_study(
            frame,
            args.ixp,
            n_jobs=args.jobs,
            generation_seconds=import_seconds,
            retry=_retry_policy(args),
            checkpoint=args.checkpoint,
            resume=args.resume,
            batch_fits=not args.no_batch_fits,
        )
    finally:
        if arena is not None:
            arena.close()
    print(result.format_table())
    if result.skipped:
        print()
        for unit, reason in result.skipped:
            print(f"skipped {unit}: {reason}")
    _maybe_print_timings(args, result)
    _write_obs_outputs(args)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.frames import write_csv
    from repro.mplatform import measurements_frame
    from repro.netsim import build_table1_scenario, build_trombone_scenario

    if args.scenario == "table1":
        scenario = build_table1_scenario(
            n_donor_ases=args.donors,
            duration_days=args.days,
            join_day=args.days // 2,
            seed=args.seed,
        )
    else:
        scenario = build_trombone_scenario(
            duration_days=args.days,
            join_day=args.days // 2,
            seed=args.seed,
        )
    arena = None
    if args.shared_frames:
        from repro.pipeline.shm import SharedFrameArena

        arena = SharedFrameArena(tag="simulate")
    try:
        frame = measurements_frame(
            scenario, rng=args.measurement_seed, mode=args.mode, arena=arena
        )
        write_csv(frame, args.out)
    finally:
        if arena is not None:
            arena.close()
    print(
        f"wrote {frame.num_rows} measurements "
        f"({args.scenario}, {args.days} days, mode={args.mode}) to {args.out}"
    )
    _write_obs_outputs(args)
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.frames.io import to_csv_text
    from repro.netsim import build_table1_scenario
    from repro.stream import StreamStudy, replay_scenario

    scenario = build_table1_scenario(
        n_donor_ases=args.donors,
        duration_days=args.days,
        join_day=args.days // 2,
        seed=args.seed,
    )
    frame, batches = replay_scenario(
        scenario,
        rng=args.measurement_seed,
        n_batches=None if args.batch_hours else args.batches,
        batch_hours=args.batch_hours,
    )
    # Progress narration goes to stderr: stdout stays byte-identical
    # across runs (per-batch lines include wall-clock seconds), so
    # `diff` of two same-flag invocations remains a valid equality check.
    print(
        f"replaying {frame.num_rows} measurements as {len(batches)} batches "
        f"(ixp={scenario.ixp_name})",
        file=sys.stderr,
    )
    publisher = None
    server = None
    if args.serve_telemetry is not None:
        from repro.obs.serve import TelemetryPublisher, TelemetryServer

        publisher = TelemetryPublisher()
        server = TelemetryServer(publisher, port=args.serve_telemetry).start()
        print(
            f"telemetry endpoint: {server.url()} "
            f"(/metrics /health /live)",
            file=sys.stderr,
        )
    study = StreamStudy(
        scenario.ixp_name,
        n_jobs=args.jobs,
        retry=_retry_policy(args),
        checkpoint=args.checkpoint,
        resume=args.resume,
        live_refits=not args.no_live_refits,
        batch_fits=not args.no_batch_fits,
        telemetry=publisher,
    )
    try:
        with _maybe_sampler(args), study:
            for batch in batches:
                report = study.ingest(batch)
                tag = " (replayed)" if report.replayed else ""
                print(
                    f"batch {report.index:>3}: {report.n_rows:>7} rows, "
                    f"{report.n_dirty_units:>3} dirty units, "
                    f"{report.n_refits:>3} refits "
                    f"({report.warm_refits} warm / {report.cold_refits} cold), "
                    f"{report.seconds:.3f}s{tag}",
                    file=sys.stderr,
                )
            result = study.finalize()
    except BaseException:
        if server is not None:
            server.stop()
        raise
    print(result.format_table())
    if result.skipped:
        print()
        for unit, reason in result.skipped:
            print(f"skipped {unit}: {reason}")
    exit_code = 0
    if args.parity_check:
        from repro.pipeline import run_ixp_study

        reference = run_ixp_study(frame, scenario.ixp_name, n_jobs=args.jobs)
        if to_csv_text(result.to_frame()) == to_csv_text(
            reference.to_frame()
        ) and result.skipped == reference.skipped:
            print("\nparity check: streamed rows identical to batch study")
        else:
            print(
                "parity check FAILED: streamed rows differ from the batch study",
                file=sys.stderr,
            )
            exit_code = 1
    _write_obs_outputs(args)
    if server is not None:
        if args.telemetry_linger > 0:
            import time

            print(
                f"telemetry endpoint lingering {args.telemetry_linger:g}s "
                f"at {server.url()}",
                file=sys.stderr,
            )
            time.sleep(args.telemetry_linger)
        server.stop()
    return exit_code


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import default_fleet, load_campaign, run_campaign

    # --scenarios is either a fleet size or a campaign-file path; flags
    # given on the command line override the file's campaign section,
    # which overrides the engine defaults.
    budget = args.budget
    allocation = args.allocation
    tol = args.tol
    round_refits = args.round_refits
    try:
        n_scenarios = int(args.scenarios)
    except ValueError:
        config = load_campaign(args.scenarios)
        specs = config.scenarios
        budget = budget if budget is not None else config.budget
        allocation = allocation if allocation is not None else config.allocation
        tol = tol if tol is not None else config.tol
        round_refits = (
            round_refits if round_refits is not None else config.round_refits
        )
    else:
        specs = default_fleet(
            n_scenarios,
            seed=args.seed,
            duration_days=args.days,
            n_donor_ases=args.donors,
        )
    print(
        f"campaign: {len(specs)} scenarios "
        f"({', '.join(s.name for s in sorted(specs, key=lambda s: s.name))})",
        file=sys.stderr,
    )
    telemetry = None
    server = None
    if args.serve_telemetry is not None:
        from repro.obs.serve import TelemetryMux, TelemetryServer

        telemetry = TelemetryMux()
        server = TelemetryServer(telemetry, port=args.serve_telemetry).start()
        print(
            f"telemetry endpoint: {server.url()} "
            f"(/metrics /health /live; per-scenario channels under /live)",
            file=sys.stderr,
        )
    try:
        with _maybe_sampler(args):
            result = run_campaign(
                specs,
                budget=budget if budget is not None else 200,
                allocation=allocation if allocation is not None else "adaptive",
                tol=tol if tol is not None else 0.25,
                round_refits=round_refits,
                alloc_seed=args.alloc_seed,
                n_jobs=args.jobs,
                retry=_retry_policy(args),
                checkpoint_dir=args.checkpoint,
                resume=args.resume,
                telemetry=telemetry,
            )
    except BaseException:
        if server is not None:
            server.stop()
        raise
    print(result.format_campaign_table())
    if args.export_csv:
        with open(args.export_csv, "w") as f:
            f.write(result.to_csv())
        print(f"wrote verdict table to {args.export_csv}", file=sys.stderr)
    if args.export_json:
        with open(args.export_json, "w") as f:
            f.write(result.to_json())
        print(f"wrote campaign JSON to {args.export_json}", file=sys.stderr)
    _write_obs_outputs(args)
    if server is not None:
        if args.telemetry_linger > 0:
            import time

            print(
                f"telemetry endpoint lingering {args.telemetry_linger:g}s "
                f"at {server.url()}",
                file=sys.stderr,
            )
            time.sleep(args.telemetry_linger)
        server.stop()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import load_jsonl, render_trace
    from repro.obs.profile import (
        export_folded,
        format_critical_path,
        format_hotspots,
    )

    records = load_jsonl(args.trace)
    print(f"{len(records)} spans from {args.trace}\n")
    print(f"top {args.top} hotspots by self time")
    print(format_hotspots(records, top=args.top))
    print()
    print("critical path (longest root, longest child at every level)")
    print(format_critical_path(records))
    if args.tree:
        print()
        print("span tree")
        print(render_trace(records, max_spans=args.max_spans))
    if args.folded:
        n = export_folded(args.folded, records)
        print(
            f"\nwrote {n} folded stacks to {args.folded} "
            f"(feed to flamegraph.pl / speedscope / inferno)",
        )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.design import CausalProtocol
    from repro.graph import parse_dag

    with open(args.dag_file) as f:
        dag = parse_dag(f.read())
    protocol = CausalProtocol(
        question=f"effect of {args.treatment} on {args.outcome}",
        dag=dag,
        treatment=args.treatment,
        outcome=args.outcome,
    )
    print(protocol.preregistration())
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    from repro.design import design_feasibility, placebo_power

    feasible, why = design_feasibility(args.donors, alpha=args.alpha)
    print(why)
    if not feasible:
        return 1
    estimate = placebo_power(
        args.effect,
        n_donors=args.donors,
        pre_periods=args.pre,
        post_periods=args.post,
        noise_std=args.noise,
        alpha=args.alpha,
        n_simulations=args.simulations,
    )
    print(estimate)
    return 0


def _add_timings_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print per-stage wall-clock seconds after the table",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        help="write the run's span trace as JSONL to this path",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE.prom",
        help="write a Prometheus-style metrics dump to this path",
    )


def _add_sampler_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sample-resources",
        type=float,
        default=None,
        metavar="SECONDS",
        help="sample RSS, live shared-memory bytes, checkpoint size, "
        "executor queue depth, and GC stats on this interval into the "
        "metrics output (observation only; rows are unchanged)",
    )


def _add_resilience_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="attempts per fit task (1 = no retries); transient failures "
        "(dead workers, injected faults, timeouts) re-run with backoff",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task deadline; an overrunning fit is treated as "
        "transiently failed and resubmitted (process pool only)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="FILE.jsonl",
        default=None,
        help="journal each finished unit to this JSONL file so a killed "
        "run can be resumed",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint: load finished units from the file and fit "
        "only the rest (output is byte-identical to an uninterrupted run)",
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes for per-unit fits (1 serial, -1 all cores); "
        "results are identical across backends",
    )


def _add_batch_fits_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-batch-fits",
        action="store_true",
        help="disable the cross-unit batched fit engine (one SVD per unit "
        "instead of one stacked SVD per matrix shape); rows are "
        "bit-identical either way",
    )


def _add_shared_frames_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shared-frames",
        action="store_true",
        help="seal generated/imported float columns into shared-memory "
        "blocks (zero-copy hand-off to pooled fits)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Causal inference for Internet measurement "
        "(reproduction of 'The Internet as Sisyphus', HotNets '25)",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="enable structured stderr logging for repro at this level",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table1 = sub.add_parser("table1", help="run the IXP/latency case study")
    p_table1.add_argument("--days", type=int, default=40, help="window length")
    p_table1.add_argument("--donors", type=int, default=25, help="donor ASes")
    p_table1.add_argument("--seed", type=int, default=2, help="world seed")
    _add_jobs_argument(p_table1)
    _add_batch_fits_argument(p_table1)
    _add_shared_frames_argument(p_table1)
    _add_resilience_arguments(p_table1)
    _add_timings_argument(p_table1)
    _add_obs_arguments(p_table1)
    _add_sampler_argument(p_table1)
    p_table1.set_defaults(func=_cmd_table1)

    p_studies = sub.add_parser("studies", help="run every boxed-example experiment")
    p_studies.set_defaults(func=_cmd_studies)

    p_import = sub.add_parser("import", help="run the study on a measurement CSV")
    p_import.add_argument("csv", help="measurement CSV path")
    p_import.add_argument("--ixp", required=True, help="exchange name to analyse")
    p_import.add_argument(
        "--prefix",
        action="append",
        help="peering-LAN prefix (repeatable) for hop-IP matching",
    )
    _add_jobs_argument(p_import)
    _add_batch_fits_argument(p_import)
    _add_shared_frames_argument(p_import)
    _add_resilience_arguments(p_import)
    _add_timings_argument(p_import)
    _add_obs_arguments(p_import)
    p_import.set_defaults(func=_cmd_import)

    p_sim = sub.add_parser("simulate", help="generate a scenario's tests to CSV")
    p_sim.add_argument(
        "--scenario",
        choices=("table1", "trombone"),
        default="table1",
        help="named world to build",
    )
    p_sim.add_argument("--days", type=int, default=20, help="window length")
    p_sim.add_argument(
        "--donors", type=int, default=12, help="donor ASes (table1 only)"
    )
    p_sim.add_argument("--seed", type=int, default=2, help="world seed")
    p_sim.add_argument(
        "--measurement-seed", type=int, default=1, help="speed-test RNG seed"
    )
    p_sim.add_argument(
        "--mode",
        choices=("batch", "scalar"),
        default="batch",
        help="generation path (batch = columnar fast path)",
    )
    p_sim.add_argument("--out", required=True, help="output CSV path")
    _add_shared_frames_argument(p_sim)
    _add_obs_arguments(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p_stream = sub.add_parser(
        "stream", help="replay a scenario through the incremental study engine"
    )
    p_stream.add_argument("--days", type=int, default=40, help="window length")
    p_stream.add_argument("--donors", type=int, default=25, help="donor ASes")
    p_stream.add_argument("--seed", type=int, default=2, help="world seed")
    p_stream.add_argument(
        "--measurement-seed", type=int, default=3, help="speed-test RNG seed"
    )
    p_stream.add_argument(
        "--batches",
        type=int,
        default=8,
        metavar="N",
        help="equal-width time slices to replay (ignored with --batch-hours)",
    )
    p_stream.add_argument(
        "--batch-hours",
        type=float,
        default=None,
        metavar="H",
        help="fixed slice width in hours instead of an equal-width count",
    )
    p_stream.add_argument(
        "--no-live-refits",
        action="store_true",
        help="skip the advisory per-batch refits; ingest state only",
    )
    p_stream.add_argument(
        "--parity-check",
        action="store_true",
        help="also run the batch study and fail unless the rows match exactly",
    )
    p_stream.add_argument(
        "--serve-telemetry",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics, /health, and /live on this loopback port "
        "for the duration of the run (0 picks a free port)",
    )
    p_stream.add_argument(
        "--telemetry-linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="with --serve-telemetry: keep the endpoint up this long "
        "after the final table (lets scrapers catch the end state)",
    )
    _add_jobs_argument(p_stream)
    _add_batch_fits_argument(p_stream)
    _add_resilience_arguments(p_stream)
    _add_obs_arguments(p_stream)
    _add_sampler_argument(p_stream)
    p_stream.set_defaults(func=_cmd_stream)

    p_campaign = sub.add_parser(
        "campaign",
        help="run a multi-scenario campaign with adaptive refit budgeting",
    )
    p_campaign.add_argument(
        "--scenarios",
        default="4",
        metavar="N|FILE",
        help="fleet size (an integer cycles the registered scenario kinds) "
        "or a campaign file (YAML with PyYAML installed, JSON always)",
    )
    p_campaign.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="total placebo-refit budget across the fleet (default 200, "
        "or the campaign file's value)",
    )
    p_campaign.add_argument(
        "--allocation",
        choices=("adaptive", "uniform"),
        default=None,
        help="budget policy: 'adaptive' spends rounds where placebo CIs "
        "are still wide and freezes converged scenarios; 'uniform' splits "
        "every round evenly (the Sisyphus baseline)",
    )
    p_campaign.add_argument(
        "--tol",
        type=float,
        default=None,
        metavar="WIDTH",
        help="convergence tolerance on the placebo-ratio CI width "
        "(default 0.25)",
    )
    p_campaign.add_argument(
        "--round-refits",
        type=int,
        default=None,
        metavar="N",
        help="refits granted per allocation round (default: 4 per scenario)",
    )
    p_campaign.add_argument(
        "--alloc-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="seed for the allocator's deterministic tie-breaks",
    )
    p_campaign.add_argument(
        "--days", type=int, default=20, help="window length (default fleet)"
    )
    p_campaign.add_argument(
        "--donors", type=int, default=12, help="donor ASes (default fleet)"
    )
    p_campaign.add_argument(
        "--seed", type=int, default=0, help="base world seed (default fleet)"
    )
    p_campaign.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="attempts per fit task (1 = no retries)",
    )
    p_campaign.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task deadline (process pool only)",
    )
    p_campaign.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="journal per-scenario progress (one JSONL per scenario plus a "
        "campaign manifest) under this directory",
    )
    p_campaign.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint: replay journaled fits/refits and continue; "
        "output is byte-identical to an uninterrupted run",
    )
    p_campaign.add_argument(
        "--serve-telemetry",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics, /health, and /live on this loopback port, "
        "multiplexing every scenario's channel under one endpoint "
        "(0 picks a free port)",
    )
    p_campaign.add_argument(
        "--telemetry-linger",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="with --serve-telemetry: keep the endpoint up this long "
        "after the verdict table",
    )
    p_campaign.add_argument(
        "--export-csv",
        metavar="FILE.csv",
        default=None,
        help="also write the verdict table as CSV",
    )
    p_campaign.add_argument(
        "--export-json",
        metavar="FILE.json",
        default=None,
        help="also write the verdicts + allocation trace as JSON",
    )
    _add_jobs_argument(p_campaign)
    _add_obs_arguments(p_campaign)
    _add_sampler_argument(p_campaign)
    p_campaign.set_defaults(func=_cmd_campaign)

    p_report = sub.add_parser(
        "report", help="profile an exported span trace (hotspots, flame graph)"
    )
    p_report.add_argument(
        "--trace", required=True, metavar="FILE.jsonl", help="trace to analyse"
    )
    p_report.add_argument(
        "--top", type=int, default=10, metavar="K", help="hotspot rows to show"
    )
    p_report.add_argument(
        "--tree", action="store_true", help="also print the span tree"
    )
    p_report.add_argument(
        "--max-spans",
        type=int,
        default=200,
        metavar="N",
        help="with --tree: truncate the tree past this many spans",
    )
    p_report.add_argument(
        "--folded",
        metavar="FILE",
        default=None,
        help="write folded stacks (flame-graph input) to this path",
    )
    p_report.set_defaults(func=_cmd_report)

    p_validate = sub.add_parser("validate", help="identify a DAG's strategies")
    p_validate.add_argument("dag_file", help="dagitty-like DAG text file")
    p_validate.add_argument("--treatment", required=True)
    p_validate.add_argument("--outcome", required=True)
    p_validate.set_defaults(func=_cmd_validate)

    p_power = sub.add_parser("power", help="placebo-test power analysis")
    p_power.add_argument("effect", type=float, help="true effect size (ms)")
    p_power.add_argument("--donors", type=int, default=20)
    p_power.add_argument("--pre", type=int, default=30, help="pre-periods")
    p_power.add_argument("--post", type=int, default=15, help="post-periods")
    p_power.add_argument("--noise", type=float, default=1.0, help="unit noise std")
    p_power.add_argument("--alpha", type=float, default=0.10)
    p_power.add_argument("--simulations", type=int, default=30)
    p_power.set_defaults(func=_cmd_power)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level:
        from repro.obs import configure_logging

        configure_logging(args.log_level)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
