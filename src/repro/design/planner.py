"""Measurement planning: which measurements buy causal identification.

The paper's core design claim: "the value of a measurement lies in
whether it helps resolve causal ambiguity."  Given a protocol and the
set of variables a platform currently observes, the planner reports
whether the effect is already identifiable, and if not, which *minimal
additional* variables would make it so — turning "collect more data"
into "collect exactly these".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.design.protocol import CausalProtocol
from repro.errors import IdentificationError
from repro.graph.backdoor import satisfies_backdoor
from repro.graph.instruments import is_instrument


@dataclass(frozen=True)
class MeasurementPlan:
    """The planner's verdict for one protocol and one observed set.

    Attributes
    ----------
    already_identifiable:
        True when some strategy works with the observed variables alone.
    usable_now:
        Strategy notes that work with current observations.
    additions:
        Minimal sets of extra variables, each sufficient to unlock at
        least one strategy, cheapest (smallest) first.
    """

    already_identifiable: bool
    usable_now: tuple[str, ...]
    additions: tuple[tuple[str, ...], ...]

    def summary(self) -> str:
        """Readable plan."""
        if self.already_identifiable:
            return "identifiable with current measurements: " + "; ".join(
                self.usable_now
            )
        if not self.additions:
            return (
                "not identifiable with current measurements, and no set of "
                "additional observed variables fixes it (latent confounding "
                "without usable instruments/mediators)"
            )
        options = " OR ".join("{" + ", ".join(a) + "}" for a in self.additions)
        return f"not yet identifiable; additionally measure {options}"


def plan_measurements(
    protocol: CausalProtocol,
    observed_now: set[str],
    max_additions: int = 3,
) -> MeasurementPlan:
    """Decide what (else) to measure for the protocol's effect.

    *observed_now* is what the platform already records; treatment and
    outcome must be in it (measuring the effect requires seeing both).
    Candidate additions are drawn from the DAG's observable (non-latent)
    variables not yet collected.
    """
    dag = protocol.dag
    t, y = protocol.treatment, protocol.outcome
    if t not in observed_now or y not in observed_now:
        raise IdentificationError(
            "the observed set must contain the treatment and the outcome"
        )

    def strategies_with(available: set[str]) -> list[str]:
        found: list[str] = []
        pool = sorted((available & dag.observed) - {t, y})
        # Backdoor sets drawn from available variables.
        for size in range(0, len(pool) + 1):
            for combo in combinations(pool, size):
                if satisfies_backdoor(dag, t, y, set(combo)):
                    found.append(f"backdoor via {sorted(combo) or '{}'}")
                    break
            if found:
                break
        # Instruments among available variables.
        for cand in pool:
            others = [p for p in pool if p != cand]
            for size in range(0, min(2, len(others)) + 1):
                hit = False
                for combo in combinations(others, size):
                    if is_instrument(dag, cand, t, y, set(combo)):
                        found.append(
                            f"instrument {cand}"
                            + (f" | {sorted(combo)}" if combo else "")
                        )
                        hit = True
                        break
                if hit:
                    break
        return found

    usable = strategies_with(set(observed_now))
    if usable:
        return MeasurementPlan(
            already_identifiable=True,
            usable_now=tuple(usable),
            additions=(),
        )

    candidates = sorted(dag.observed - set(observed_now))
    additions: list[tuple[str, ...]] = []
    for size in range(1, min(max_additions, len(candidates)) + 1):
        for combo in combinations(candidates, size):
            if any(set(prev) <= set(combo) for prev in additions):
                continue
            if strategies_with(set(observed_now) | set(combo)):
                additions.append(combo)
    return MeasurementPlan(
        already_identifiable=False,
        usable_now=(),
        additions=tuple(additions),
    )
