"""Assumption checklists: SUTVA, exclusion, selection, pre-trends.

The paper insists causal claims come with their assumptions attached.
These helpers generate structured checklists a study must answer —
and, where the data permits, auto-fill answers (e.g. running the
parallel-trends test, or scanning a measurement frame for intent-tag
imbalance that signals collider conditioning).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.frames.frame import Frame


class CheckStatus(Enum):
    """Outcome of one checklist item."""

    PASS = "pass"
    WARN = "warn"
    FAIL = "fail"
    MANUAL = "manual"  # needs human/domain judgement


@dataclass(frozen=True)
class CheckItem:
    """One assumption check with its verdict and evidence."""

    name: str
    status: CheckStatus
    detail: str

    def __str__(self) -> str:
        return f"[{self.status.value.upper():>6}] {self.name}: {self.detail}"


def sutva_checklist(
    n_treated_units: int,
    donor_units: int,
    shared_infrastructure: bool,
) -> list[CheckItem]:
    """SUTVA items for an IXP-style unit-level study.

    *shared_infrastructure* should be True when treated and donor units
    ride the same upstreams/fabric, which is exactly when treatment
    spillovers (the paper's 'reshapes the local routing topology') are
    plausible.
    """
    items = [
        CheckItem(
            name="no interference (spillover to donors)",
            status=CheckStatus.WARN if shared_infrastructure else CheckStatus.MANUAL,
            detail=(
                "treated and donor units share upstream infrastructure; traffic "
                "shifts onto the new link can change donors' congestion"
                if shared_infrastructure
                else "verify donors do not share bottlenecks with treated units"
            ),
        ),
        CheckItem(
            name="well-defined treatment",
            status=CheckStatus.MANUAL,
            detail=(
                "'first crossing the IXP' must mean the same operational change "
                "for every unit (same exchange, same peering policy)"
            ),
        ),
        CheckItem(
            name="donor pool size",
            status=CheckStatus.PASS if donor_units >= 10 else CheckStatus.WARN,
            detail=f"{donor_units} donors for {n_treated_units} treated units",
        ),
    ]
    return items


def selection_bias_checklist(measurements: Frame) -> list[CheckItem]:
    """Scan a tagged measurement frame for endogenous-sampling red flags.

    Uses the §4.2 intent tags: a high share of performance- or
    change-triggered tests means the sample over-represents bad moments
    (the collider at work), and analyses pooling all tests inherit that
    bias.
    """
    items: list[CheckItem] = []
    if "trigger" not in measurements:
        items.append(
            CheckItem(
                name="intent tags present",
                status=CheckStatus.FAIL,
                detail="no 'trigger' column: selection bias cannot be assessed",
            )
        )
        return items
    triggers = [str(v) for v in measurements.column("trigger").values]
    n = len(triggers)
    reactive = sum(1 for t in triggers if t in ("performance", "route_change"))
    share = reactive / n if n else 0.0
    items.append(
        CheckItem(
            name="intent tags present",
            status=CheckStatus.PASS,
            detail=f"{n} measurements tagged",
        )
    )
    items.append(
        CheckItem(
            name="reactive-measurement share",
            status=(
                CheckStatus.PASS
                if share < 0.15
                else CheckStatus.WARN
                if share < 0.4
                else CheckStatus.FAIL
            ),
            detail=(
                f"{share:.0%} of tests were reaction-triggered; pooled estimates "
                "condition on a collider to that extent"
            ),
        )
    )
    return items


def pre_trend_checklist(
    treated_pre: np.ndarray,
    synthetic_pre: np.ndarray,
    max_relative_rmse: float = 0.15,
) -> list[CheckItem]:
    """Pre-period fit items for a synthetic-control analysis."""
    ok = np.isfinite(treated_pre) & np.isfinite(synthetic_pre)
    items: list[CheckItem] = []
    if ok.sum() < 3:
        items.append(
            CheckItem(
                name="pre-period coverage",
                status=CheckStatus.FAIL,
                detail=f"only {int(ok.sum())} overlapping pre-period points",
            )
        )
        return items
    gaps = treated_pre[ok] - synthetic_pre[ok]
    rmse = float(np.sqrt(np.mean(gaps**2)))
    scale = float(np.mean(np.abs(treated_pre[ok])))
    rel = rmse / scale if scale > 0 else float("inf")
    items.append(
        CheckItem(
            name="pre-period coverage",
            status=CheckStatus.PASS,
            detail=f"{int(ok.sum())} overlapping points",
        )
    )
    items.append(
        CheckItem(
            name="pre-change fit",
            status=CheckStatus.PASS if rel <= max_relative_rmse else CheckStatus.WARN,
            detail=f"relative pre-RMSE {rel:.1%} (threshold {max_relative_rmse:.0%})",
        )
    )
    return items


def format_checklist(items: list[CheckItem]) -> str:
    """Render a checklist as aligned text."""
    return "\n".join(str(item) for item in items)
