"""Measurement design for causal analysis (§4 of the paper).

- :class:`CausalProtocol` — question + DAG + identification report, the
  "causal protocol" the paper asks studies to pre-register;
- :func:`plan_measurements` — which additional variables would buy
  identification (measurement as a design problem);
- checklists — SUTVA, selection-bias (via intent tags), and pre-trend
  checks that make assumptions explicit and partly machine-checkable.
"""

from repro.design.checklist import (
    CheckItem,
    CheckStatus,
    format_checklist,
    pre_trend_checklist,
    selection_bias_checklist,
    sutva_checklist,
)
from repro.design.planner import MeasurementPlan, plan_measurements
from repro.design.power import (
    PowerEstimate,
    design_feasibility,
    minimum_detectable_effect,
    placebo_power,
)
from repro.design.protocol import (
    CausalProtocol,
    IdentificationReport,
    IdentificationStrategy,
)

__all__ = [
    "CausalProtocol",
    "CheckItem",
    "CheckStatus",
    "IdentificationReport",
    "IdentificationStrategy",
    "MeasurementPlan",
    "PowerEstimate",
    "design_feasibility",
    "format_checklist",
    "minimum_detectable_effect",
    "placebo_power",
    "plan_measurements",
    "pre_trend_checklist",
    "selection_bias_checklist",
    "sutva_checklist",
]
