"""Placebo-test power analysis for measurement planning (§4).

"Whether causal effects are identifiable hinges on ... how much
variation exists across conditions."  Before committing a month of
probing to an IXP study, an analyst should know whether the design —
donor-pool size, window length, noise level — can even *detect* the
effect size they care about.  :func:`placebo_power` answers by Monte
Carlo on synthetic factor panels: the fraction of simulated studies in
which a true effect of the given size achieves placebo-p below alpha.

Built-in hard limits surfaced by :func:`design_feasibility`:

- the combinatorial floor ``p >= 1/(donors+1)`` — small pools cannot
  reach small p no matter the effect;
- pre-period length bounds fit quality and hence the RMSE-ratio's
  denominator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError
from repro.synthcontrol.placebo import placebo_test


@dataclass(frozen=True)
class PowerEstimate:
    """Monte-Carlo power of a synthetic-control design.

    Attributes
    ----------
    power:
        Share of simulations with placebo-p < alpha.
    alpha:
        Significance level tested.
    effect_ms:
        The true effect injected into each simulation.
    n_donors, pre_periods, post_periods:
        The design evaluated.
    p_floor:
        The combinatorial minimum achievable p.
    mean_abs_error:
        Mean |estimate - effect| across simulations (accuracy, not
        just detectability).
    """

    power: float
    alpha: float
    effect_ms: float
    n_donors: int
    pre_periods: int
    post_periods: int
    p_floor: float
    mean_abs_error: float

    def feasible(self) -> bool:
        """Whether the design can reach significance at all."""
        return self.p_floor < self.alpha

    def __str__(self) -> str:
        note = "" if self.feasible() else (
            f"  [INFEASIBLE: p can never go below {self.p_floor:.3f}]"
        )
        return (
            f"power={self.power:.0%} to detect {self.effect_ms:+g} ms at "
            f"alpha={self.alpha} with {self.n_donors} donors, "
            f"{self.pre_periods}+{self.post_periods} periods "
            f"(MAE {self.mean_abs_error:.2f}){note}"
        )


def placebo_power(
    effect_ms: float,
    n_donors: int = 20,
    pre_periods: int = 30,
    post_periods: int = 15,
    noise_std: float = 1.0,
    level: float = 40.0,
    alpha: float = 0.10,
    n_simulations: int = 40,
    rng: np.random.Generator | int | None = 0,
    method: str = "robust",
) -> PowerEstimate:
    """Monte-Carlo power of a placebo-based synthetic-control test.

    Panels are two-factor worlds (shared latent trends plus unit noise
    of *noise_std*), matching the structure the estimators assume; the
    treated unit receives *effect_ms* from ``pre_periods`` onward.
    """
    if n_donors < 2:
        raise EstimationError("need at least 2 donors")
    if n_simulations < 1:
        raise EstimationError("need at least 1 simulation")
    if not 0 < alpha < 1:
        raise EstimationError("alpha must be in (0, 1)")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    t = pre_periods + post_periods
    hits = 0
    errors = []
    for _ in range(n_simulations):
        factors = rng.normal(0, 1, (t, 2)).cumsum(axis=0) * 0.2 + level
        donors = np.column_stack(
            [
                factors @ rng.normal(0.5, 0.15, 2) + rng.normal(0, noise_std, t)
                for _ in range(n_donors)
            ]
        )
        treated = factors @ np.array([0.5, 0.5]) + rng.normal(0, noise_std, t)
        treated[pre_periods:] += effect_ms
        try:
            summary = placebo_test(treated, donors, pre_periods, method=method)
        except Exception:
            continue
        if summary.p_value < alpha:
            hits += 1
        errors.append(abs(summary.fit.effect - effect_ms))
    if not errors:
        raise EstimationError("every power simulation failed")
    return PowerEstimate(
        power=hits / n_simulations,
        alpha=alpha,
        effect_ms=effect_ms,
        n_donors=n_donors,
        pre_periods=pre_periods,
        post_periods=post_periods,
        p_floor=1.0 / (n_donors + 1),
        mean_abs_error=float(np.mean(errors)),
    )


def design_feasibility(
    n_donors: int,
    alpha: float = 0.10,
) -> tuple[bool, str]:
    """Quick feasibility verdict before any simulation.

    Returns ``(feasible, explanation)`` from the combinatorial p floor.
    """
    floor = 1.0 / (n_donors + 1)
    if floor >= alpha:
        needed = int(np.ceil(1.0 / alpha)) - 1
        return False, (
            f"with {n_donors} donors the smallest achievable placebo p is "
            f"{floor:.3f} >= alpha={alpha}; at least {needed + 1} donors are "
            "needed before any effect can reach significance"
        )
    return True, (
        f"p floor {floor:.3f} is below alpha={alpha}; detection is possible "
        "given sufficient effect size and pre-period fit"
    )


def minimum_detectable_effect(
    n_donors: int = 20,
    pre_periods: int = 30,
    post_periods: int = 15,
    noise_std: float = 1.0,
    alpha: float = 0.10,
    target_power: float = 0.8,
    candidate_effects: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0),
    n_simulations: int = 30,
    rng: np.random.Generator | int | None = 0,
) -> float | None:
    """Smallest candidate effect the design detects with *target_power*.

    Returns None when even the largest candidate falls short (the
    design needs more donors, longer windows, or less noise).
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    for effect in sorted(candidate_effects):
        estimate = placebo_power(
            effect,
            n_donors=n_donors,
            pre_periods=pre_periods,
            post_periods=post_periods,
            noise_std=noise_std,
            alpha=alpha,
            n_simulations=n_simulations,
            rng=rng,
        )
        if estimate.power >= target_power:
            return effect
    return None
