"""The causal measurement protocol (§4).

The paper envisions studies that *start* from a causal question and a
DAG, check identifiability before collecting data, and report
assumptions alongside estimates.  :class:`CausalProtocol` is that
workflow as an object: question, graph, treatment/outcome, and an
:meth:`identify` step that reports every identification strategy the
graph supports (backdoor, frontdoor, instruments) together with the
variables each one requires measuring.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IdentificationError
from repro.graph.backdoor import (
    is_confounded,
    minimal_adjustment_sets,
    proper_causal_effect_exists,
)
from repro.graph.colliders import collider_nodes
from repro.graph.dag import CausalDag
from repro.graph.frontdoor import find_frontdoor_set
from repro.graph.instruments import find_instruments


@dataclass(frozen=True)
class IdentificationStrategy:
    """One way to identify the target effect.

    Attributes
    ----------
    kind:
        ``"randomization"``, ``"backdoor"``, ``"frontdoor"``, or
        ``"instrument"``.
    requires:
        Variables that must be measured (beyond treatment and outcome).
    estimator_hint:
        Name of the library estimator that implements it.
    note:
        Human-readable detail (which set, which instrument).
    """

    kind: str
    requires: tuple[str, ...]
    estimator_hint: str
    note: str

    def __str__(self) -> str:
        req = ", ".join(self.requires) if self.requires else "nothing extra"
        return f"[{self.kind}] measure {req} -> {self.estimator_hint} ({self.note})"


@dataclass(frozen=True)
class IdentificationReport:
    """Everything :meth:`CausalProtocol.identify` learned from the graph."""

    effect_exists: bool
    confounded: bool
    strategies: tuple[IdentificationStrategy, ...]
    colliders: tuple[str, ...]
    warnings: tuple[str, ...]

    @property
    def identifiable(self) -> bool:
        """Whether at least one strategy identifies the effect."""
        return bool(self.strategies)

    def summary(self) -> str:
        """Multi-line report for inclusion in a study's methods section."""
        lines = []
        lines.append(
            "causal effect exists in the graph"
            if self.effect_exists
            else "NO directed path from treatment to outcome: nothing to estimate"
        )
        lines.append(
            "treatment-outcome relationship is confounded"
            if self.confounded
            else "no open backdoor paths: association is causal as-is"
        )
        if self.strategies:
            lines.append("identification strategies:")
            lines.extend(f"  - {s}" for s in self.strategies)
        else:
            lines.append("effect is NOT identifiable from observed variables")
        if self.colliders:
            lines.append(
                "colliders (do NOT condition on these or their descendants): "
                + ", ".join(self.colliders)
            )
        for w in self.warnings:
            lines.append(f"warning: {w}")
        return "\n".join(lines)


@dataclass
class CausalProtocol:
    """A pre-registered causal analysis plan.

    Attributes
    ----------
    question:
        The causal question in prose ("does joining an IXP reduce RTT?").
    dag:
        The structural assumptions.
    treatment, outcome:
        The effect under study.
    assumptions:
        Free-form list of assumptions outside the graph (SUTVA notes,
        no-anticipation, etc.) — stated up front, as §4 prescribes.
    """

    question: str
    dag: CausalDag
    treatment: str
    outcome: str
    assumptions: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        for node in (self.treatment, self.outcome):
            if not self.dag.has_node(node):
                raise IdentificationError(
                    f"{node!r} is not a node of the protocol's DAG"
                )

    def identify(self, max_instrument_conditioning: int = 2) -> IdentificationReport:
        """Enumerate identification strategies the DAG supports."""
        exists = proper_causal_effect_exists(self.dag, self.treatment, self.outcome)
        confounded = is_confounded(self.dag, self.treatment, self.outcome)
        strategies: list[IdentificationStrategy] = []
        warnings: list[str] = []

        if exists and not confounded:
            strategies.append(
                IdentificationStrategy(
                    kind="randomization",
                    requires=(),
                    estimator_hint="estimators.naive_difference",
                    note="no open backdoor path; the raw contrast is causal",
                )
            )
        if exists and confounded:
            for adj in minimal_adjustment_sets(self.dag, self.treatment, self.outcome):
                strategies.append(
                    IdentificationStrategy(
                        kind="backdoor",
                        requires=tuple(sorted(adj)),
                        estimator_hint="estimators.regression_adjustment / ipw / matching",
                        note=f"adjust for {sorted(adj)}",
                    )
                )
            for inst, cond in find_instruments(
                self.dag,
                self.treatment,
                self.outcome,
                max_conditioning=max_instrument_conditioning,
            ):
                strategies.append(
                    IdentificationStrategy(
                        kind="instrument",
                        requires=tuple(sorted({inst, *cond})),
                        estimator_hint="estimators.wald_estimate / two_stage_least_squares",
                        note=f"instrument {inst}"
                        + (f" conditioning on {sorted(cond)}" if cond else ""),
                    )
                )
            try:
                mediators = find_frontdoor_set(self.dag, self.treatment, self.outcome)
                strategies.append(
                    IdentificationStrategy(
                        kind="frontdoor",
                        requires=tuple(sorted(mediators)),
                        estimator_hint="scm-based frontdoor formula",
                        note=f"mediators {sorted(mediators)}",
                    )
                )
            except IdentificationError:
                pass
        if not exists:
            warnings.append(
                "the DAG contains no directed path from treatment to outcome"
            )
        cols = tuple(collider_nodes(self.dag))
        return IdentificationReport(
            effect_exists=exists,
            confounded=confounded,
            strategies=tuple(strategies),
            colliders=cols,
            warnings=tuple(warnings),
        )

    def preregistration(self) -> str:
        """Render the full protocol as a pre-registration document."""
        report = self.identify()
        lines = [
            f"CAUSAL PROTOCOL: {self.question}",
            f"treatment: {self.treatment}    outcome: {self.outcome}",
            f"graph: {len(self.dag.nodes())} variables, "
            f"{len(self.dag.edges())} assumed causal links, "
            f"latent: {sorted(self.dag.unobserved) or 'none'}",
            "",
        ]
        if self.assumptions:
            lines.append("stated assumptions:")
            lines.extend(f"  * {a}" for a in self.assumptions)
            lines.append("")
        lines.append(report.summary())
        return "\n".join(lines)
