"""The M-Lab load balancer: randomization as the gold standard (§3).

M-Lab assigns each speed test to one of several same-metro server sites
at random; different sites sit behind different AS paths, so the
assignment is a randomized experiment on routing.  This module builds a
two-site micro-world and generates tests under two assignment policies:

- ``randomized`` — uniform site choice (valid causal contrast);
- ``self_selected`` — clients under congestion prefer the site whose
  name they've heard performs well, entangling assignment with
  conditions (the confounded observational analogue).

Experiment E5 contrasts the two: the randomized difference recovers the
true routing penalty, the self-selected one does not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlatformError
from repro.frames.frame import Frame


@dataclass(frozen=True)
class ServerSite:
    """One measurement server site behind a specific route.

    Attributes
    ----------
    name:
        Site label, e.g. ``"jnb01"``.
    base_rtt_ms:
        Condition-free RTT of the path to this site.
    congestion_coupling:
        How strongly ambient congestion inflates this path's RTT.
    """

    name: str
    base_rtt_ms: float
    congestion_coupling: float

    def rtt(self, congestion: float, noise: float) -> float:
        """RTT of one test under ambient *congestion* plus noise."""
        return self.base_rtt_ms + self.congestion_coupling * congestion + noise


@dataclass(frozen=True)
class LoadBalancerWorld:
    """Two sites in one metro, and how clients are assigned to them."""

    site_a: ServerSite
    site_b: ServerSite

    @property
    def true_site_effect(self) -> float:
        """Ground-truth causal RTT difference (B minus A) at zero congestion."""
        return self.site_b.base_rtt_ms - self.site_a.base_rtt_ms


def default_world() -> LoadBalancerWorld:
    """A metro with one clean site and one behind a longer path."""
    return LoadBalancerWorld(
        site_a=ServerSite("metro01", base_rtt_ms=22.0, congestion_coupling=8.0),
        site_b=ServerSite("metro02", base_rtt_ms=30.0, congestion_coupling=8.0),
    )


def generate_tests(
    world: LoadBalancerWorld,
    n_tests: int,
    policy: str = "randomized",
    rng: np.random.Generator | int | None = 0,
    noise_std: float = 3.0,
) -> Frame:
    """Simulate *n_tests* speed tests under an assignment policy.

    Columns: ``congestion`` (ambient client-side load at test time),
    ``site`` (0 for A, 1 for B), ``rtt_ms``.

    Under ``self_selected``, congested clients are *more* likely to pick
    site A (word of mouth says it is faster), so site B's sample is
    skewed toward calm periods and naively looks better than it is.
    """
    if policy not in ("randomized", "self_selected"):
        raise PlatformError(f"unknown assignment policy {policy!r}")
    if n_tests <= 0:
        raise PlatformError("n_tests must be positive")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    congestion = rng.gamma(shape=2.0, scale=0.5, size=n_tests)
    if policy == "randomized":
        pick_b = rng.random(n_tests) < 0.5
    else:
        # Congested clients flock to the reputed-fast site A.
        p_b = 1.0 / (1.0 + np.exp(1.5 * (congestion - 1.0)))
        pick_b = rng.random(n_tests) < p_b
    noise = rng.normal(0.0, noise_std, size=n_tests)
    rtt = np.where(
        pick_b,
        [world.site_b.rtt(c, e) for c, e in zip(congestion, noise)],
        [world.site_a.rtt(c, e) for c, e in zip(congestion, noise)],
    )
    return Frame.from_dict(
        {
            "congestion": congestion,
            "site": pick_b.astype(int),
            "rtt_ms": rtt,
        }
    )


def site_contrast(tests: Frame) -> float:
    """Mean RTT difference between site B and site A in a test frame."""
    site = tests.numeric("site")
    rtt = tests.numeric("rtt_ms")
    b = rtt[site == 1]
    a = rtt[site == 0]
    if len(a) == 0 or len(b) == 0:
        raise PlatformError("need tests at both sites")
    return float(b.mean() - a.mean())
