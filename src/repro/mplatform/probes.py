"""Scheduled probing (the RIPE-Atlas-style platform).

Fixed-interval probes from chosen vantage units, independent of network
conditions — the exogenous-sampling baseline the paper contrasts with
user-initiated tests.  Because the schedule is condition-independent,
frames produced here are free of the speed-test collider by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlatformError
from repro.netsim.geo import propagation_delay_ms
from repro.netsim.scenario import Scenario
from repro.netsim.traceroute import detect_ixp_crossings, synthesize_traceroute
from repro.mplatform.records import Measurement, Trigger


@dataclass(frozen=True)
class ProbeSchedule:
    """A fixed-interval probing plan.

    Attributes
    ----------
    interval_hours:
        Gap between consecutive probes from the same vantage.
    offset_hours:
        Phase of the first probe.
    probes_per_round:
        Measurements taken per vantage per firing (averaging reduces
        noise without changing bias properties).
    """

    interval_hours: float = 1.0
    offset_hours: float = 0.0
    probes_per_round: int = 1

    def __post_init__(self) -> None:
        if self.interval_hours <= 0:
            raise PlatformError("interval must be positive")
        if self.probes_per_round < 1:
            raise PlatformError("probes_per_round must be >= 1")

    def firing_times(self, duration_hours: float) -> list[float]:
        """All probe times inside the window."""
        times = []
        t = self.offset_hours
        while t < duration_hours:
            times.append(t)
            t += self.interval_hours
        return times


class ProbePlatform:
    """Runs scheduled probes from selected units of a scenario."""

    def __init__(
        self,
        scenario: Scenario,
        vantages: list[tuple[int, str]] | None = None,
    ) -> None:
        self.scenario = scenario
        if vantages is None:
            vantages = [g.unit for g in scenario.user_groups]
        for asn, city in vantages:
            scenario.group_for(asn, city)  # validates
        self.vantages = list(vantages)

    def run(
        self,
        schedule: ProbeSchedule,
        rng: np.random.Generator | int | None = 0,
        trigger: Trigger = Trigger.BASELINE,
    ) -> list[Measurement]:
        """Execute the schedule and return all probe measurements."""
        return self.probe_at_times(
            schedule.firing_times(self.scenario.duration_hours),
            rng,
            trigger,
            probes_per_round=schedule.probes_per_round,
        )

    def probe_at_times(
        self,
        times: list[float],
        rng: np.random.Generator | int | None = 0,
        trigger: Trigger = Trigger.BASELINE,
        probes_per_round: int = 1,
    ) -> list[Measurement]:
        """Probe every vantage at each of the given times."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        scenario = self.scenario
        out: list[Measurement] = []
        for t in times:
            routes = scenario.timeline.routes_at(t, scenario.content_asn)
            state = scenario.timeline.state_at(t)
            for asn, city in self.vantages:
                route = routes.get(asn)
                if route is None:
                    continue
                group = scenario.group_for(asn, city)
                home = scenario.topology.get_as(asn).city
                backhaul = 2.0 * propagation_delay_ms(
                    scenario.cities.get(city),
                    scenario.cities.get(group.backhaul_city or home),
                )
                trace = synthesize_traceroute(state.topology, state.ixps, route)
                crossings = tuple(detect_ixp_crossings(trace, state.ixps))
                for _ in range(probes_per_round):
                    sample = scenario.latency.sample_rtt(
                        route, t, rng, topology=state.topology
                    )
                    out.append(
                        Measurement(
                            asn=asn,
                            city=city,
                            time_hour=t,
                            rtt_ms=sample.total_ms + backhaul,
                            as_path=route.path,
                            ixps_crossed=crossings,
                            trigger=trigger,
                        )
                    )
        return out
