"""Exogenous intervention knobs (§4.3).

The paper proposes platform APIs that let researchers *induce* routing
variation — toggling IPv4/IPv6, rotating resolvers, PEERING-style
announcement control — acting as instrumental variables.  The simulator
realises this as a :class:`RouteToggle`: per test, a coin flip decides
whether the client's traffic uses its normal best route or a forced
alternative (the best route with one adjacency disabled).  Because the
flip is random, it is a valid instrument for "which route was used" by
construction, and the generated frame feeds directly into
:func:`repro.estimators.wald_estimate`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlatformError, RoutingError
from repro.netsim.bgp import Route, compute_routes
from repro.netsim.scenario import Scenario
from repro.frames.frame import Frame


@dataclass(frozen=True)
class ToggleArm:
    """One arm of a route toggle: a label plus the route it produces."""

    label: str
    route: Route


class RouteToggle:
    """A randomized A/B toggle between two routes from one client AS.

    Parameters
    ----------
    scenario:
        The world to measure in.
    client_asn:
        The AS whose egress is being toggled.
    disable_link:
        Unordered ASN pair whose adjacency is suppressed in the B arm
        (e.g. the client's IXP peering session, so arm B rides transit).
    hour:
        Simulation hour the experiment runs at (the toggle holds the
        routing state fixed; only the arm varies).
    """

    def __init__(
        self,
        scenario: Scenario,
        client_asn: int,
        disable_link: tuple[int, int],
        hour: float = 0.0,
    ) -> None:
        self.scenario = scenario
        self.client_asn = client_asn
        self.hour = hour
        state = scenario.timeline.state_at(hour)
        self._topology = state.topology
        key = (min(disable_link), max(disable_link))
        if self._topology.link_between(*key) is None:
            raise PlatformError(
                f"cannot toggle: no link between AS{key[0]} and AS{key[1]} at t={hour}"
            )
        base_routes = compute_routes(
            self._topology, scenario.content_asn, set(state.dead_links)
        )
        alt_routes = compute_routes(
            self._topology, scenario.content_asn, set(state.dead_links) | {key}
        )
        if client_asn not in base_routes or client_asn not in alt_routes:
            raise RoutingError(f"AS{client_asn} cannot reach the target in both arms")
        self.arm_a = ToggleArm("normal", base_routes[client_asn])
        self.arm_b = ToggleArm("forced_alternative", alt_routes[client_asn])
        if self.arm_a.route.path == self.arm_b.route.path:
            raise PlatformError(
                "toggle is vacuous: disabling the link does not change the route"
            )

    def run_experiment(
        self,
        n_tests: int,
        rng: np.random.Generator | int | None = 0,
        p_toggle: float = 0.5,
    ) -> Frame:
        """Run *n_tests* randomized tests.

        Returns a frame with ``z`` (1 if the knob forced the alternative),
        ``on_alt_route`` (route actually used — equal to ``z`` here, but
        kept separate so downstream code mirrors fuzzy-compliance
        settings), and ``rtt_ms``.
        """
        if n_tests <= 0:
            raise PlatformError("n_tests must be positive")
        if not 0 < p_toggle < 1:
            raise PlatformError("p_toggle must be in (0, 1)")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        z = (rng.random(n_tests) < p_toggle).astype(int)
        rtts = np.empty(n_tests)
        for i in range(n_tests):
            arm = self.arm_b if z[i] else self.arm_a
            sample = self.scenario.latency.sample_rtt(
                arm.route,
                self.hour + float(rng.uniform(0, 1)),
                rng,
                topology=self._topology,
            )
            rtts[i] = sample.total_ms
        return Frame.from_dict(
            {
                "z": z,
                "on_alt_route": z.astype(float),
                "rtt_ms": rtts,
            }
        )

    def describe(self) -> str:
        """One-line description of the two arms."""
        return (
            f"AS{self.client_asn} toggle: normal={self.arm_a.route.path} "
            f"vs alternative={self.arm_b.route.path}"
        )
