"""Conditional measurement activation (§4.1).

The paper proposes platforms that fire measurement bursts when external
signals arrive — BGP changes, scheduled maintenance windows, IXP outage
notifications — so that routing/availability changes get dense coverage
exactly around the natural experiment.  :class:`ConditionalTrigger`
watches a scenario's timeline and emits probe bursts bracketing each
matching event; the resulting measurements carry the ``CONDITIONAL``
intent tag.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlatformError
from repro.netsim.events import (
    IxpJoinEvent,
    LinkFailureEvent,
    MaintenanceWindowEvent,
    NetworkEvent,
)
from repro.netsim.scenario import Scenario
from repro.mplatform.probes import ProbePlatform
from repro.mplatform.records import Measurement, Trigger

#: Signal names a trigger can subscribe to.
SIGNALS = ("ixp_join", "link_failure", "maintenance", "any")


def _matches(event: NetworkEvent, signal: str) -> bool:
    if signal == "any":
        return True
    if signal == "ixp_join":
        return isinstance(event, IxpJoinEvent)
    if signal == "maintenance":
        return isinstance(event, MaintenanceWindowEvent)
    if signal == "link_failure":
        return isinstance(event, LinkFailureEvent) and not isinstance(
            event, MaintenanceWindowEvent
        )
    raise PlatformError(f"unknown signal {signal!r}; choose from {SIGNALS}")


@dataclass(frozen=True)
class BurstPlan:
    """Shape of the measurement burst around a triggering event.

    Attributes
    ----------
    lead_hours:
        How far before the event the burst starts (captures the
        pre-event baseline).
    trail_hours:
        How far after it extends.
    interval_hours:
        Probe spacing inside the burst (denser than background).
    """

    lead_hours: float = 24.0
    trail_hours: float = 48.0
    interval_hours: float = 0.5

    def __post_init__(self) -> None:
        if self.lead_hours < 0 or self.trail_hours <= 0:
            raise PlatformError("burst must extend after the event")
        if self.interval_hours <= 0:
            raise PlatformError("interval must be positive")

    def times_around(self, event_hour: float, duration_hours: float) -> list[float]:
        """Probe times of the burst, clipped to the simulation window."""
        t = max(event_hour - self.lead_hours, 0.0)
        end = min(event_hour + self.trail_hours, duration_hours)
        times = []
        while t < end:
            times.append(t)
            t += self.interval_hours
        return times


class ConditionalTrigger:
    """Fires probe bursts around timeline events matching a signal."""

    def __init__(
        self,
        scenario: Scenario,
        signal: str = "any",
        plan: BurstPlan | None = None,
        vantages: list[tuple[int, str]] | None = None,
    ) -> None:
        if signal not in SIGNALS:
            raise PlatformError(f"unknown signal {signal!r}; choose from {SIGNALS}")
        self.scenario = scenario
        self.signal = signal
        self.plan = plan or BurstPlan()
        self.platform = ProbePlatform(scenario, vantages)

    def matching_events(self) -> list[NetworkEvent]:
        """Timeline events this trigger would fire on."""
        return [e for e in self.scenario.timeline.events if _matches(e, self.signal)]

    def run(self, rng: np.random.Generator | int | None = 0) -> list[Measurement]:
        """Execute every burst; measurements are tagged CONDITIONAL."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        out: list[Measurement] = []
        for event in self.matching_events():
            times = self.plan.times_around(
                event.time_hour, self.scenario.duration_hours
            )
            if not times:
                continue
            out.extend(
                self.platform.probe_at_times(times, rng, trigger=Trigger.CONDITIONAL)
            )
        return out
