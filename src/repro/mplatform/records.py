"""Measurement records and their frame representation.

A :class:`Measurement` is one speed test (or probe) with its metadata:
the measuring unit, timing, RTT, the AS path taken, which IXPs the
post-test traceroute crossed, and — per the paper's §4.2 proposal — an
*intent tag* recording why the measurement was launched.  Analysts who
ignore the tag and pool everything are conditioning on the collider;
the tag is what lets them not do that.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.frames.frame import Frame


class Trigger(Enum):
    """Why a measurement happened (the §4.2 intent tag)."""

    BASELINE = "baseline"  # spontaneous / scheduled background
    PERFORMANCE = "performance"  # user reacted to bad experience
    ROUTE_CHANGE = "route_change"  # user reacted to a (perceived) change
    CONDITIONAL = "conditional"  # platform trigger fired (§4.1)
    EXPERIMENT = "experiment"  # exogenous knob experiment (§4.3)


@dataclass(frozen=True)
class Measurement:
    """One completed measurement.

    Attributes
    ----------
    asn, city:
        The measuring ⟨ASN, city⟩ unit.
    time_hour:
        Simulation time of the test.
    rtt_ms:
        Measured round-trip time to the target.
    as_path:
        AS path the test traffic took (source first).
    ixps_crossed:
        Exchange names detected in the post-test traceroute via
        hop-IP prefix matching.
    trigger:
        Intent tag (why this test ran).
    server_site:
        Measurement server identifier (used by load-balancer studies).
    download_mbps:
        NDT-style download rate (NaN when the platform measured RTT only).
    """

    asn: int
    city: str
    time_hour: float
    rtt_ms: float
    as_path: tuple[int, ...]
    ixps_crossed: tuple[str, ...]
    trigger: Trigger
    server_site: str = "default"
    download_mbps: float = float("nan")

    @property
    def day(self) -> int:
        """Zero-based simulation day."""
        return int(self.time_hour // 24)

    @property
    def unit_label(self) -> str:
        """The ⟨ASN, city⟩ label used throughout the pipeline."""
        return f"AS{self.asn}/{self.city}"

    def crosses(self, ixp_name: str) -> bool:
        """Whether the traceroute crossed the named exchange."""
        return ixp_name in self.ixps_crossed


#: Canonical measurement-frame schema, shared by the row-by-row exporter
#: below and the columnar fast path in :mod:`repro.mplatform.speedtest`.
MEASUREMENT_COLUMNS: tuple[str, ...] = (
    "asn",
    "city",
    "unit",
    "time_hour",
    "day",
    "rtt_ms",
    "as_path",
    "crosses_ixp",
    "ixps",
    "trigger",
    "server_site",
    "download_mbps",
)


def measurements_to_frame(measurements: list[Measurement]) -> Frame:
    """Flatten measurement records into an analysis frame.

    Columns: ``asn, city, unit, time_hour, day, rtt_ms, as_path,
    crosses_ixp (any), ixps, trigger, server_site``.
    """
    return Frame.from_records(
        [
            {
                "asn": m.asn,
                "city": m.city,
                "unit": m.unit_label,
                "time_hour": m.time_hour,
                "day": m.day,
                "rtt_ms": m.rtt_ms,
                "as_path": "-".join(str(a) for a in m.as_path),
                "crosses_ixp": len(m.ixps_crossed) > 0,
                "ixps": ",".join(m.ixps_crossed),
                "trigger": m.trigger.value,
                "server_site": m.server_site,
                "download_mbps": m.download_mbps,
            }
            for m in measurements
        ],
        columns=list(MEASUREMENT_COLUMNS),
    )
