"""User-initiated speed tests over a scenario (the M-Lab stand-in).

The generator walks the scenario hour by hour.  Each user group's test
count is Poisson with an *endogenous* rate: users test more when the
ambient RTT is bad and right after their route changes — the precise
mechanism that makes "a test was run" a collider between route changes
and performance (§3).  Every test is tagged with why it fired, so the
collider can be conditioned on (to reproduce the bias) or avoided.

Generation runs in two phases sharing one *plan*:

1. **Plan** — walk the window, price each cell's ambient RTT from a
   vectorised per-route curve, and draw each ⟨group, hour⟩ cell's
   Poisson test count from a dedicated *rate* RNG stream.
2. **Emit** — either the batched columnar path
   (:meth:`SpeedTestGenerator.generate_frame`, the default: one
   vectorised RNG call per pooled route instead of per test, column
   chunks instead of ``Measurement`` objects) or the scalar path
   (:meth:`SpeedTestGenerator.generate` / ``mode="scalar"``, one
   :class:`Measurement` per test).

Because the Poisson draws live on their own stream, the two emission
modes produce *exactly* the same cell counts under the same seed, and
their per-test samples are draws from the same distributions — the
property the batched-vs-scalar equivalence tests pin down.

Set ``endogenous=False`` to generate the counterfactual platform whose
sampling is condition-independent; the contrast between the two is
experiment E2.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.pipeline.shm import SharedFrameArena

from repro.errors import PlatformError
from repro.obs import get_metrics, span
from repro.frames.builder import FrameBuilder
from repro.frames.column import (
    KIND_BOOL,
    KIND_FLOAT,
    KIND_INT,
    KIND_OBJECT,
)
from repro.frames.frame import Frame
from repro.netsim.bgp import Route
from repro.netsim.geo import propagation_delay_ms
from repro.netsim.scenario import Scenario
from repro.netsim.throughput import ThroughputModel
from repro.netsim.topology import Topology
from repro.netsim.traceroute import detect_ixp_crossings, synthesize_traceroute
from repro.mplatform.records import (
    MEASUREMENT_COLUMNS,
    Measurement,
    Trigger,
    measurements_to_frame,
)

logger = logging.getLogger(__name__)

#: Declared kinds for the columnar fast path (skips per-chunk inference
#: and keeps an empty frame's schema fully typed).
_FRAME_KINDS: dict[str, str] = {
    "asn": KIND_INT,
    "city": KIND_OBJECT,
    "unit": KIND_OBJECT,
    "time_hour": KIND_FLOAT,
    "day": KIND_INT,
    "rtt_ms": KIND_FLOAT,
    "as_path": KIND_OBJECT,
    "crosses_ixp": KIND_BOOL,
    "ixps": KIND_OBJECT,
    "trigger": KIND_OBJECT,
    "server_site": KIND_OBJECT,
    "download_mbps": KIND_FLOAT,
}


def _split_rng(
    rng: np.random.Generator | int | None,
) -> tuple[np.random.Generator, np.random.Generator]:
    """Derive the (rate, noise) stream pair shared by both emission modes.

    Cell counts draw from the *rate* stream only, so the batched and
    scalar paths see identical Poisson sequences; per-test samples draw
    from the *noise* stream in whatever order their mode prefers.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    rate_seed, noise_seed = rng.integers(0, 2**63, size=2)
    return (
        np.random.default_rng(int(rate_seed)),
        np.random.default_rng(int(noise_seed)),
    )


@dataclass(frozen=True)
class SpeedTestConfig:
    """Knobs for the speed-test generator.

    Attributes
    ----------
    endogenous:
        When True (default), test rates respond to RTT and route churn;
        when False every group tests at its base rate regardless of
        conditions (an idealised unbiased platform).
    change_window_hours:
        How long after a route change the curiosity burst lasts.
    max_tests_per_group_hour:
        Safety cap on the Poisson draw.
    """

    endogenous: bool = True
    change_window_hours: float = 24.0
    max_tests_per_group_hour: int = 200


@dataclass(frozen=True)
class _Cell:
    """One ⟨group, hour⟩ cell with a positive test count."""

    group_index: int
    hour: float
    n_tests: int
    ambient_ms: float
    recently_changed: bool
    state_key: tuple[int, frozenset]


@dataclass
class _GenerationPlan:
    """Everything emission needs: cells plus route/topology lookups."""

    cells: list[_Cell]
    routes: dict[tuple[int, tuple], Route]  # (asn, state_key) -> route
    topologies: dict[tuple, Topology]  # state_key -> epoch topology


class SpeedTestGenerator:
    """Generates measurements for every user group in a scenario."""

    def __init__(
        self,
        scenario: Scenario,
        config: SpeedTestConfig | None = None,
        throughput: ThroughputModel | None = None,
    ) -> None:
        self.scenario = scenario
        self.config = config or SpeedTestConfig()
        self.throughput = (
            throughput
            if throughput is not None
            else ThroughputModel(scenario.latency)
        )
        self._backhaul_cache: dict[tuple[int, str], float] = {}
        self._trace_cache: dict[tuple[int, int, frozenset], tuple[str, ...]] = {}

    def _backhaul_ms(self, asn: int, city: str, backhaul_city: str | None) -> float:
        key = (asn, city)
        if key not in self._backhaul_cache:
            home = self.scenario.topology.get_as(asn).city
            target = backhaul_city or home
            self._backhaul_cache[key] = 2.0 * propagation_delay_ms(
                self.scenario.cities.get(city), self.scenario.cities.get(target)
            )
        return self._backhaul_cache[key]

    def _crossings(self, asn: int, hour: float) -> tuple[str, ...]:
        """IXPs crossed by *asn*'s current route (cached per routing state)."""
        state = self.scenario.timeline.state_at(hour)
        key = (asn, state.epoch, state.dead_links)
        if key not in self._trace_cache:
            routes = self.scenario.timeline.routes_at(hour, self.scenario.content_asn)
            route = routes.get(asn)
            if route is None:
                raise PlatformError(f"AS{asn} cannot reach the measurement target")
            trace = synthesize_traceroute(state.topology, state.ixps, route)
            self._trace_cache[key] = tuple(detect_ixp_crossings(trace, state.ixps))
        return self._trace_cache[key]

    # -- planning -------------------------------------------------------------

    def _plan(self, rate_rng: np.random.Generator) -> _GenerationPlan:
        """Walk the window and fix every cell's test count and rate context.

        Ambient RTT comes from one vectorised noise-free curve per
        ⟨AS, routing-state⟩ (evaluated over the whole integer-hour grid)
        instead of a per-cell Python loop over links; the Poisson count
        draws happen here, in deterministic ⟨hour, group⟩ order, so both
        emission modes inherit identical cells.
        """
        with span("generate.plan") as sp:
            plan = self._plan_cells(rate_rng)
            sp.set(cells=len(plan.cells))
        return plan

    def _plan_cells(self, rate_rng: np.random.Generator) -> _GenerationPlan:
        scenario = self.scenario
        config = self.config
        n_hours = int(scenario.duration_hours)
        grid = np.arange(n_hours, dtype=np.float64)
        cells: list[_Cell] = []
        routes_by_key: dict[tuple[int, tuple], Route] = {}
        topologies: dict[tuple, Topology] = {}
        ambient_curves: dict[tuple[int, tuple], np.ndarray] = {}
        last_path: dict[int, tuple[int, ...]] = {}
        last_change: dict[int, float] = {}

        for hour in range(n_hours):
            t = float(hour)
            state = scenario.timeline.state_at(t)
            routes = scenario.timeline.routes_at(t, scenario.content_asn)
            state_key = (state.epoch, state.dead_links)
            if state_key not in topologies:
                topologies[state_key] = state.topology
            for gi, group in enumerate(scenario.user_groups):
                route = routes.get(group.asn)
                if route is None:
                    continue
                if last_path.get(group.asn) not in (None, route.path):
                    last_change[group.asn] = t
                last_path[group.asn] = route.path

                route_key = (group.asn, state_key)
                if route_key not in routes_by_key:
                    routes_by_key[route_key] = route
                    ambient_curves[route_key] = scenario.latency.expected_rtt_batch(
                        route, grid, topology=state.topology
                    )
                ambient = float(ambient_curves[route_key][hour]) + self._backhaul_ms(
                    group.asn, group.city, group.backhaul_city
                )
                since_change = (
                    t - last_change[group.asn] if group.asn in last_change else None
                )
                if config.endogenous:
                    rate = group.test_rate(
                        ambient, since_change, config.change_window_hours
                    )
                else:
                    rate = group.base_rate_per_hour
                n_tests = int(
                    min(
                        rate_rng.poisson(rate * group.n_users),
                        config.max_tests_per_group_hour,
                    )
                )
                if n_tests == 0:
                    continue
                recently_changed = (
                    since_change is not None
                    and since_change < config.change_window_hours
                )
                cells.append(
                    _Cell(
                        group_index=gi,
                        hour=t,
                        n_tests=n_tests,
                        ambient_ms=ambient,
                        recently_changed=recently_changed,
                        state_key=state_key,
                    )
                )
        return _GenerationPlan(
            cells=cells, routes=routes_by_key, topologies=topologies
        )

    # -- scalar emission (the escape hatch) -----------------------------------

    def generate(self, rng: np.random.Generator | int | None = 0) -> list[Measurement]:
        """Run the whole window and return every measurement taken.

        This is the scalar path: one :class:`Measurement` object per
        test, sampled one RNG call at a time.  The recorded
        ``time_hour`` is the *same* hour the congestion-dependent RTT
        was sampled at (historically a second, independent uniform was
        recorded, decorrelating timestamps from the diurnal state that
        produced the RTT).
        """
        with span("generate", mode="scalar") as sp:
            out = self._generate_scalar(rng)
            sp.set(rows=len(out))
        get_metrics().counter(
            "measurements_generated_total", "speed tests emitted by the simulator"
        ).inc(len(out))
        logger.info("generated %d measurements (scalar path)", len(out))
        return out

    def _generate_scalar(self, rng: np.random.Generator | int | None) -> list[Measurement]:
        rate_rng, noise_rng = _split_rng(rng)
        plan = self._plan(rate_rng)
        scenario = self.scenario
        out: list[Measurement] = []
        for cell in plan.cells:
            group = scenario.user_groups[cell.group_index]
            route = plan.routes[(group.asn, cell.state_key)]
            topo = plan.topologies[cell.state_key]
            crossings = self._crossings(group.asn, cell.hour)
            backhaul = self._backhaul_ms(group.asn, group.city, group.backhaul_city)
            for _ in range(cell.n_tests):
                test_hour = cell.hour + float(noise_rng.uniform(0, 1))
                sample = scenario.latency.sample_rtt(
                    route, test_hour, noise_rng, topology=topo
                )
                rtt = sample.total_ms + backhaul
                tput = self.throughput.sample(
                    route, rtt, test_hour, noise_rng, topology=topo
                )
                trigger = self._classify_trigger(
                    group, cell.ambient_ms, cell.recently_changed, noise_rng
                )
                out.append(
                    Measurement(
                        asn=group.asn,
                        city=group.city,
                        time_hour=test_hour,
                        rtt_ms=rtt,
                        as_path=route.path,
                        ixps_crossed=crossings,
                        trigger=trigger,
                        download_mbps=tput.download_mbps,
                    )
                )
        return out

    # -- batched emission (the columnar fast path) ----------------------------

    def generate_frame(
        self,
        rng: np.random.Generator | int | None = 0,
        mode: str = "batch",
        arena: "SharedFrameArena | None" = None,
    ) -> Frame:
        """Run the whole window and return the measurement frame directly.

        ``mode="batch"`` (default) pools every cell of a ⟨group,
        routing-state⟩ pair into single vectorised RTT/throughput/
        trigger draws and accumulates typed column chunks — no
        per-test Python work and no intermediate ``Measurement``
        objects.  Repeated per-pool strings (unit label, AS path, IXP
        list) are stored as one shared object per chunk, not copied
        per row.

        ``mode="scalar"`` is the escape hatch: the classic object path
        (:meth:`generate`) followed by row-by-row frame export.  Cell
        counts are identical across modes under the same seed; samples
        agree in distribution.

        *arena* (batch mode only) seals the frame's float columns
        straight into that :class:`~repro.pipeline.shm.SharedFrameArena`'s
        named blocks — the downstream study pipeline then reads the
        same pages a process pool would attach, no private copy.
        """
        if mode == "scalar":
            if arena is not None:
                raise PlatformError("arena-backed columns need mode='batch'")
            return measurements_to_frame(self.generate(rng))
        if mode != "batch":
            raise PlatformError(f"unknown generation mode {mode!r}")
        with span("generate", mode="batch") as sp:
            frame = self._generate_batch(rng, arena=arena)
            sp.set(rows=frame.num_rows)
        get_metrics().counter(
            "measurements_generated_total", "speed tests emitted by the simulator"
        ).inc(frame.num_rows)
        logger.info("generated %d measurements (batched path)", frame.num_rows)
        return frame

    def _generate_batch(
        self,
        rng: np.random.Generator | int | None,
        arena: "SharedFrameArena | None" = None,
    ) -> Frame:
        rate_rng, noise_rng = _split_rng(rng)
        plan = self._plan(rate_rng)
        scenario = self.scenario

        pools: dict[tuple[int, tuple], list[_Cell]] = {}
        for cell in plan.cells:
            pools.setdefault((cell.group_index, cell.state_key), []).append(cell)

        builder = FrameBuilder(MEASUREMENT_COLUMNS, kinds=_FRAME_KINDS)
        for (gi, state_key), pool in pools.items():
            group = scenario.user_groups[gi]
            route = plan.routes[(group.asn, state_key)]
            topo = plan.topologies[state_key]
            counts = np.array([c.n_tests for c in pool], dtype=np.int64)
            n = int(counts.sum())

            start_hours = np.repeat(
                np.array([c.hour for c in pool], dtype=np.float64), counts
            )
            time_hour = start_hours + noise_rng.uniform(0.0, 1.0, size=n)
            latency = scenario.latency.sample_rtt_batch(
                route, time_hour, noise_rng, topology=topo
            )
            backhaul = self._backhaul_ms(group.asn, group.city, group.backhaul_city)
            rtt = latency.total_ms + backhaul
            tput = self.throughput.sample_batch(
                route, rtt, time_hour, noise_rng, topology=topo
            )
            ambient = np.repeat(
                np.array([c.ambient_ms for c in pool], dtype=np.float64), counts
            )
            recent = np.repeat(
                np.array([c.recently_changed for c in pool], dtype=np.float64), counts
            )
            triggers = self._classify_triggers_batch(group, ambient, recent, noise_rng)

            crossings = self._crossings(group.asn, pool[0].hour)
            builder.append_chunk(
                {
                    "asn": np.full(n, group.asn, dtype=np.int64),
                    "city": np.full(n, group.city, dtype=object),
                    "unit": np.full(n, group.unit_label, dtype=object),
                    "time_hour": time_hour,
                    "day": (time_hour // 24.0).astype(np.int64),
                    "rtt_ms": rtt,
                    "as_path": np.full(
                        n, "-".join(str(a) for a in route.path), dtype=object
                    ),
                    "crosses_ixp": np.full(n, len(crossings) > 0, dtype=np.bool_),
                    "ixps": np.full(n, ",".join(crossings), dtype=object),
                    "trigger": triggers,
                    "server_site": np.full(n, "default", dtype=object),
                    "download_mbps": tput.download_mbps,
                }
            )
        alloc = arena.column_alloc("measurements") if arena is not None else None
        return builder.build(alloc=alloc)

    # -- trigger attribution ---------------------------------------------------

    def _classify_trigger(
        self,
        group,
        ambient_rtt: float,
        recently_changed: bool,
        rng: np.random.Generator,
    ) -> Trigger:
        """Attribute one test to its (probabilistic) cause for tagging.

        The attribution shares the rate model's structure: the excess
        rate over baseline is split between the performance and
        route-change channels proportionally to their multipliers.
        """
        if not self.config.endogenous:
            return Trigger.BASELINE
        perf_mult = 1.0
        if ambient_rtt > group.rtt_reference_ms:
            perf_mult += group.perf_sensitivity * (
                ambient_rtt - group.rtt_reference_ms
            ) / 100.0
        change_mult = 1.0 + (group.change_sensitivity if recently_changed else 0.0)
        total = perf_mult * change_mult
        draw = rng.uniform(0, total)
        if draw < 1.0:
            return Trigger.BASELINE
        if draw < perf_mult:
            return Trigger.PERFORMANCE
        return Trigger.ROUTE_CHANGE

    def _classify_triggers_batch(
        self,
        group,
        ambient_rtt: np.ndarray,
        recently_changed: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorised trigger attribution: one draw per test, whole cell at once.

        Returns an object array of trigger *values* (the frame encoding),
        classified by the same thresholds as :meth:`_classify_trigger`.
        """
        n = len(ambient_rtt)
        if not self.config.endogenous:
            return np.full(n, Trigger.BASELINE.value, dtype=object)
        perf_mult = (
            1.0
            + group.perf_sensitivity
            * np.maximum(ambient_rtt - group.rtt_reference_ms, 0.0)
            / 100.0
        )
        change_mult = 1.0 + group.change_sensitivity * recently_changed
        draw = rng.uniform(0.0, 1.0, size=n) * (perf_mult * change_mult)
        out = np.full(n, Trigger.BASELINE.value, dtype=object)
        out[draw >= 1.0] = Trigger.PERFORMANCE.value
        out[draw >= perf_mult] = Trigger.ROUTE_CHANGE.value
        return out


def run_speed_tests(
    scenario: Scenario,
    rng: np.random.Generator | int | None = 0,
    endogenous: bool = True,
) -> list[Measurement]:
    """Convenience wrapper: generate all speed tests for a scenario."""
    generator = SpeedTestGenerator(
        scenario, SpeedTestConfig(endogenous=endogenous)
    )
    return generator.generate(rng)


def measurements_frame(
    scenario: Scenario,
    rng: np.random.Generator | int | None = 0,
    endogenous: bool = True,
    mode: str = "batch",
    arena: "SharedFrameArena | None" = None,
) -> Frame:
    """Convenience wrapper: generate a scenario's measurement frame.

    The batched columnar path is the default; pass ``mode="scalar"``
    for the classic per-``Measurement`` object path (same cell counts,
    same distributions, a lot slower).  *arena* seals float columns
    into shared-memory blocks (see
    :meth:`SpeedTestGenerator.generate_frame`).
    """
    generator = SpeedTestGenerator(
        scenario, SpeedTestConfig(endogenous=endogenous)
    )
    return generator.generate_frame(rng, mode=mode, arena=arena)
