"""User-initiated speed tests over a scenario (the M-Lab stand-in).

The generator walks the scenario hour by hour.  Each user group's test
count is Poisson with an *endogenous* rate: users test more when the
ambient RTT is bad and right after their route changes — the precise
mechanism that makes "a test was run" a collider between route changes
and performance (§3).  Every test is tagged with why it fired, so the
collider can be conditioned on (to reproduce the bias) or avoided.

Set ``endogenous=False`` to generate the counterfactual platform whose
sampling is condition-independent; the contrast between the two is
experiment E2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PlatformError
from repro.netsim.geo import propagation_delay_ms
from repro.netsim.scenario import Scenario
from repro.netsim.throughput import ThroughputModel
from repro.netsim.traceroute import detect_ixp_crossings, synthesize_traceroute
from repro.mplatform.records import Measurement, Trigger


@dataclass(frozen=True)
class SpeedTestConfig:
    """Knobs for the speed-test generator.

    Attributes
    ----------
    endogenous:
        When True (default), test rates respond to RTT and route churn;
        when False every group tests at its base rate regardless of
        conditions (an idealised unbiased platform).
    change_window_hours:
        How long after a route change the curiosity burst lasts.
    max_tests_per_group_hour:
        Safety cap on the Poisson draw.
    """

    endogenous: bool = True
    change_window_hours: float = 24.0
    max_tests_per_group_hour: int = 200


class SpeedTestGenerator:
    """Generates measurements for every user group in a scenario."""

    def __init__(
        self,
        scenario: Scenario,
        config: SpeedTestConfig | None = None,
        throughput: ThroughputModel | None = None,
    ) -> None:
        self.scenario = scenario
        self.config = config or SpeedTestConfig()
        self.throughput = (
            throughput
            if throughput is not None
            else ThroughputModel(scenario.latency)
        )
        self._backhaul_cache: dict[tuple[int, str], float] = {}
        self._trace_cache: dict[tuple[int, int, frozenset], tuple[str, ...]] = {}

    def _backhaul_ms(self, asn: int, city: str, backhaul_city: str | None) -> float:
        key = (asn, city)
        if key not in self._backhaul_cache:
            home = self.scenario.topology.get_as(asn).city
            target = backhaul_city or home
            self._backhaul_cache[key] = 2.0 * propagation_delay_ms(
                self.scenario.cities.get(city), self.scenario.cities.get(target)
            )
        return self._backhaul_cache[key]

    def _crossings(self, asn: int, hour: float) -> tuple[str, ...]:
        """IXPs crossed by *asn*'s current route (cached per routing state)."""
        state = self.scenario.timeline.state_at(hour)
        key = (asn, state.epoch, state.dead_links)
        if key not in self._trace_cache:
            routes = self.scenario.timeline.routes_at(hour, self.scenario.content_asn)
            route = routes.get(asn)
            if route is None:
                raise PlatformError(f"AS{asn} cannot reach the measurement target")
            trace = synthesize_traceroute(state.topology, state.ixps, route)
            self._trace_cache[key] = tuple(detect_ixp_crossings(trace, state.ixps))
        return self._trace_cache[key]

    def generate(self, rng: np.random.Generator | int | None = 0) -> list[Measurement]:
        """Run the whole window and return every measurement taken."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        scenario = self.scenario
        config = self.config
        hours = int(scenario.duration_hours)
        out: list[Measurement] = []
        last_path: dict[int, tuple[int, ...]] = {}
        last_change: dict[int, float] = {}

        for hour in range(hours):
            t = float(hour)
            routes = scenario.timeline.routes_at(t, scenario.content_asn)
            state = scenario.timeline.state_at(t)
            for group in scenario.user_groups:
                route = routes.get(group.asn)
                if route is None:
                    continue
                if last_path.get(group.asn) not in (None, route.path):
                    last_change[group.asn] = t
                last_path[group.asn] = route.path

                ambient = scenario.latency.expected_rtt(
                    route, t, topology=state.topology
                ) + self._backhaul_ms(group.asn, group.city, group.backhaul_city)
                since_change = (
                    t - last_change[group.asn] if group.asn in last_change else None
                )
                if config.endogenous:
                    rate = group.test_rate(
                        ambient, since_change, config.change_window_hours
                    )
                else:
                    rate = group.base_rate_per_hour
                n_tests = int(
                    min(
                        rng.poisson(rate * group.n_users),
                        config.max_tests_per_group_hour,
                    )
                )
                if n_tests == 0:
                    continue
                crossings = self._crossings(group.asn, t)
                backhaul = self._backhaul_ms(group.asn, group.city, group.backhaul_city)
                recently_changed = (
                    since_change is not None
                    and since_change < config.change_window_hours
                )
                for _ in range(n_tests):
                    test_hour = t + float(rng.uniform(0, 1))
                    sample = scenario.latency.sample_rtt(
                        route, test_hour, rng, topology=state.topology
                    )
                    rtt = sample.total_ms + backhaul
                    tput = self.throughput.sample(
                        route, rtt, test_hour, rng, topology=state.topology
                    )
                    trigger = self._classify_trigger(
                        group, ambient, recently_changed, rng
                    )
                    out.append(
                        Measurement(
                            asn=group.asn,
                            city=group.city,
                            time_hour=t + float(rng.uniform(0, 1)),
                            rtt_ms=rtt,
                            as_path=route.path,
                            ixps_crossed=crossings,
                            trigger=trigger,
                            download_mbps=tput.download_mbps,
                        )
                    )
        return out

    def _classify_trigger(
        self,
        group,
        ambient_rtt: float,
        recently_changed: bool,
        rng: np.random.Generator,
    ) -> Trigger:
        """Attribute one test to its (probabilistic) cause for tagging.

        The attribution shares the rate model's structure: the excess
        rate over baseline is split between the performance and
        route-change channels proportionally to their multipliers.
        """
        if not self.config.endogenous:
            return Trigger.BASELINE
        perf_mult = 1.0
        if ambient_rtt > group.rtt_reference_ms:
            perf_mult += group.perf_sensitivity * (
                ambient_rtt - group.rtt_reference_ms
            ) / 100.0
        change_mult = 1.0 + (group.change_sensitivity if recently_changed else 0.0)
        total = perf_mult * change_mult
        draw = rng.uniform(0, total)
        if draw < 1.0:
            return Trigger.BASELINE
        if draw < perf_mult:
            return Trigger.PERFORMANCE
        return Trigger.ROUTE_CHANGE


def run_speed_tests(
    scenario: Scenario,
    rng: np.random.Generator | int | None = 0,
    endogenous: bool = True,
) -> list[Measurement]:
    """Convenience wrapper: generate all speed tests for a scenario."""
    generator = SpeedTestGenerator(
        scenario, SpeedTestConfig(endogenous=endogenous)
    )
    return generator.generate(rng)
