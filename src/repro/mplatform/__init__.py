"""Measurement platforms over the simulated Internet.

- :mod:`~repro.mplatform.speedtest` — user-initiated, endogenously
  triggered tests (the M-Lab stand-in, collider included);
- :mod:`~repro.mplatform.probes` — fixed-interval scheduled probing
  (the Atlas stand-in);
- :mod:`~repro.mplatform.loadbalancer` — randomized server assignment
  (the M-Lab natural experiment);
- :mod:`~repro.mplatform.triggers` — §4.1 conditional activation;
- :mod:`~repro.mplatform.knobs` — §4.3 exogenous intervention APIs;
- :mod:`~repro.mplatform.records` — measurement records with §4.2
  intent tags, and frame export.
"""

from repro.mplatform.knobs import RouteToggle, ToggleArm
from repro.mplatform.loadbalancer import (
    LoadBalancerWorld,
    ServerSite,
    default_world,
    generate_tests,
    site_contrast,
)
from repro.mplatform.probes import ProbePlatform, ProbeSchedule
from repro.mplatform.records import (
    MEASUREMENT_COLUMNS,
    Measurement,
    Trigger,
    measurements_to_frame,
)
from repro.mplatform.speedtest import (
    SpeedTestConfig,
    SpeedTestGenerator,
    measurements_frame,
    run_speed_tests,
)
from repro.mplatform.triggers import SIGNALS, BurstPlan, ConditionalTrigger

__all__ = [
    "BurstPlan",
    "ConditionalTrigger",
    "LoadBalancerWorld",
    "MEASUREMENT_COLUMNS",
    "Measurement",
    "ProbePlatform",
    "ProbeSchedule",
    "RouteToggle",
    "SIGNALS",
    "ServerSite",
    "SpeedTestConfig",
    "SpeedTestGenerator",
    "ToggleArm",
    "Trigger",
    "default_world",
    "generate_tests",
    "measurements_frame",
    "measurements_to_frame",
    "run_speed_tests",
    "site_contrast",
]
