"""The campaign scheduler: many scenarios, one pool, adaptive budget.

Runs a fleet of :class:`~repro.campaign.spec.ScenarioSpec`s as one
campaign on the existing executor/retry/checkpoint/shared-memory stack:

- **Stage A** builds each scenario's world and measurement frame (into
  a per-scenario :class:`~repro.pipeline.shm.SharedFrameArena`, closed
  as soon as the panel is pivoted out), screens treated units with the
  batch study's own :func:`~repro.pipeline.study.prepare_unit_plan`,
  and opens one checkpoint journal per scenario.
- **Stage B** interleaves every scenario's base unit fits round-robin
  onto one shared executor — scenario B's fits don't wait for scenario
  A's, and a single process pool serves the whole campaign.
- **Stage C** spends the placebo-refit budget in rounds: the
  :mod:`~repro.campaign.allocator` hands each round's refits to
  scenarios in proportion to their current placebo-ratio CI width
  (Zeph-style), freezing converged scenarios, and each round's grants
  are interleaved onto the same pool.
- The **verdict table** generalizes Table 1 across scenarios; each
  scenario's rows are built with exactly the batch study's p-value
  convention, so a campaign given enough budget to exhaust every
  placebo queue reproduces ``run_ixp_study``'s rows bit-for-bit.

Determinism contract: the verdict table is a pure function of the spec
fleet and the campaign parameters — identical across ``--jobs`` values,
scenario-order permutations, and kill/resume boundaries.  Everything
order-dependent (allocation, refit queues, tie-breaks) is derived from
sorted scenario names and seeded hashes, never from completion order.
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.campaign.allocator import (
    AllocationRound,
    ScenarioStat,
    allocate_round,
    placebo_ci_width,
    uniform_round,
)
from repro.campaign.spec import ScenarioSpec, build_scenario
from repro.chaos.runtime import current_attempt, fault_point, task_attempt
from repro.errors import (
    CheckpointError,
    DonorPoolError,
    EstimationError,
    PipelineError,
    TransientError,
)
from repro.estimators.bootstrap import permutation_p_value
from repro.mplatform.speedtest import measurements_frame
from repro.obs import span
from repro.obs.metrics import get_metrics
from repro.pipeline.aggregate import rtt_panel
from repro.pipeline.checkpoint import StudyCheckpoint
from repro.pipeline.crossing import assign_treatment
from repro.pipeline.executor import RetryPolicy, get_executor, resolve_n_jobs
from repro.pipeline.shm import SharedFrameArena, SharedPanelOwner, SharedPanelRef
from repro.pipeline.study import (
    StudyResult,
    StudyRow,
    _UnitTask,
    prepare_unit_plan,
)
from repro.stream.state import ingest_frame
from repro.studies.ixp_latency import scenario_truth
from repro.synthcontrol.donor import Panel, select_donors
from repro.synthcontrol.placebo import _PlaceboContext, _placebo_refit_inner
from repro.synthcontrol.robust import DenoiseCache, robust_synthetic_control


# ---------------------------------------------------------------------------
# Worker-side task payloads and entry points
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignUnitFit:
    """One base fit's journald state: everything but the p-value.

    The p-value is *not* here by design — it is a function of however
    many placebo refits the budget ended up granting, recomputed from
    the refit ledger whenever the verdict table is built.
    """

    unit: str
    effect: float
    rmse_ratio: float
    pre_periods: int
    post_periods: int
    donors: tuple[str, ...]


@dataclass(frozen=True)
class _BaseFitTask:
    """One scenario-qualified base unit fit, picklable for the pool."""

    scenario: str
    unit: str
    pre_periods: int
    post_periods: int
    panel: Panel | SharedPanelRef
    excluded: tuple[str, ...]
    max_donor_missing: float
    energy: float
    ridge: float


@dataclass(frozen=True)
class _RefitTask:
    """One placebo refit (scenario, unit, leave-one-out column)."""

    scenario: str
    unit: str
    col: int
    donors: tuple[str, ...]
    pre_periods: int
    panel: Panel | SharedPanelRef
    energy: float
    ridge: float
    min_pre_rmse: float = 1e-9


#: Per-worker-process content-keyed SVD cache: every refit of the same
#: (scenario, unit) donor matrix reuses one factorization.  Recreated
#: when it grows past the bound so a long campaign cannot leak SVDs.
_WORKER_CACHE = DenoiseCache()
_WORKER_CACHE_CAP = 64


def _worker_cache() -> DenoiseCache:
    global _WORKER_CACHE
    if len(_WORKER_CACHE._factorizations) > _WORKER_CACHE_CAP:
        _WORKER_CACHE = DenoiseCache()
    return _WORKER_CACHE


def _task_panel(panel: Panel | SharedPanelRef) -> Panel:
    return panel.load() if isinstance(panel, SharedPanelRef) else panel


def _campaign_unit_fit(task: _BaseFitTask) -> CampaignUnitFit | tuple[str, str]:
    """Fit one unit's synthetic control (no placebos): fit or skip.

    Mirrors :func:`repro.pipeline.study._analyse_unit` exactly — same
    donor screen, same cached robust fit — minus the placebo loop,
    which the budget allocator owns.  The fault key is scenario-
    qualified (``"<scenario>/<unit>"``) so chaos plans can target one
    scenario's fits without touching its neighbours'.
    """
    metrics = get_metrics()
    panel = _task_panel(task.panel)
    with span("fits.unit", unit=task.unit, scenario=task.scenario) as sp:
        fault_point("fits.unit", key=f"{task.scenario}/{task.unit}")
        try:
            donors = select_donors(
                panel,
                task.unit,
                excluded=task.excluded,
                pre_periods=task.pre_periods,
                max_missing=task.max_donor_missing,
            )
            donor_matrix = np.column_stack([panel.series(d) for d in donors])
            # placebo_test creates a DenoiseCache when given none, so the
            # treated fit here takes the identical cached code path.
            fit = robust_synthetic_control(
                panel.series(task.unit),
                donor_matrix,
                task.pre_periods,
                treated_name=task.unit,
                donor_names=donors,
                energy=task.energy,
                ridge=task.ridge,
                cache=DenoiseCache(),
            )
        except (DonorPoolError, EstimationError) as exc:
            sp.set(status="skipped", reason=str(exc))
            metrics.counter(
                "units_skipped_total", "treated units the study could not fit"
            ).inc()
            return (task.unit, str(exc))
        sp.set(status="ok", n_donors=len(donors))
        metrics.counter(
            "units_analysed_total", "treated units with a fitted StudyRow"
        ).inc()
        return CampaignUnitFit(
            unit=task.unit,
            effect=float(fit.effect),
            rmse_ratio=float(fit.rmse_ratio),
            pre_periods=task.pre_periods,
            post_periods=task.post_periods,
            donors=tuple(donors),
        )


def _campaign_refit(task: _RefitTask) -> tuple[str, float | None, str]:
    """One placebo refit: ``(donor_name, ratio | None, skip_reason)``.

    Runs the same pure inner refit as the batch study's placebo loop
    (:func:`~repro.synthcontrol.placebo._placebo_refit_inner` over a
    leave-one-out de-noising of the full factorization), so a campaign
    that exhausts a unit's queue produces the batch study's exact
    ratios.
    """
    metrics = get_metrics()
    panel = _task_panel(task.panel)
    donor = task.donors[task.col]
    with span(
        "placebo", donor=donor, scenario=task.scenario, unit=task.unit
    ) as sp:
        fault_point(
            "campaign.refit", key=f"{task.scenario}/{task.unit}/{donor}"
        )
        matrix = np.column_stack([panel.series(d) for d in task.donors])
        fact = _worker_cache().factorization(matrix)
        ctx = _PlaceboContext(
            donors=matrix,
            donor_names=task.donors,
            pre_periods=task.pre_periods,
            min_pre_rmse=task.min_pre_rmse,
            method="robust",
            fit_kwargs={},
            fact=fact,
            energy=task.energy,
            ridge=task.ridge,
            loo=None,
        )
        name, ratio, reason = _placebo_refit_inner(ctx, task.col)
        sp.set(ok=ratio is not None)
        metrics.counter("placebos_total", "placebo refits attempted").inc()
        if ratio is None:
            sp.set(reason=reason)
            metrics.counter(
                "placebos_skipped_total", "placebo refits that failed estimation"
            ).inc()
    return name, ratio, reason


# ---------------------------------------------------------------------------
# Parent-side per-scenario state
# ---------------------------------------------------------------------------

@dataclass
class _ScenarioState:
    spec: ScenarioSpec
    truth: dict[str, float]
    assignment: Any
    panel: Panel
    owner: SharedPanelOwner | None
    plan: list
    checkpoint: StudyCheckpoint | None
    fits: dict[str, CampaignUnitFit] = field(default_factory=dict)
    fit_skips: dict[str, str] = field(default_factory=dict)
    #: Every possible refit, in deterministic queue order; the budget
    #: walks this list front to back, so "which refits ran" is a pure
    #: function of how much budget this scenario received.
    queue: list[tuple[str, int]] = field(default_factory=list)
    #: Refit ledger: (unit, col) -> (donor, ratio | None, reason).
    done: dict[tuple[str, int], tuple[str, float | None, str]] = field(
        default_factory=dict
    )
    next_index: int = 0
    frozen: bool = False

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def remaining(self) -> int:
        return len(self.queue) - self.next_index

    @property
    def executed(self) -> int:
        return self.next_index

    def ratio_values(self) -> list[float]:
        """Surviving ratios from the *granted* queue prefix, pooled.

        Deliberately bounded by ``next_index`` rather than the whole
        ledger: on resume the journal already holds refits from rounds
        that haven't replayed yet, and feeding those to the allocator
        early would change the allocation sequence — the replay must see
        exactly what the original run saw at each round boundary.
        """
        vals: list[float] = []
        for key in self.queue[: self.next_index]:
            rec = self.done.get(key)
            if rec is not None and rec[1] is not None and math.isfinite(rec[1]):
                vals.append(rec[1])
        return vals

    def task_panel(self) -> Panel | SharedPanelRef:
        return self.owner.ref if self.owner is not None else self.panel


def _build_refit_queue(state: _ScenarioState) -> list[tuple[str, int]]:
    """The scenario's refit queue: round-robin over units, then columns.

    Breadth-first across units (column 0 of every unit before column 1
    of any) so a small budget still samples every unit's null
    distribution instead of exhausting the first unit's donors.
    """
    units = [
        step.unit
        for step in state.plan
        if isinstance(step, _UnitTask) and step.unit in state.fits
    ]
    max_cols = max(
        (len(state.fits[u].donors) for u in units), default=0
    )
    queue: list[tuple[str, int]] = []
    for col in range(max_cols):
        for unit in units:
            if col < len(state.fits[unit].donors):
                queue.append((unit, col))
    return queue


def _interleave(per_scenario: list[list[Any]]) -> list[Any]:
    """Round-robin merge: element 0 of each list, then element 1, ..."""
    merged: list[Any] = []
    for i in range(max((len(lst) for lst in per_scenario), default=0)):
        for lst in per_scenario:
            if i < len(lst):
                merged.append(lst[i])
    return merged


# ---------------------------------------------------------------------------
# Campaign result types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioVerdict:
    """One verdict-table row: a scenario's Table-1 summary."""

    scenario: str
    kind: str
    seed: int
    n_units: int
    n_skipped: int
    mean_delta_ms: float
    mean_true_ms: float
    n_significant: int
    consistent_effect: bool
    placebo_refits: int
    ci_width: float
    converged: bool

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        if math.isinf(self.ci_width):
            data["ci_width"] = "inf"
        return data


@dataclass(frozen=True)
class CampaignResult:
    """Everything a campaign produced, verdicts in scenario-name order."""

    verdicts: tuple[ScenarioVerdict, ...]
    studies: dict[str, StudyResult]
    trace: tuple[AllocationRound, ...]
    total_refits: int
    budget: int
    allocation: str

    def format_campaign_table(self) -> str:
        """The cross-scenario verdict table (fixed-width, byte-stable).

        Float formatting goes through ``%``-style fixed precision, so
        two runs that produced equal numbers render equal bytes — the
        determinism tests diff this string directly.
        """
        header = (
            f"{'scenario':<24} {'kind':<16} {'units':>5} {'skip':>4} "
            f"{'Δ est (ms)':>10} {'Δ true (ms)':>11} {'sig':>3} "
            f"{'consistent':>10} {'refits':>6} {'ci width':>8} {'conv':>4}"
        )
        lines = [header, "-" * len(header)]
        for v in self.verdicts:
            width = "inf" if math.isinf(v.ci_width) else f"{v.ci_width:.3f}"
            est = "n/a" if math.isnan(v.mean_delta_ms) else f"{v.mean_delta_ms:+.2f}"
            true = "n/a" if math.isnan(v.mean_true_ms) else f"{v.mean_true_ms:+.2f}"
            lines.append(
                f"{v.scenario:<24} {v.kind:<16} {v.n_units:>5} {v.n_skipped:>4} "
                f"{est:>10} {true:>11} {v.n_significant:>3} "
                f"{'yes' if v.consistent_effect else 'no':>10} "
                f"{v.placebo_refits:>6} {width:>8} "
                f"{'yes' if v.converged else 'no':>4}"
            )
        lines.append("")
        lines.append(
            f"budget: {self.total_refits}/{self.budget} placebo refits spent "
            f"({self.allocation} allocation, {len(self.trace)} rounds)"
        )
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Verdict rows as CSV (one line per scenario)."""
        buf = io.StringIO()
        fields = [
            "scenario", "kind", "seed", "n_units", "n_skipped",
            "mean_delta_ms", "mean_true_ms", "n_significant",
            "consistent_effect", "placebo_refits", "ci_width", "converged",
        ]
        writer = csv.DictWriter(buf, fieldnames=fields, lineterminator="\n")
        writer.writeheader()
        for v in self.verdicts:
            writer.writerow(v.to_dict())
        return buf.getvalue()

    def to_json(self) -> str:
        """Verdicts, allocation trace, and totals as a JSON document."""
        return json.dumps(
            {
                "allocation": self.allocation,
                "budget": self.budget,
                "total_refits": self.total_refits,
                "verdicts": [v.to_dict() for v in self.verdicts],
                "trace": [r.to_dict() for r in self.trace],
            },
            indent=2,
            sort_keys=True,
        )

    @property
    def all_converged(self) -> bool:
        """Every scenario frozen or fully sampled."""
        return all(v.converged for v in self.verdicts)

    def refits_until_converged(self) -> int | None:
        """Budget spent up to the first all-converged round (trace-derived).

        ``None`` when the fleet never fully converged within budget —
        the P10 benchmark compares this number between adaptive and
        uniform allocation.
        """
        spent = 0
        for rnd in self.trace:
            spent += rnd.granted
            if rnd.converged_after and all(rnd.converged_after.values()):
                return spent
        return None


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------

def _ingest_scenario(
    frame: Any,
    ixp_name: str,
    spec: ScenarioSpec,
    retry: RetryPolicy | None,
) -> tuple[Any, Panel]:
    """Stream one scenario's frame through the accumulators, with retry.

    The per-batch ``stream.batch`` fault point fires in the *parent*
    process (stage A is not fanned out), so the executor's retry loop
    can't cover it — this replicates the same attempt semantics: a
    transient fault restarts the ingest at the next attempt number,
    where ``fire_attempts=1`` faults stand down.
    """
    max_attempts = retry.max_attempts if retry is not None else 1
    base_attempt = current_attempt()

    def on_batch(batch: Any) -> None:
        fault_point("stream.batch", key=f"{spec.name}/{batch.index}")

    for attempt in range(max_attempts):
        with task_attempt(base_attempt + attempt):
            try:
                return ingest_frame(
                    frame,
                    ixp_name,
                    n_batches=spec.ingest_batches,
                    on_batch=on_batch,
                )
            except TransientError:
                if attempt + 1 >= max_attempts:
                    raise
    raise AssertionError("unreachable")  # pragma: no cover


def _campaign_manifest(
    specs: list[ScenarioSpec],
    budget: int,
    allocation: str,
    tol: float,
    round_refits: int,
    floor: int,
    min_ratios: int,
    alloc_seed: int,
) -> dict[str, Any]:
    return {
        "kind": "campaign",
        "specs": [s.to_dict() for s in sorted(specs, key=lambda s: s.name)],
        "budget": budget,
        "allocation": allocation,
        "tol": tol,
        "round_refits": round_refits,
        "floor": floor,
        "min_ratios": min_ratios,
        "alloc_seed": alloc_seed,
    }


def run_campaign(
    specs: list[ScenarioSpec] | tuple[ScenarioSpec, ...],
    *,
    budget: int = 200,
    allocation: str = "adaptive",
    tol: float = 0.25,
    min_ratios: int = 4,
    round_refits: int | None = None,
    floor: int = 1,
    alloc_seed: int = 0,
    n_jobs: int | None = 1,
    retry: RetryPolicy | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    telemetry: Any = None,
    min_pre_periods: int = 7,
    min_post_periods: int = 3,
    max_donor_missing: float = 0.5,
    energy: float = 0.99,
    ridge: float = 1e-2,
) -> CampaignResult:
    """Run a multi-scenario campaign under an adaptive refit budget.

    Parameters
    ----------
    specs:
        The scenario fleet.  Processed in sorted-name order, so any
        input permutation yields the identical campaign.
    budget:
        Total placebo refits the campaign may spend across scenarios.
    allocation:
        ``"adaptive"`` (Zeph-style CI-width-proportional with freezing)
        or ``"uniform"`` (the blind equal-split baseline).
    tol, min_ratios:
        A scenario freezes once it holds at least *min_ratios* surviving
        ratios and its pooled CI width is at or below *tol*.
    round_refits:
        Refits granted per allocation round (default: 4 per scenario).
    floor:
        Minimum refits per live scenario per round (starvation floor).
    alloc_seed:
        Seed for the allocator's deterministic tie-breaks.
    n_jobs:
        Worker processes shared by *all* scenarios' fits and refits
        (one pool for the campaign, not one per scenario).
    retry:
        Executor retry policy; also covers stage A's parent-side
        streamed-ingest fault points.
    checkpoint_dir, resume:
        Directory holding one JSONL journal per scenario plus a
        ``campaign.json`` manifest; with *resume*, journaled base fits
        and refits are served from the files and the rounds replay
        deterministically around them, so the resumed verdict table is
        byte-identical to an uninterrupted run's.
    telemetry:
        A :class:`~repro.obs.serve.TelemetryMux` (or ``None``); each
        scenario publishes its round reports into its own named channel.
    """
    specs = sorted(specs, key=lambda s: s.name)
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise PipelineError(f"duplicate scenario names in campaign: {dupes}")
    if budget < 0:
        raise PipelineError(f"campaign budget must be >= 0, got {budget}")
    if allocation not in ("adaptive", "uniform"):
        raise PipelineError(
            f"allocation must be 'adaptive' or 'uniform', got {allocation!r}"
        )
    if round_refits is None:
        round_refits = max(4 * len(specs), 1)
    if round_refits < 1:
        raise PipelineError(f"round_refits must be >= 1, got {round_refits}")

    ckpt_dir: Path | None = None
    if checkpoint_dir is not None:
        ckpt_dir = Path(checkpoint_dir)
        ckpt_dir.mkdir(parents=True, exist_ok=True)
        manifest = _campaign_manifest(
            specs, budget, allocation, tol, round_refits, floor, min_ratios,
            alloc_seed,
        )
        manifest_path = ckpt_dir / "campaign.json"
        if resume and manifest_path.exists():
            previous = json.loads(manifest_path.read_text())
            if previous != manifest:
                raise CheckpointError(
                    f"{manifest_path}: campaign manifest does not match this "
                    "run's fleet/parameters; pass a fresh checkpoint directory"
                )
        else:
            manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))

    metrics = get_metrics()
    workers = resolve_n_jobs(n_jobs)
    states: list[_ScenarioState] = []
    executor = None
    spent = 0
    trace: list[AllocationRound] = []
    try:
        with span(
            "campaign",
            n_scenarios=len(specs),
            budget=budget,
            allocation=allocation,
            n_jobs=workers,
        ):
            # ------------------------------------------------- stage A
            for i, spec in enumerate(specs):
                with span("campaign.scenario", scenario=spec.name, kind=spec.kind):
                    scenario = build_scenario(spec)
                    arena = SharedFrameArena(tag=f"c{i}")
                    try:
                        frame = measurements_frame(
                            scenario, rng=spec.measurement_seed, arena=arena
                        )
                        if spec.ingest_batches > 1:
                            assignment, panel = _ingest_scenario(
                                frame, scenario.ixp_name, spec, retry
                            )
                        else:
                            assignment = assign_treatment(frame, scenario.ixp_name)
                            panel = rtt_panel(frame, period="day", outcome="rtt_ms")
                    finally:
                        # The frame's columns are views into arena blocks;
                        # drop them before closing so the unmap succeeds.
                        frame = None
                        arena.close()
                    owner = (
                        SharedPanelOwner.from_panel(panel) if workers > 1 else None
                    )
                    if owner is not None:
                        panel = owner.panel
                    ckpt = None
                    if ckpt_dir is not None:
                        ckpt = StudyCheckpoint(
                            ckpt_dir / f"{spec.name}.jsonl",
                            ixp_name=f"campaign:{spec.name}",
                            method="robust",
                            outcome="rtt_ms",
                            resume=resume,
                        )
                    state = _ScenarioState(
                        spec=spec,
                        truth=scenario_truth(scenario),
                        assignment=assignment,
                        panel=panel,
                        owner=owner,
                        plan=prepare_unit_plan(
                            panel,
                            assignment,
                            min_pre_periods=min_pre_periods,
                            min_post_periods=min_post_periods,
                            max_donor_missing=max_donor_missing,
                            method="robust",
                            fit_kwargs=tuple(
                                sorted({"energy": energy, "ridge": ridge}.items())
                            ),
                        ),
                        checkpoint=ckpt,
                    )
                    states.append(state)

            executor = get_executor(n_jobs, retry=retry)

            # ------------------------------------------------- stage B
            per_scenario_tasks: list[list[_BaseFitTask]] = []
            for state in states:
                tasks = []
                for step in state.plan:
                    if not isinstance(step, _UnitTask):
                        state.fit_skips[step[0]] = step[1]
                        continue
                    cached = (
                        state.checkpoint.completed_fits.get(step.unit)
                        if state.checkpoint is not None
                        else None
                    )
                    if cached is not None:
                        state.fits[step.unit] = CampaignUnitFit(
                            unit=cached["unit"],
                            effect=cached["effect"],
                            rmse_ratio=cached["rmse_ratio"],
                            pre_periods=cached["pre_periods"],
                            post_periods=cached["post_periods"],
                            donors=tuple(cached["donors"]),
                        )
                        continue
                    skip = (
                        state.checkpoint.completed.get(step.unit)
                        if state.checkpoint is not None
                        else None
                    )
                    if isinstance(skip, tuple):
                        state.fit_skips[skip[0]] = skip[1]
                        continue
                    tasks.append(
                        _BaseFitTask(
                            scenario=state.name,
                            unit=step.unit,
                            pre_periods=step.pre_periods,
                            post_periods=step.post_periods,
                            panel=state.task_panel(),
                            excluded=step.excluded,
                            max_donor_missing=max_donor_missing,
                            energy=energy,
                            ridge=ridge,
                        )
                    )
                per_scenario_tasks.append(tasks)
            fit_tasks = _interleave(per_scenario_tasks)
            by_name = {state.name: state for state in states}

            def _journal_fit(index: int, result: Any) -> None:
                task = fit_tasks[index]
                state = by_name[task.scenario]
                if state.checkpoint is None:
                    return
                if isinstance(result, CampaignUnitFit):
                    state.checkpoint.append_unit_fit(
                        result.unit,
                        result.effect,
                        result.rmse_ratio,
                        result.pre_periods,
                        result.post_periods,
                        list(result.donors),
                    )
                else:
                    state.checkpoint.append_result(result)

            with span("campaign.fits", n_tasks=len(fit_tasks)):
                outcomes = executor.map(
                    _campaign_unit_fit, fit_tasks, on_result=_journal_fit
                )
            for task, outcome in zip(fit_tasks, outcomes):
                state = by_name[task.scenario]
                if isinstance(outcome, CampaignUnitFit):
                    state.fits[outcome.unit] = outcome
                else:
                    state.fit_skips[outcome[0]] = outcome[1]
            for state in states:
                state.queue = _build_refit_queue(state)
                if state.checkpoint is not None:
                    state.done.update(state.checkpoint.completed_refits)

            # ------------------------------------------------- stage C
            round_index = 0
            while spent < budget:
                stats = [
                    ScenarioStat(
                        name=state.name,
                        ci_width=placebo_ci_width(state.ratio_values()),
                        remaining=state.remaining,
                        converged=state.frozen,
                        n_ratios=len(state.ratio_values()),
                    )
                    for state in states
                ]
                k = min(round_refits, budget - spent)
                if allocation == "adaptive":
                    grants = allocate_round(
                        stats, k, floor=floor, seed=alloc_seed
                    )
                else:
                    grants = uniform_round(stats, k)
                granted = sum(grants.values())
                if granted == 0:
                    break

                per_scenario_refits: list[list[_RefitTask]] = []
                for state in states:
                    give = grants.get(state.name, 0)
                    tasks = []
                    for unit, col in state.queue[
                        state.next_index : state.next_index + give
                    ]:
                        fit = state.fits[unit]
                        tasks.append(
                            _RefitTask(
                                scenario=state.name,
                                unit=unit,
                                col=col,
                                donors=fit.donors,
                                pre_periods=fit.pre_periods,
                                panel=state.task_panel(),
                                energy=energy,
                                ridge=ridge,
                            )
                        )
                    state.next_index += give
                    per_scenario_refits.append(tasks)
                round_tasks = _interleave(per_scenario_refits)
                fresh = [
                    t for t in round_tasks
                    if (t.unit, t.col) not in by_name[t.scenario].done
                ]

                def _journal_refit(index: int, result: Any) -> None:
                    task = fresh[index]
                    state = by_name[task.scenario]
                    if state.checkpoint is None:
                        return
                    name, ratio, reason = result
                    state.checkpoint.append_placebo(
                        task.unit, task.col, name, ratio, reason
                    )

                with span(
                    "campaign.round",
                    index=round_index,
                    granted=granted,
                    n_fresh=len(fresh),
                    allocations=json.dumps(
                        dict(sorted(grants.items())), sort_keys=True
                    ),
                ):
                    results = executor.map(
                        _campaign_refit, fresh, on_result=_journal_refit
                    )
                for task, result in zip(fresh, results):
                    by_name[task.scenario].done[(task.unit, task.col)] = result
                spent += granted
                metrics.counter(
                    "campaign_refits_total",
                    "placebo refits granted by the campaign allocator",
                ).inc(granted)

                widths_after: dict[str, float] = {}
                converged_after: dict[str, bool] = {}
                for state in states:
                    width = placebo_ci_width(state.ratio_values())
                    widths_after[state.name] = width
                    if (
                        not state.frozen
                        and len(state.ratio_values()) >= min_ratios
                        and math.isfinite(width)
                        and width <= tol
                    ):
                        if allocation == "adaptive":
                            state.frozen = True
                            metrics.counter(
                                "campaign_scenarios_frozen_total",
                                "scenarios frozen by the adaptive allocator",
                            ).inc()
                    # The trace's convergence flag is evaluated for both
                    # allocation modes (uniform never *acts* on it) so
                    # adaptive-vs-uniform comparisons read one field.
                    converged_after[state.name] = (
                        state.remaining == 0
                        or (
                            len(state.ratio_values()) >= min_ratios
                            and math.isfinite(width)
                            and width <= tol
                        )
                    )
                trace.append(
                    AllocationRound(
                        index=round_index,
                        allocations={n: grants.get(n, 0) for n in names},
                        widths={s.name: s.ci_width for s in stats},
                        converged={s.name: s.converged for s in stats},
                        spent_before=spent - granted,
                        granted=granted,
                        widths_after=widths_after,
                        converged_after=converged_after,
                    )
                )
                if telemetry is not None:
                    for state in states:
                        telemetry.publisher(state.name).publish_batch(
                            CampaignRoundReport(
                                round_index=round_index,
                                scenario=state.name,
                                granted=grants.get(state.name, 0),
                                executed=state.executed,
                                remaining=state.remaining,
                                ci_width=(
                                    None
                                    if math.isinf(widths_after[state.name])
                                    else widths_after[state.name]
                                ),
                                converged=converged_after[state.name],
                            )
                        )
                round_index += 1

            # ------------------------------------------------- verdicts
            verdicts: list[ScenarioVerdict] = []
            studies: dict[str, StudyResult] = {}
            for state in states:
                study = _scenario_study(state)
                studies[state.name] = study
                width = placebo_ci_width(state.ratio_values())
                deltas = [r.rtt_delta_ms for r in study.rows]
                trues = [
                    state.truth[r.unit]
                    for r in study.rows
                    if r.unit in state.truth
                ]
                verdicts.append(
                    ScenarioVerdict(
                        scenario=state.name,
                        kind=state.spec.kind,
                        seed=state.spec.seed,
                        n_units=len(study.rows),
                        n_skipped=len(study.skipped),
                        mean_delta_ms=(
                            float(np.mean(deltas)) if deltas else math.nan
                        ),
                        mean_true_ms=(
                            float(np.mean(trues)) if trues else math.nan
                        ),
                        n_significant=sum(
                            1 for r in study.rows if r.p_value < 0.10
                        ),
                        consistent_effect=study.consistent_effect,
                        placebo_refits=state.executed,
                        ci_width=width,
                        converged=(
                            state.remaining == 0
                            or (
                                len(state.ratio_values()) >= min_ratios
                                and math.isfinite(width)
                                and width <= tol
                            )
                        ),
                    )
                )
                if telemetry is not None:
                    telemetry.publisher(state.name).publish_final(study)
    finally:
        if executor is not None:
            executor.close()
        for state in states:
            if state.checkpoint is not None:
                state.checkpoint.close()
            if state.owner is not None:
                state.owner.close()
    return CampaignResult(
        verdicts=tuple(verdicts),
        studies=studies,
        trace=tuple(trace),
        total_refits=spent,
        budget=budget,
        allocation=allocation,
    )


@dataclass(frozen=True)
class CampaignRoundReport:
    """Per-scenario telemetry payload published after each round."""

    round_index: int
    scenario: str
    granted: int
    executed: int
    remaining: int
    ci_width: float | None
    converged: bool


def _scenario_study(state: _ScenarioState) -> StudyResult:
    """Assemble one scenario's StudyResult from its fit/refit ledgers.

    Follows the plan order and the batch study's conventions exactly:
    surviving ratios enter the p-value in donor-column order under the
    add-one ``greater`` permutation convention, and a unit whose entire
    queue was spent without one surviving placebo becomes a skip with
    ``placebo_test``'s verbatim reason string.
    """
    rows: list[StudyRow] = []
    skipped: list[tuple[str, str]] = []
    for step in state.plan:
        if not isinstance(step, _UnitTask):
            skipped.append(step)
            continue
        reason = state.fit_skips.get(step.unit)
        if reason is not None:
            skipped.append((step.unit, reason))
            continue
        fit = state.fits[step.unit]
        attempted = [
            (col, state.done[(step.unit, col)])
            for col in range(len(fit.donors))
            if (step.unit, col) in state.done
        ]
        values = [
            ratio for _, (_, ratio, _) in attempted if ratio is not None
        ]
        n_failed = sum(1 for _, (_, ratio, _) in attempted if ratio is None)
        if not values and len(attempted) == len(fit.donors) and fit.donors:
            # The batch study's placebo_test raises DonorPoolError here;
            # its message is replicated verbatim for parity.
            skipped.append(
                (
                    step.unit,
                    f"no placebo fits succeeded for {step.unit!r} "
                    f"({n_failed} skipped); donor pool too small",
                )
            )
            continue
        if values:
            p = permutation_p_value(
                fit.rmse_ratio,
                np.asarray(values, dtype=float),
                alternative="greater",
            )
        else:
            # Budget-starved unit: none of its refits ran before the
            # campaign's budget (or its scenario's freeze) cut in — a
            # state the unbudgeted study can't reach.  With an empty
            # null the add-one convention gives (1+0)/(1+0): no
            # evidence, never significance.
            p = 1.0
        rows.append(
            StudyRow(
                unit=step.unit,
                rtt_delta_ms=fit.effect,
                rmse_ratio=fit.rmse_ratio,
                p_value=float(p),
                pre_periods=fit.pre_periods,
                post_periods=fit.post_periods,
                n_donors=len(fit.donors),
                n_placebos=len(values),
                n_placebos_skipped=n_failed,
            )
        )
    return StudyResult(
        rows=tuple(rows),
        assignment=state.assignment,
        skipped=tuple(skipped),
        timings=None,
    )
