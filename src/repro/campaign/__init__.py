"""Multi-scenario campaign engine with adaptive budget allocation.

The anti-Sisyphus layer: instead of re-running one IXP case study, a
campaign runs a *fleet* of seeded scenario perturbations — staggered
adoption waves, depeering, outages, route leaks, congestion shocks,
adoption-rate sweeps — on one shared executor, spends its placebo-refit
budget where effect estimates are still uncertain (Zeph-style
proportional allocation with freezing), and reports a cross-scenario
verdict table generalizing the paper's Table 1.

- :mod:`repro.campaign.spec` — seeded, serializable scenario specs, the
  kind registry, and the declarative campaign-file loader;
- :mod:`repro.campaign.allocator` — CI-width-proportional budget rounds
  with starvation floor and deterministic seeded tie-breaks;
- :mod:`repro.campaign.scheduler` — the campaign run itself: shared
  pool, per-scenario checkpoints, resume, telemetry, verdicts.
"""

from repro.campaign.allocator import (
    AllocationRound,
    ScenarioStat,
    allocate_round,
    placebo_ci_width,
    uniform_round,
)
from repro.campaign.scheduler import (
    CampaignResult,
    CampaignRoundReport,
    CampaignUnitFit,
    ScenarioVerdict,
    run_campaign,
)
from repro.campaign.spec import (
    CampaignConfig,
    SCENARIO_KINDS,
    ScenarioSpec,
    build_scenario,
    default_fleet,
    load_campaign,
    parse_campaign,
    scenario_kinds,
)

__all__ = [
    "AllocationRound",
    "CampaignConfig",
    "CampaignResult",
    "CampaignRoundReport",
    "CampaignUnitFit",
    "SCENARIO_KINDS",
    "ScenarioStat",
    "ScenarioVerdict",
    "allocate_round",
    "build_scenario",
    "default_fleet",
    "load_campaign",
    "parse_campaign",
    "placebo_ci_width",
    "run_campaign",
    "scenario_kinds",
    "uniform_round",
]
