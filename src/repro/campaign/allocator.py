"""Zeph-style adaptive placebo-refit budget allocation.

Zeph assigns probing budget to each agent in proportion to expected
discovery; here the "discovery" a refit buys is a tighter placebo-ratio
null distribution, so each round hands refits to scenarios in
proportion to the width of their current placebo-ratio confidence
interval.  Scenarios whose interval has collapsed below tolerance are
frozen (they get exactly zero — the anti-Sisyphus move: stop re-running
a study that has already converged), while every still-live scenario is
guaranteed a starvation floor.  All arithmetic is deterministic: ties
break on a seeded hash, never on dict order or wall clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.chaos.plan import hash01
from repro.errors import PipelineError

#: Proportional weight standing in for an infinite CI width (scenarios
#: with < 2 surviving ratios): large enough to dominate any converged
#: fleet, finite so proportions stay well-defined.
UNKNOWN_WIDTH_WEIGHT = 1e6


def placebo_ci_width(ratios: list[float], z: float = 1.96) -> float:
    """Width of the normal-approximation CI on the mean placebo ratio.

    ``2 * z * s / sqrt(n)`` with the sample standard deviation
    (``ddof=1``).  Fewer than two finite ratios means the null
    distribution is still unmeasured: the width is ``inf`` so the
    allocator treats the scenario as maximally uncertain.  Computed with
    ``math`` on sorted values so the result is independent of the order
    refits completed in.
    """
    finite = sorted(r for r in ratios if math.isfinite(r))
    n = len(finite)
    if n < 2:
        return math.inf
    mean = math.fsum(finite) / n
    var = math.fsum((r - mean) ** 2 for r in finite) / (n - 1)
    return 2.0 * z * math.sqrt(var) / math.sqrt(n)


@dataclass(frozen=True)
class ScenarioStat:
    """One scenario's allocator-visible state at the top of a round."""

    name: str
    ci_width: float
    remaining: int
    converged: bool
    n_ratios: int = 0

    def __post_init__(self) -> None:
        if self.remaining < 0:
            raise PipelineError(
                f"scenario {self.name!r} has negative remaining refits"
            )


@dataclass(frozen=True)
class AllocationRound:
    """One round of the allocation trace.

    ``widths``/``converged`` snapshot the allocator inputs; the
    ``*_after`` fields are re-evaluated once the round's refits land, so
    the trace alone answers "when did each scenario converge" (the P10
    benchmark's refits-to-converged metric reads exactly this).
    """

    index: int
    allocations: dict[str, int]
    widths: dict[str, float]
    converged: dict[str, bool]
    spent_before: int
    granted: int
    widths_after: dict[str, float] = field(default_factory=dict)
    converged_after: dict[str, bool] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (infinities encoded as the string ``"inf"``)."""

        def enc(widths: dict[str, float]) -> dict[str, object]:
            return {
                k: ("inf" if math.isinf(v) else v)
                for k, v in sorted(widths.items())
            }

        return {
            "index": self.index,
            "allocations": dict(sorted(self.allocations.items())),
            "widths": enc(self.widths),
            "converged": dict(sorted(self.converged.items())),
            "spent_before": self.spent_before,
            "granted": self.granted,
            "widths_after": enc(self.widths_after),
            "converged_after": dict(sorted(self.converged_after.items())),
        }


def _tie_key(seed: int, name: str) -> tuple[float, str]:
    return (hash01(seed, "alloc-tie", name), name)


def _cap_and_redistribute(
    grants: dict[str, int],
    remaining: dict[str, int],
    order: list[str],
) -> dict[str, int]:
    """Clamp each grant to the scenario's remaining queue, pushing the
    freed units to the next scenarios in *order* that still have room.

    Stops when nothing can absorb more (total grant then undershoots —
    the queue is simply exhausted).
    """
    freed = 0
    for name in grants:
        over = grants[name] - remaining[name]
        if over > 0:
            grants[name] = remaining[name]
            freed += over
    while freed > 0:
        progressed = False
        for name in order:
            if freed == 0:
                break
            room = remaining[name] - grants[name]
            if room > 0:
                grants[name] += 1
                freed -= 1
                progressed = True
        if not progressed:
            break
    return grants


def allocate_round(
    stats: list[ScenarioStat],
    budget: int,
    *,
    floor: int = 1,
    seed: int = 0,
) -> dict[str, int]:
    """Allocate *budget* refits across scenarios for one adaptive round.

    Live scenarios (not converged, queue not exhausted) first each
    receive the starvation floor, then the rest of the budget is split
    in proportion to CI width by largest-remainder apportionment.
    Converged scenarios receive exactly zero.  Ties — equal weights,
    equal fractional remainders, or a budget too small to floor every
    live scenario — break on ``hash01(seed, "alloc-tie", name)`` and
    then name, so the result is a pure function of ``(stats, budget,
    floor, seed)``.

    Returns ``{name: refits}`` over *all* scenarios in *stats* (zeros
    included).  The grand total is ``min(budget, sum remaining over
    live scenarios)``.
    """
    if budget < 0:
        raise PipelineError(f"round budget must be >= 0, got {budget}")
    names = [s.name for s in stats]
    if len(set(names)) != len(names):
        raise PipelineError("duplicate scenario names in allocator stats")

    grants = {s.name: 0 for s in stats}
    live = sorted(
        (s for s in stats if not s.converged and s.remaining > 0),
        key=lambda s: s.name,
    )
    if not live or budget == 0:
        return grants

    remaining = {s.name: s.remaining for s in live}
    weights = {
        s.name: (
            s.ci_width if math.isfinite(s.ci_width) else UNKNOWN_WIDTH_WEIGHT
        )
        for s in live
    }

    # Starvation floor: every live scenario gets min(floor, remaining)
    # before proportionality kicks in.  When the budget can't cover all
    # floors, the most uncertain scenarios (seeded tie-break) go first.
    left = budget
    floor_order = sorted(
        live, key=lambda s: (-weights[s.name], *_tie_key(seed, s.name))
    )
    for s in floor_order:
        if left == 0:
            break
        give = min(floor, remaining[s.name], left)
        grants[s.name] += give
        left -= give

    # Largest-remainder proportional split of what's left.
    total_w = math.fsum(weights.values())
    if left > 0:
        if total_w <= 0.0:
            # All widths zero (possible with tol=0 and identical
            # ratios): fall back to an equal split.
            weights = {name: 1.0 for name in weights}
            total_w = float(len(weights))
        shares = {
            name: left * weights[name] / total_w for name in weights
        }
        floors = {name: int(math.floor(shares[name])) for name in shares}
        for name, whole in floors.items():
            grants[name] += whole
        leftover = left - sum(floors.values())
        frac_order = sorted(
            shares,
            key=lambda name: (-(shares[name] - floors[name]), *_tie_key(seed, name)),
        )
        for name in frac_order[:leftover]:
            grants[name] += 1

    # Clamp to each queue and push freed units to still-hungry
    # scenarios, most uncertain first.
    order = sorted(remaining, key=lambda name: (-weights[name], *_tie_key(seed, name)))
    live_grants = _cap_and_redistribute(
        {name: grants[name] for name in remaining}, remaining, order
    )
    grants.update(live_grants)
    return grants


def uniform_round(stats: list[ScenarioStat], budget: int) -> dict[str, int]:
    """The Sisyphus baseline: equal split, no freezing, no adaptivity.

    Every scenario with queue left gets the same share regardless of how
    converged it is — the "keep re-running the same study" strategy the
    paper complains about.  Leftover units (budget not divisible) go to
    the first names in lexicographic order.
    """
    if budget < 0:
        raise PipelineError(f"round budget must be >= 0, got {budget}")
    grants = {s.name: 0 for s in stats}
    open_stats = sorted(
        (s for s in stats if s.remaining > 0), key=lambda s: s.name
    )
    if not open_stats or budget == 0:
        return grants
    remaining = {s.name: s.remaining for s in open_stats}
    share, leftover = divmod(budget, len(open_stats))
    for i, s in enumerate(open_stats):
        grants[s.name] = share + (1 if i < leftover else 0)
    order = list(remaining)
    live_grants = _cap_and_redistribute(
        {name: grants[name] for name in remaining}, remaining, order
    )
    grants.update(live_grants)
    return grants
