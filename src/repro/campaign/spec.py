"""Seeded, serializable scenario specs for multi-scenario campaigns.

The paper's complaint is that the community keeps re-measuring *one*
case (one IXP, one window) instead of covering the space of causal
scenarios.  A :class:`ScenarioSpec` is one point in that space: a named,
seeded perturbation of :func:`~repro.netsim.scenario.build_table1_scenario`
— an extra adoption wave onto the exchange, depeering events, a
regional outage, a route leak through a distant transit, a congestion
shock, or an adoption-rate sweep — that serializes to a dict (and back)
so whole fleets live in a ``campaign.yaml``/``.json`` file.

Every perturbation is applied *before* the scenario's first timeline
query (the :class:`~repro.netsim.events.Timeline` freezes on first
state access), and every random draw inside a perturbation comes from a
generator seeded by the spec alone — building the same spec twice
yields bit-identical worlds, which is what makes campaign results
reproducible across scenario-order permutations, worker counts, and
kill/resume boundaries.
"""

from __future__ import annotations

import json
import re
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import SimulationError
from repro.netsim.congestion import RegionalShock
from repro.netsim.events import (
    DepeeringEvent,
    IxpJoinEvent,
    MaintenanceWindowEvent,
    NewLinkEvent,
)
from repro.netsim.scenario import Scenario, build_table1_scenario

#: Donor access ASNs are allocated sequentially from this base by the
#: Table-1 builder (``AsnAllocator(start=64700)``), so perturbations can
#: address "the k-th donor" without re-deriving the allocator.
_DONOR_ASN_BASE = 64700

#: The builder's fixed core ASNs (see ``build_table1_scenario``).
_GLOBAL_LON = 64601
_REGIONAL_JNB = 64611
_REGIONAL_CPT = 64612
_CONTENT_CDN = 64500

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

Mutator = Callable[[Scenario, "ScenarioSpec", np.random.Generator], None]

#: Registry of scenario kinds: name -> post-build mutator.  Order is the
#: registration order; :func:`default_fleet` cycles through it.
SCENARIO_KINDS: dict[str, Mutator] = {}


def register_kind(name: str) -> Callable[[Mutator], Mutator]:
    """Register a scenario-kind mutator under *name*."""

    def wrap(fn: Mutator) -> Mutator:
        SCENARIO_KINDS[name] = fn
        return fn

    return wrap


def scenario_kinds() -> tuple[str, ...]:
    """The registered scenario kinds, in registration order."""
    return tuple(SCENARIO_KINDS)


@dataclass(frozen=True)
class ScenarioSpec:
    """One seeded scenario in a campaign, serializable as a flat dict.

    Attributes
    ----------
    name:
        Unique, path-safe label (it names the scenario's checkpoint
        journal and telemetry channel).
    kind:
        A registered scenario kind (see :func:`scenario_kinds`).
    seed, measurement_seed:
        World seed and speed-test RNG seed.
    n_donor_ases, duration_days, join_day:
        Passed through to the Table-1 builder (*join_day* defaults to
        the window midpoint).
    user_scale:
        Population multiplier — the adoption-rate knob.  Smaller scales
        mean fewer tests per cell, noisier panels, and wider placebo
        spreads, which is exactly the heterogeneity the adaptive budget
        allocator exploits.
    ingest_batches:
        When > 1, the campaign builds this scenario's panel and
        assignment by streaming its measurement frame through the
        incremental accumulators in that many time slices (exercising
        the ``stream.batch`` fault site per slice) instead of the batch
        pivot; the resulting state is bit-identical either way.
    params:
        Kind-specific knobs (e.g. ``n_late_joiners`` for
        ``staggered-join``); unknown keys are rejected by the mutator.
    """

    name: str
    kind: str = "baseline"
    seed: int = 0
    measurement_seed: int = 1
    n_donor_ases: int = 12
    duration_days: int = 20
    join_day: int | None = None
    user_scale: float = 1.0
    ingest_batches: int = 1
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise SimulationError(
                f"scenario name {self.name!r} is not path-safe "
                "(use letters, digits, '.', '_', '-')"
            )
        if self.kind not in SCENARIO_KINDS:
            raise SimulationError(
                f"unknown scenario kind {self.kind!r}; "
                f"registered: {', '.join(scenario_kinds())}"
            )
        if self.ingest_batches < 1:
            raise SimulationError(
                f"ingest_batches must be >= 1, got {self.ingest_batches}"
            )

    @property
    def effective_join_day(self) -> int:
        """The join day actually used (window midpoint when unset)."""
        return self.duration_days // 2 if self.join_day is None else self.join_day

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict that :meth:`from_dict` round-trips exactly."""
        return {
            "name": self.name,
            "kind": self.kind,
            "seed": self.seed,
            "measurement_seed": self.measurement_seed,
            "n_donor_ases": self.n_donor_ases,
            "duration_days": self.duration_days,
            "join_day": self.join_day,
            "user_scale": self.user_scale,
            "ingest_batches": self.ingest_batches,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written YAML)."""
        known = {
            "name", "kind", "seed", "measurement_seed", "n_donor_ases",
            "duration_days", "join_day", "user_scale", "ingest_batches",
            "params",
        }
        unknown = set(data) - known
        if unknown:
            raise SimulationError(
                f"scenario spec has unknown keys {sorted(unknown)} "
                f"(name={data.get('name')!r})"
            )
        if "name" not in data:
            raise SimulationError("scenario spec is missing 'name'")
        return cls(
            name=str(data["name"]),
            kind=str(data.get("kind", "baseline")),
            seed=int(data.get("seed", 0)),
            measurement_seed=int(data.get("measurement_seed", 1)),
            n_donor_ases=int(data.get("n_donor_ases", 12)),
            duration_days=int(data.get("duration_days", 20)),
            join_day=(
                None if data.get("join_day") is None else int(data["join_day"])
            ),
            user_scale=float(data.get("user_scale", 1.0)),
            ingest_batches=int(data.get("ingest_batches", 1)),
            params=dict(data.get("params", {})),
        )


def _spec_rng(spec: ScenarioSpec) -> np.random.Generator:
    """The mutator's RNG: seeded by the spec alone, never shared."""
    kind_index = list(SCENARIO_KINDS).index(spec.kind)
    return np.random.default_rng([int(spec.seed), kind_index])


def _donor_asns(spec: ScenarioSpec) -> list[int]:
    return list(range(_DONOR_ASN_BASE, _DONOR_ASN_BASE + spec.n_donor_ases))


def _param(spec: ScenarioSpec, name: str, default: Any, allowed: set[str]) -> Any:
    unknown = set(spec.params) - allowed
    if unknown:
        raise SimulationError(
            f"scenario {spec.name!r} (kind={spec.kind}) has unknown params "
            f"{sorted(unknown)}; allowed: {sorted(allowed)}"
        )
    return spec.params.get(name, default)


@register_kind("baseline")
def _baseline(scenario: Scenario, spec: ScenarioSpec, rng: np.random.Generator) -> None:
    """The unperturbed Table-1 world."""
    _param(spec, "", None, set())


@register_kind("staggered-join")
def _staggered_join(
    scenario: Scenario, spec: ScenarioSpec, rng: np.random.Generator
) -> None:
    """An adoption wave: extra donor ASes join the exchange late.

    The late joiners start crossing the IXP mid-window, so treatment
    detection picks them up as additional treated units (and drops them
    from every donor pool) — the "IXP appears for more members, at
    staggered hours" fleet axis.
    """
    allowed = {"n_late_joiners", "spread_days"}
    n = int(_param(spec, "n_late_joiners", 2, allowed))
    spread = int(_param(spec, "spread_days", 4, allowed))
    donors = _donor_asns(spec)
    if n > len(donors):
        raise SimulationError(
            f"scenario {spec.name!r}: {n} late joiners but only "
            f"{len(donors)} donor ASes"
        )
    join_day = spec.effective_join_day
    picks = rng.permutation(len(donors))[:n]
    for i, pick in enumerate(sorted(int(p) for p in picks)):
        asn = donors[pick]
        hour = (join_day + 1 + (i % max(spread, 1))) * 24.0 + float(
            rng.integers(6, 18)
        )
        scenario.timeline.add_event(
            IxpJoinEvent(
                time_hour=hour, asn=asn, ixp_name=scenario.ixp_name,
            )
        )
        scenario.join_hours[asn] = hour
        for group in scenario.user_groups:
            if group.unit[0] == asn and group.unit not in scenario.treated_units:
                scenario.treated_units.append(group.unit)


@register_kind("depeering")
def _depeering(
    scenario: Scenario, spec: ScenarioSpec, rng: np.random.Generator
) -> None:
    """Donors depeer their regional upstream and buy the other regional.

    Structural route churn uncorrelated with the IXP joins: the same
    kind of divergence a treated unit shows, landing in the *donor*
    pool — which is what keeps placebo p-values honest under churn.
    """
    allowed = {"n_depeered", "event_day"}
    n = int(_param(spec, "n_depeered", 2, allowed))
    day = int(_param(spec, "event_day", spec.effective_join_day + 2, allowed))
    donors = _donor_asns(spec)
    picks = sorted(int(p) for p in rng.permutation(len(donors))[:n])
    for i, pick in enumerate(picks):
        asn = donors[pick]
        upstreams = [
            p for p in scenario.topology.providers(asn)
            if p in (_REGIONAL_JNB, _REGIONAL_CPT)
        ]
        if not upstreams:
            continue
        old = upstreams[0]
        new = _REGIONAL_CPT if old == _REGIONAL_JNB else _REGIONAL_JNB
        hour = day * 24.0 + 2.0 * i + float(rng.uniform(0.0, 1.0))
        scenario.timeline.add_event(
            NewLinkEvent(time_hour=hour, a_asn=asn, b_asn=new, provider=True)
        )
        scenario.timeline.add_event(
            DepeeringEvent(time_hour=hour + 0.5, a_asn=asn, b_asn=old)
        )


@register_kind("outage")
def _outage(scenario: Scenario, spec: ScenarioSpec, rng: np.random.Generator) -> None:
    """A scheduled regional outage: the CDN's regional transit link drops.

    Modeled as a :class:`MaintenanceWindowEvent` (exogenous timing — the
    paper's canonical natural-experiment instrument), so every path via
    the Johannesburg transit detours for the window's duration.
    """
    allowed = {"start_day", "duration_hours"}
    start = int(_param(spec, "start_day", spec.effective_join_day + 3, allowed))
    duration = float(_param(spec, "duration_hours", 36.0, allowed))
    scenario.timeline.add_event(
        MaintenanceWindowEvent(
            time_hour=start * 24.0 + 5.0,
            a_asn=_CONTENT_CDN,
            b_asn=_REGIONAL_JNB,
            duration_hours=duration,
        )
    )


@register_kind("route-leak")
def _route_leak(
    scenario: Scenario, spec: ScenarioSpec, rng: np.random.Generator
) -> None:
    """One donor's routes leak through a distant transit.

    The leaker buys transit from the London tier-1 and tears down its
    regional adjacency shortly after — its path to the Johannesburg CDN
    now trombones intercontinentally, a large sustained RTT shift with
    no IXP involvement at all.
    """
    allowed = {"leak_day", "leaker_index"}
    day = int(_param(spec, "leak_day", spec.effective_join_day + 1, allowed))
    donors = _donor_asns(spec)
    index = int(_param(spec, "leaker_index", int(rng.integers(0, len(donors))), allowed))
    asn = donors[index % len(donors)]
    hour = day * 24.0 + float(rng.integers(1, 12))
    scenario.timeline.add_event(
        NewLinkEvent(time_hour=hour, a_asn=asn, b_asn=_GLOBAL_LON, provider=True)
    )
    for upstream in scenario.topology.providers(asn):
        if upstream in (_REGIONAL_JNB, _REGIONAL_CPT):
            scenario.timeline.add_event(
                DepeeringEvent(time_hour=hour + 0.5, a_asn=asn, b_asn=upstream)
            )


@register_kind("congestion-shock")
def _congestion_shock(
    scenario: Scenario, spec: ScenarioSpec, rng: np.random.Generator
) -> None:
    """An extra country-wide utilization shock overlapping the joins."""
    allowed = {"start_day", "end_day", "extra_utilization"}
    start = int(_param(spec, "start_day", spec.effective_join_day + 1, allowed))
    end = int(_param(spec, "end_day", start + 4, allowed))
    extra = float(_param(spec, "extra_utilization", 0.2, allowed))
    if end <= start:
        raise SimulationError(
            f"scenario {spec.name!r}: shock end_day {end} <= start_day {start}"
        )
    scenario.congestion.add_shock(
        RegionalShock(
            region="ZA",
            start_hour=start * 24.0,
            end_hour=end * 24.0,
            extra_utilization=extra,
        )
    )


@register_kind("adoption-sweep")
def _adoption_sweep(
    scenario: Scenario, spec: ScenarioSpec, rng: np.random.Generator
) -> None:
    """A pure measurement-volume point: the sweep axis is ``user_scale``.

    The perturbation itself is a no-op — the builder already applied the
    spec's ``user_scale`` — so a sweep is several specs of this kind
    differing only in scale (and seed), giving the campaign a controlled
    noise gradient.
    """
    _param(spec, "", None, set())


def build_scenario(spec: ScenarioSpec) -> Scenario:
    """Build the spec's world: the Table-1 base plus the kind's events.

    The mutator runs before any timeline/state query, so its events land
    in the same epoch machinery as the base world's joins; the returned
    scenario records the spec on ``extra["spec"]`` for provenance.
    """
    scenario = build_table1_scenario(
        n_donor_ases=spec.n_donor_ases,
        duration_days=spec.duration_days,
        join_day=spec.effective_join_day,
        seed=spec.seed,
        user_scale=spec.user_scale,
    )
    SCENARIO_KINDS[spec.kind](scenario, spec, _spec_rng(spec))
    scenario.extra["spec"] = spec.to_dict()
    return scenario


@dataclass(frozen=True)
class CampaignConfig:
    """A declarative campaign: scenario fleet plus scheduler defaults.

    Fields other than *scenarios* are ``None`` when the file left them
    unset; the CLI then falls back to its own flags/defaults.
    """

    scenarios: tuple[ScenarioSpec, ...]
    budget: int | None = None
    allocation: str | None = None
    tol: float | None = None
    round_refits: int | None = None


def parse_campaign(data: dict[str, Any]) -> CampaignConfig:
    """Build a :class:`CampaignConfig` from a parsed YAML/JSON document."""
    if not isinstance(data, dict) or "scenarios" not in data:
        raise SimulationError(
            "campaign file must be a mapping with a 'scenarios' list"
        )
    raw = data["scenarios"]
    if not isinstance(raw, list) or not raw:
        raise SimulationError("campaign 'scenarios' must be a non-empty list")
    specs = tuple(ScenarioSpec.from_dict(entry) for entry in raw)
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise SimulationError(f"duplicate scenario names in campaign: {dupes}")
    options = data.get("campaign", {})
    if not isinstance(options, dict):
        raise SimulationError("campaign 'campaign' section must be a mapping")
    allocation = options.get("allocation")
    if allocation is not None and allocation not in ("adaptive", "uniform"):
        raise SimulationError(
            f"campaign allocation must be 'adaptive' or 'uniform', "
            f"got {allocation!r}"
        )
    return CampaignConfig(
        scenarios=specs,
        budget=None if options.get("budget") is None else int(options["budget"]),
        allocation=allocation,
        tol=None if options.get("tol") is None else float(options["tol"]),
        round_refits=(
            None
            if options.get("round_refits") is None
            else int(options["round_refits"])
        ),
    )


def load_campaign(path: str | Path) -> CampaignConfig:
    """Load a campaign file (YAML when available, JSON always).

    ``*.json`` parses as JSON.  Anything else goes through PyYAML when
    the interpreter has it; without PyYAML the file is tried as JSON
    (YAML is a superset for the flat campaign shape) and a clear error
    names the missing dependency if that fails too.
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".json":
        return parse_campaign(json.loads(text))
    try:
        import yaml  # type: ignore[import-untyped]
    except ImportError:
        try:
            return parse_campaign(json.loads(text))
        except json.JSONDecodeError:
            raise SimulationError(
                f"cannot parse {path}: PyYAML is not installed and the file "
                "is not valid JSON (use a .json campaign file)"
            ) from None
    return parse_campaign(yaml.safe_load(text))


def default_fleet(
    n: int,
    *,
    seed: int = 0,
    duration_days: int = 20,
    n_donor_ases: int = 12,
) -> tuple[ScenarioSpec, ...]:
    """A ready-made fleet of *n* scenarios cycling the registered kinds.

    Seeds advance per scenario, and the adoption-sweep points alternate
    between full and reduced ``user_scale`` so even small fleets carry
    the measurement-volume (placebo-variance) heterogeneity the adaptive
    allocator feeds on.
    """
    if n < 1:
        raise SimulationError(f"fleet size must be >= 1, got {n}")
    kinds = scenario_kinds()
    specs = []
    for i in range(n):
        kind = kinds[i % len(kinds)]
        scale = 1.0
        if kind == "adoption-sweep":
            scale = 0.5 if (i // len(kinds)) % 2 == 0 else 1.5
        specs.append(
            ScenarioSpec(
                name=f"{kind}-{i:02d}",
                kind=kind,
                seed=seed + i,
                measurement_seed=seed + 100 + i,
                n_donor_ases=n_donor_ases,
                duration_days=duration_days,
                user_scale=scale,
            )
        )
    return tuple(specs)
