"""Scenario builders: pre-wired worlds for the paper's experiments.

:func:`build_table1_scenario` constructs the South-Africa-like region of
the case study: a content CDN and a populated NAPAfrica-JNB exchange,
regional and intercontinental transit, and a few dozen access networks
— eight ⟨ASN, city⟩ units of which (the paper's exact ASNs and cities)
begin crossing the IXP mid-window.  Ground truth is available through
:meth:`Table1Scenario.true_effect`, so estimator output can be checked
against what the simulator actually did.

:func:`build_trombone_scenario` is the contrast case the operational
belief is really about: access ISPs whose only pre-IXP path tromboned
through Europe, for which joining the local exchange *does* cause a
large RTT drop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.netsim.congestion import CongestionModel, DiurnalProfile, RegionalShock
from repro.netsim.events import (
    DepeeringEvent,
    IxpJoinEvent,
    NewLinkEvent,
    Timeline,
)
from repro.netsim.geo import CityCatalog, default_catalog
from repro.netsim.ids import AsnAllocator, Prefix, PrefixAllocator
from repro.netsim.ixp import Ixp, IxpRegistry
from repro.netsim.latency import LatencyModel
from repro.netsim.topology import AsKind, AutonomousSystem, Topology
from repro.netsim.users import UserGroup

#: The paper's treated units: (ASN, city), all in South Africa.
TABLE1_TREATED_UNITS: tuple[tuple[int, str], ...] = (
    (3741, "East London"),
    (3741, "Johannesburg"),
    (37053, "Cape Town"),
    (37611, "Edenvale"),
    (37680, "Durban"),
    (327966, "Polokwane"),
    (328622, "eMuziwezinto"),
    (328745, "Johannesburg"),
)

#: Home PoP city of each treated ASN.
_TREATED_AS_HOMES: dict[int, str] = {
    3741: "East London",
    37053: "Cape Town",
    37611: "Edenvale",
    37680: "Durban",
    327966: "Polokwane",
    328622: "eMuziwezinto",
    328745: "Johannesburg",
}

_DONOR_CITIES: tuple[str, ...] = (
    "Johannesburg",
    "Cape Town",
    "Durban",
    "Pretoria",
    "Bloemfontein",
    "Gqeberha",
    "Nelspruit",
    "Kimberley",
    "Pietermaritzburg",
    "George",
    "Rustenburg",
    "East London",
    "Polokwane",
)


@dataclass
class Scenario:
    """A fully wired simulation world.

    Attributes
    ----------
    topology, cities, ixps, congestion, latency, timeline:
        The substrate objects (timeline owns the event schedule).
    content_asn:
        Destination AS all speed tests measure against.
    ixp_name:
        The exchange whose crossings are under study.
    user_groups:
        All ⟨ASN, city⟩ populations generating measurements.
    treated_units:
        Units whose AS joins the exchange during the window.
    join_hours:
        ``{asn: hour}`` for scheduled IXP joins.
    duration_hours:
        Length of the measurement window.
    """

    topology: Topology
    cities: CityCatalog
    ixps: IxpRegistry
    congestion: CongestionModel
    latency: LatencyModel
    timeline: Timeline
    content_asn: int
    ixp_name: str
    user_groups: list[UserGroup]
    treated_units: list[tuple[int, str]]
    join_hours: dict[int, float]
    duration_hours: float
    extra: dict[str, object] = field(default_factory=dict)

    def group_for(self, asn: int, city: str) -> UserGroup:
        """The user group of one ⟨ASN, city⟩ unit."""
        for group in self.user_groups:
            if group.unit == (asn, city):
                return group
        raise SimulationError(f"no user group for AS{asn}/{city}")

    def true_effect(self, asn: int, city: str) -> float:
        """Ground-truth expected daily-median RTT change for one unit.

        Mirrors the pipeline's outcome definition: the median over 24
        hourly noise-free RTT probes on the day after the AS's join
        event minus the same median on the day before.  Diurnal terms
        cancel across the two full days; what remains is the structural
        route change, including its hour-dependent queueing consequences.
        """
        if asn not in self.join_hours:
            return 0.0
        join = self.join_hours[asn]
        group = self.group_for(asn, city)
        pre = float(
            np.median(
                [self._expected_unit_rtt(group, join - 24.0 + h) for h in range(24)]
            )
        )
        post = float(
            np.median([self._expected_unit_rtt(group, join + h) for h in range(24)])
        )
        return post - pre

    def _expected_unit_rtt(self, group: UserGroup, hour: float) -> float:
        from repro.netsim.geo import propagation_delay_ms

        state = self.timeline.state_at(hour)
        routes = self.timeline.routes_at(hour, self.content_asn)
        route = routes[group.asn]
        base = self.latency.expected_rtt(route, hour, topology=state.topology)
        home = self.topology.get_as(group.asn).city
        backhaul_city = group.backhaul_city or home
        backhaul = 2.0 * propagation_delay_ms(
            self.cities.get(group.city), self.cities.get(backhaul_city)
        )
        return base + backhaul


def _make_as(
    topo: Topology,
    asn: int,
    name: str,
    kind: AsKind,
    city: str,
    prefixes: PrefixAllocator,
) -> AutonomousSystem:
    asys = AutonomousSystem(
        asn=asn, name=name, kind=kind, city=city, router_prefix=prefixes.allocate()
    )
    topo.add_as(asys)
    return asys


def build_table1_scenario(
    n_donor_ases: int = 30,
    duration_days: int = 60,
    join_day: int = 30,
    seed: int = 0,
    with_regional_shock: bool = True,
    churn_probability: float = 0.2,
    suppress_joins: frozenset[int] | set[int] = frozenset(),
    user_scale: float = 1.0,
) -> Scenario:
    """The Table-1 world: treated ASes join NAPAfrica-JNB mid-window.

    Access networks already reach the content CDN through regional
    transit in Johannesburg, so joining the exchange shaves one transit
    AS (a few ms of queueing), not an intercontinental trombone — which
    is why true effects are small, matching the paper's finding that the
    folk claim "IXP membership cuts latency" is not robust here.

    Parameters
    ----------
    n_donor_ases:
        Number of never-treated access ASes (the donor pool).
    duration_days, join_day:
        Window length and the day around which joins are staggered.
    seed:
        Seed for the deterministic topology randomness (city/transit
        assignment, population sizes).
    with_regional_shock:
        Add a country-wide congestion shock shortly after the joins —
        the confounding "broader performance shift" a donor pool
        controls for.
    churn_probability:
        Per-donor probability of an upstream-transit switch at a random
        hour (background churn, independent of the treatment).
    suppress_joins:
        ASNs whose IXP-join event is *not* scheduled even though all
        random draws proceed identically — builds the counterfactual
        world "everything the same, but this AS never joined", used by
        :func:`counterfactual_true_effect`.
    user_scale:
        Multiplier on every group's population (measurement volume).
        Applied after the population draw, so ``user_scale=1`` is
        draw-for-draw identical to the historical builder and larger
        values scale test counts without reshaping the world.
    """
    if join_day >= duration_days:
        raise SimulationError("join_day must fall inside the window")
    if user_scale <= 0:
        raise SimulationError("user_scale must be positive")
    rng = np.random.default_rng(seed)
    cities = default_catalog()
    prefixes = PrefixAllocator("10.0.0.0/8")
    asns = AsnAllocator(start=64700)
    topo = Topology()

    # Core: intercontinental transit, regional transit, the content CDN.
    global1 = _make_as(topo, 64601, "GlobalTransit-LON", AsKind.TIER1, "London", prefixes)
    global2 = _make_as(topo, 64602, "GlobalTransit-MRS", AsKind.TIER1, "Marseille", prefixes)
    regional1 = _make_as(topo, 64611, "ZA-Transit-JNB", AsKind.TRANSIT, "Johannesburg", prefixes)
    regional2 = _make_as(topo, 64612, "ZA-Transit-CPT", AsKind.TRANSIT, "Cape Town", prefixes)
    content = _make_as(topo, 64500, "StreamCo-CDN", AsKind.CONTENT, "Johannesburg", prefixes)
    topo.add_p2p(global1.asn, global2.asn)
    topo.add_c2p(regional1.asn, global1.asn)
    topo.add_c2p(regional2.asn, global2.asn)
    topo.add_p2p(regional1.asn, regional2.asn)
    topo.add_c2p(content.asn, regional1.asn)
    topo.add_c2p(content.asn, global1.asn)

    # NAPAfrica-JNB with the CDN and both regionals present from day 0.
    ixp = Ixp(
        name="NAPAfrica-JNB",
        city="Johannesburg",
        peering_lan=Prefix.parse("196.60.8.0/24"),
    )
    ixps = IxpRegistry([ixp])
    for member in (content.asn, regional1.asn, regional2.asn):
        ixp.add_member(member)

    user_groups: list[UserGroup] = []

    # Treated access networks: the paper's ASNs, homed per the table.
    treated_asns = sorted(_TREATED_AS_HOMES)
    for asn in treated_asns:
        home = _TREATED_AS_HOMES[asn]
        _make_as(topo, asn, f"AccessISP-{asn}", AsKind.ACCESS, home, prefixes)
        topo.add_c2p(asn, regional1.asn)
    for asn, city in TABLE1_TREATED_UNITS:
        n_users = int(rng.integers(150, 2500) * user_scale)
        user_groups.append(
            UserGroup(
                asn=asn,
                city=city,
                n_users=n_users,
                base_rate_per_hour=0.002,
                perf_sensitivity=0.5,
                change_sensitivity=1.0,
                backhaul_city=_TREATED_AS_HOMES[asn],
            )
        )

    # Donor access networks: never join the IXP during the window.
    donor_upstreams: dict[int, int] = {}
    for i in range(n_donor_ases):
        asn = asns.allocate()
        city = _DONOR_CITIES[int(rng.integers(0, len(_DONOR_CITIES)))]
        _make_as(topo, asn, f"AccessISP-{asn}", AsKind.ACCESS, city, prefixes)
        upstream = regional1.asn if rng.random() < 0.75 else regional2.asn
        topo.add_c2p(asn, upstream)
        donor_upstreams[asn] = upstream
        if rng.random() < 0.15:
            # A few donors trombone through Europe (texture, high RTT level).
            topo.add_c2p(asn, global1.asn)
        user_groups.append(
            UserGroup(
                asn=asn,
                city=city,
                n_users=int(rng.integers(150, 2500) * user_scale),
                base_rate_per_hour=0.002,
                perf_sensitivity=0.5,
                change_sensitivity=1.0,
            )
        )

    # Congestion: ZA diurnal cycle, flatter core profiles elsewhere.
    congestion = CongestionModel(
        profiles={
            "ZA": DiurnalProfile(base=0.5, amplitude=0.25, peak_hour=20.0, timezone_offset=2.0),
            "GB": DiurnalProfile(base=0.4, amplitude=0.15, peak_hour=21.0, timezone_offset=0.0),
            "FR": DiurnalProfile(base=0.4, amplitude=0.15, peak_hour=21.0, timezone_offset=1.0),
        },
        noise_std=0.05,
        base_queueing_ms=1.5,
    )
    if with_regional_shock:
        congestion.add_shock(
            RegionalShock(
                region="ZA",
                start_hour=(join_day + 5) * 24.0,
                end_hour=(join_day + 10) * 24.0,
                extra_utilization=0.12,
            )
        )

    latency = LatencyModel(
        topo, cities, congestion, last_mile_ms=8.0, noise_std_ms=2.0, ixps=ixps
    )

    # Timeline: staggered joins around join_day.
    timeline = Timeline(topo, ixps)
    join_hours: dict[int, float] = {}
    for i, asn in enumerate(treated_asns):
        hour = (join_day + (i % 4)) * 24.0 + float(rng.integers(6, 18))
        join_hours[asn] = hour
        # Port quality varies: most members land on clean ports, but a
        # minority hit hot/under-provisioned ports where the IXP path
        # performs no better (or worse) than transit did.
        if rng.random() < 0.25:
            port_bias = float(rng.uniform(0.16, 0.24))
        else:
            port_bias = float(np.clip(rng.normal(0.0, 0.05), -0.10, 0.12))
        if asn in suppress_joins:
            del join_hours[asn]
            continue
        timeline.add_event(
            IxpJoinEvent(
                time_hour=hour, asn=asn, ixp_name=ixp.name, port_bias=port_bias
            )
        )

    # Background churn (the paper's "broader churn"): some donors switch
    # transit providers at random times during the window.  These events
    # are independent of the IXP joins and give the placebo distribution
    # the same kind of structural divergence treated units show, keeping
    # the placebo p-values honest.
    churn_lo = min(3 * 24.0, duration_days * 6.0)
    churn_hi = duration_days * 24.0 - churn_lo
    for asn, upstream in donor_upstreams.items():
        if churn_hi <= churn_lo:
            break  # window too short for background churn
        if rng.random() < churn_probability:
            other = regional2.asn if upstream == regional1.asn else regional1.asn
            hour = float(rng.uniform(churn_lo, churn_hi))
            timeline.add_event(
                NewLinkEvent(time_hour=hour, a_asn=asn, b_asn=other, provider=True)
            )
            timeline.add_event(
                DepeeringEvent(time_hour=hour + 0.5, a_asn=asn, b_asn=upstream)
            )

    return Scenario(
        topology=topo,
        cities=cities,
        ixps=ixps,
        congestion=congestion,
        latency=latency,
        timeline=timeline,
        content_asn=content.asn,
        ixp_name=ixp.name,
        user_groups=user_groups,
        treated_units=list(TABLE1_TREATED_UNITS),
        join_hours=join_hours,
        duration_hours=duration_days * 24.0,
        extra={"join_day": join_day},
    )


def build_trombone_scenario(
    n_access: int = 6,
    duration_days: int = 30,
    join_day: int = 15,
    seed: int = 1,
) -> Scenario:
    """The belief-confirming contrast: pre-IXP paths trombone via Europe.

    Access ISPs buy transit only from an intercontinental provider, so
    reaching the Johannesburg CDN means a round trip through London.
    Joining NAPAfrica-JNB replaces that with an in-country path and RTT
    drops by ~150+ ms — the large effect the operational folklore
    remembers.  Half of the access networks join mid-window; the rest
    stay tromboned as donors.
    """
    if n_access < 2:
        raise SimulationError("need at least two access networks")
    rng = np.random.default_rng(seed)
    cities = default_catalog()
    prefixes = PrefixAllocator("10.128.0.0/9")
    topo = Topology()

    global1 = _make_as(topo, 65101, "GlobalTransit-LON", AsKind.TIER1, "London", prefixes)
    content = _make_as(topo, 65100, "StreamCo-CDN", AsKind.CONTENT, "Johannesburg", prefixes)
    topo.add_c2p(content.asn, global1.asn)

    ixp = Ixp(
        name="NAPAfrica-JNB",
        city="Johannesburg",
        peering_lan=Prefix.parse("196.60.9.0/24"),
    )
    ixps = IxpRegistry([ixp])
    ixp.add_member(content.asn)

    user_groups: list[UserGroup] = []
    access_asns: list[int] = []
    za_cities = ["Johannesburg", "Cape Town", "Durban", "Pretoria", "Polokwane", "George"]
    for i in range(n_access):
        asn = 65200 + i
        city = za_cities[i % len(za_cities)]
        _make_as(topo, asn, f"AccessISP-{asn}", AsKind.ACCESS, city, prefixes)
        topo.add_c2p(asn, global1.asn)
        access_asns.append(asn)
        user_groups.append(
            UserGroup(asn=asn, city=city, n_users=int(rng.integers(300, 1500)))
        )

    congestion = CongestionModel(
        profiles={
            "ZA": DiurnalProfile(base=0.5, amplitude=0.2, peak_hour=20.0, timezone_offset=2.0),
            "GB": DiurnalProfile(base=0.45, amplitude=0.15, peak_hour=21.0),
        },
        noise_std=0.04,
    )
    latency = LatencyModel(topo, cities, congestion, ixps=ixps)

    timeline = Timeline(topo, ixps)
    join_hours: dict[int, float] = {}
    treated = access_asns[: n_access // 2]
    for i, asn in enumerate(treated):
        hour = join_day * 24.0 + 6.0 * i
        join_hours[asn] = hour
        timeline.add_event(IxpJoinEvent(time_hour=hour, asn=asn, ixp_name=ixp.name))

    treated_units = [
        (g.asn, g.city) for g in user_groups if g.asn in join_hours
    ]
    return Scenario(
        topology=topo,
        cities=cities,
        ixps=ixps,
        congestion=congestion,
        latency=latency,
        timeline=timeline,
        content_asn=content.asn,
        ixp_name=ixp.name,
        user_groups=user_groups,
        treated_units=treated_units,
        join_hours=join_hours,
        duration_hours=duration_days * 24.0,
        extra={"join_day": join_day},
    )


def counterfactual_true_effect(
    asn: int,
    city: str,
    probe_day_offset: int = 2,
    **scenario_kwargs: object,
) -> float:
    """Scenario-level counterfactual ground truth for one treated unit.

    Builds the factual world and its twin in which *asn* never joins the
    exchange (identical seeds and random draws otherwise), and compares
    the unit's expected daily-median RTT at the *same* post-join day in
    both worlds.  This is the rung-three definition of the unit's effect
    — no reliance on temporal before/after comparisons at all.
    """
    factual = build_table1_scenario(**scenario_kwargs)
    if asn not in factual.join_hours:
        raise SimulationError(f"AS{asn} is not treated in this scenario")
    twin = build_table1_scenario(
        **scenario_kwargs, suppress_joins={asn}
    )
    join = factual.join_hours[asn]
    start = join + probe_day_offset * 24.0
    group_f = factual.group_for(asn, city)
    group_t = twin.group_for(asn, city)
    with_join = float(
        np.median(
            [factual._expected_unit_rtt(group_f, start + h) for h in range(24)]
        )
    )
    without_join = float(
        np.median(
            [twin._expected_unit_rtt(group_t, start + h) for h in range(24)]
        )
    )
    return with_join - without_join
