"""Traceroute synthesis.

Converts a selected BGP route into the hop list a traceroute would show:
one router hop per AS (addressed from that AS's router block), with the
far side of an IXP-fabric link answering from its *peering-LAN port
address*.  That LAN address is the fingerprint the paper matches against
PeeringDB prefixes to decide "this path crosses NAPAfrica".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RoutingError
from repro.netsim.bgp import Route
from repro.netsim.ixp import IxpRegistry
from repro.netsim.topology import Topology


@dataclass(frozen=True)
class Hop:
    """One traceroute hop.

    Attributes
    ----------
    index:
        1-based hop position.
    ip:
        Responding interface address.
    asn:
        AS owning the interface.
    ixp:
        Exchange name when the interface is an IXP peering-LAN port.
    """

    index: int
    ip: str
    asn: int
    ixp: str | None = None


@dataclass(frozen=True)
class TracerouteResult:
    """A full traceroute: ordered hops from source AS to destination AS."""

    source_asn: int
    destination_asn: int
    hops: tuple[Hop, ...] = field(default_factory=tuple)

    @property
    def hop_ips(self) -> list[str]:
        """Responding addresses in order (what raw traceroute output has)."""
        return [hop.ip for hop in self.hops]

    @property
    def as_path(self) -> tuple[int, ...]:
        """Distinct ASes in traversal order."""
        path: list[int] = []
        for hop in self.hops:
            if not path or path[-1] != hop.asn:
                path.append(hop.asn)
        return tuple(path)

    def crosses_ixp(self, ixp_name: str) -> bool:
        """Whether any hop answered from the named exchange's fabric."""
        return any(hop.ixp == ixp_name for hop in self.hops)


def synthesize_traceroute(
    topology: Topology,
    ixps: IxpRegistry,
    route: Route,
) -> TracerouteResult:
    """Build the hop list for a selected route.

    Hop addressing: the source AS contributes its own router hop; for
    each subsequent AS, the entry interface answers.  When the link into
    an AS is an IXP peering session, the entry interface is that AS's
    port on the exchange LAN (so the LAN prefix shows up mid-path).
    """
    if len(route.path) == 0:
        raise RoutingError("empty route")
    hops: list[Hop] = []
    index = 1
    first = topology.get_as(route.path[0])
    hops.append(Hop(index=index, ip=first.router_ip(1), asn=first.asn))
    for i in range(1, len(route.path)):
        prev_asn = route.path[i - 1]
        asn = route.path[i]
        link = topology.link_between(prev_asn, asn)
        if link is None:
            raise RoutingError(f"route {route.path} crosses missing link AS{prev_asn}-AS{asn}")
        index += 1
        if link.ixp is not None:
            ixp = ixps.get(link.ixp)
            hops.append(Hop(index=index, ip=ixp.port_ip(asn), asn=asn, ixp=ixp.name))
            index += 1
            entered = topology.get_as(asn)
            hops.append(Hop(index=index, ip=entered.router_ip(1), asn=asn))
        else:
            entered = topology.get_as(asn)
            hops.append(Hop(index=index, ip=entered.router_ip(1), asn=asn))
    return TracerouteResult(
        source_asn=route.path[0],
        destination_asn=route.path[-1],
        hops=tuple(hops),
    )


def detect_ixp_crossings(
    traceroute: TracerouteResult, ixps: IxpRegistry
) -> list[str]:
    """Which exchanges a traceroute crosses, by raw hop-IP prefix matching.

    This deliberately ignores the :attr:`Hop.ixp` annotation and matches
    IPs against peering-LAN prefixes — the same evidence chain as the
    paper (hop IPs vs PeeringDB announcements), so tests can verify the
    two agree.
    """
    seen: list[str] = []
    for ip in traceroute.hop_ips:
        ixp = ixps.ixp_for_ip(ip)
        if ixp is not None and ixp.name not in seen:
            seen.append(ixp.name)
    return seen
