"""Geography: cities, great-circle distance, propagation delay.

Latency floors in the simulator come from physics: great-circle distance
over the speed of light in fibre (~2e8 m/s) with a routing-indirectness
fudge factor.  A small catalogue of real cities is included — the South
African cities of the paper's Table 1 plus the overseas transit hubs
that produce the tromboning the case study is about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError

EARTH_RADIUS_KM = 6371.0
#: Speed of light in fibre, km per millisecond.
FIBRE_KM_PER_MS = 200.0
#: Cable paths are longer than great circles; standard inflation factor.
PATH_INFLATION = 1.6


@dataclass(frozen=True)
class City:
    """A named location with WGS84 coordinates.

    Attributes
    ----------
    name:
        Human-readable city name (unique key in a :class:`CityCatalog`).
    country:
        ISO-ish country label, used to group units by region.
    lat, lon:
        Degrees; latitude in [-90, 90], longitude in [-180, 180].
    """

    name: str
    country: str
    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90 <= self.lat <= 90:
            raise SimulationError(f"latitude {self.lat} out of range for {self.name!r}")
        if not -180 <= self.lon <= 180:
            raise SimulationError(f"longitude {self.lon} out of range for {self.name!r}")


def haversine_km(a: City, b: City) -> float:
    """Great-circle distance between two cities in kilometres."""
    lat1, lon1, lat2, lon2 = map(math.radians, (a.lat, a.lon, b.lat, b.lon))
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def propagation_delay_ms(a: City, b: City, inflation: float = PATH_INFLATION) -> float:
    """One-way propagation delay between cities in milliseconds."""
    if inflation < 1.0:
        raise SimulationError(f"path inflation must be >= 1, got {inflation}")
    return haversine_km(a, b) * inflation / FIBRE_KM_PER_MS


class CityCatalog:
    """A registry of cities keyed by name."""

    def __init__(self, cities: list[City] | None = None) -> None:
        self._cities: dict[str, City] = {}
        for city in cities or []:
            self.add(city)

    def add(self, city: City) -> None:
        """Register a city (name must be new)."""
        if city.name in self._cities:
            raise SimulationError(f"duplicate city {city.name!r}")
        self._cities[city.name] = city

    def get(self, name: str) -> City:
        """Look up a city by name."""
        try:
            return self._cities[name]
        except KeyError:
            raise SimulationError(
                f"unknown city {name!r}; known: {sorted(self._cities)}"
            ) from None

    def names(self) -> list[str]:
        """All registered city names, sorted."""
        return sorted(self._cities)

    def in_country(self, country: str) -> list[City]:
        """All cities in a country, name-sorted."""
        return sorted(
            (c for c in self._cities.values() if c.country == country),
            key=lambda c: c.name,
        )

    def __contains__(self, name: str) -> bool:
        return name in self._cities

    def __len__(self) -> int:
        return len(self._cities)


def default_catalog() -> CityCatalog:
    """Cities used by the Table-1 scenario.

    South African eyeball cities (the paper's ⟨ASN, city⟩ units), the
    NAPAfrica-JNB location, and the remote transit hubs (London,
    Marseille, Frankfurt) through which pre-IXP routes trombone.
    """
    return CityCatalog(
        [
            City("Johannesburg", "ZA", -26.2041, 28.0473),
            City("Cape Town", "ZA", -33.9249, 18.4241),
            City("Durban", "ZA", -29.8587, 31.0218),
            City("East London", "ZA", -33.0153, 27.9116),
            City("Edenvale", "ZA", -26.1411, 28.1528),
            City("Polokwane", "ZA", -23.9045, 29.4689),
            City("eMuziwezinto", "ZA", -30.1648, 30.6583),
            City("Pretoria", "ZA", -25.7479, 28.2293),
            City("Bloemfontein", "ZA", -29.0852, 26.1596),
            City("Gqeberha", "ZA", -33.9608, 25.6022),
            City("Nelspruit", "ZA", -25.4753, 30.9694),
            City("Kimberley", "ZA", -28.7282, 24.7499),
            City("Pietermaritzburg", "ZA", -29.6006, 30.3794),
            City("George", "ZA", -33.9648, 22.4590),
            City("Rustenburg", "ZA", -25.6545, 27.2559),
            City("London", "GB", 51.5074, -0.1278),
            City("Marseille", "FR", 43.2965, 5.3698),
            City("Frankfurt", "DE", 50.1109, 8.6821),
            City("Lisbon", "PT", 38.7223, -9.1393),
            City("Nairobi", "KE", -1.2921, 36.8219),
            City("Lagos", "NG", 6.5244, 3.3792),
        ]
    )
