"""BGP poisoning: steering routes as a controlled intervention (PoiRoot).

The paper's related work highlights PoiRoot (Javed et al.), which uses
BGP poisoning as an *instrumental variable* to identify root causes of
path changes: by prepending a target AS to its own announcement, an
origin makes that AS's loop-prevention drop the route, forcibly
steering traffic around it — an intervention whose timing the
experimenter controls, hence exogenous.

:func:`compute_routes_with_poison` re-runs Gao-Rexford route selection
with a poisoned AS excluded from carrying the destination's routes, and
:class:`PoisoningExperiment` packages the PoiRoot recipe: poison each
candidate AS on the old path, observe which poison reproduces the
performance change, and attribute the root cause.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RoutingError, SimulationError
from repro.netsim.bgp import LinkKey, Route, compute_routes
from repro.netsim.latency import LatencyModel
from repro.netsim.topology import Topology


def compute_routes_with_poison(
    topology: Topology,
    destination: int,
    poisoned: int,
    dead_links: set[LinkKey] | None = None,
) -> dict[int, Route]:
    """Routes to *destination* when *poisoned* refuses to carry them.

    Loop prevention makes the poisoned AS drop the announcement, which
    is equivalent to removing every adjacency of that AS from the
    propagation graph for this destination (other destinations are
    unaffected — hence the per-destination computation).
    """
    topology.get_as(poisoned)
    if poisoned == destination:
        raise SimulationError("cannot poison the destination itself")
    dead = set(dead_links or ())
    for key, link in topology.links.items():
        if poisoned in (link.a_asn, link.b_asn):
            dead.add(key)
    return compute_routes(topology, destination, dead)


@dataclass(frozen=True)
class PoisonProbe:
    """One poisoning trial: which AS was poisoned, what route resulted."""

    poisoned_asn: int
    route: Route | None  # None = destination unreachable under this poison
    rtt_ms: float | None

    @property
    def reachable(self) -> bool:
        """Whether the source still reached the destination."""
        return self.route is not None


@dataclass(frozen=True)
class RootCauseVerdict:
    """PoiRoot-style attribution for an observed path/performance change.

    Attributes
    ----------
    suspect_asn:
        The AS whose removal reproduces the new path (None when no
        single on-path AS explains the change).
    probes:
        All poisoning trials performed.
    explanation:
        Prose justification.
    """

    suspect_asn: int | None
    probes: tuple[PoisonProbe, ...]
    explanation: str


class PoisoningExperiment:
    """Identify which on-path AS caused an observed route change.

    Given a source, destination, the *old* path (before the change) and
    the *new* path (after), poison each intermediate AS of the old path
    in turn; the AS whose poisoning steers the source onto the new path
    is the one whose withdrawal/failure best explains the change.
    """

    def __init__(
        self,
        topology: Topology,
        latency: LatencyModel | None = None,
        hour: float = 12.0,
    ) -> None:
        self.topology = topology
        self.latency = latency
        self.hour = hour

    def probe(self, source: int, destination: int, poisoned: int) -> PoisonProbe:
        """Poison one AS and record the source's resulting route and RTT."""
        routes = compute_routes_with_poison(self.topology, destination, poisoned)
        route = routes.get(source)
        rtt = None
        if route is not None and self.latency is not None:
            rtt = self.latency.expected_rtt(route, self.hour, topology=self.topology)
        return PoisonProbe(poisoned_asn=poisoned, route=route, rtt_ms=rtt)

    def attribute_change(
        self,
        source: int,
        destination: int,
        old_path: tuple[int, ...],
        new_path: tuple[int, ...],
    ) -> RootCauseVerdict:
        """Run the PoiRoot recipe over the old path's intermediate ASes."""
        if len(old_path) < 3:
            raise RoutingError("old path has no intermediate AS to poison")
        if old_path[0] != source or old_path[-1] != destination:
            raise RoutingError("old path endpoints must match source/destination")
        candidates = [a for a in old_path[1:-1]]
        probes: list[PoisonProbe] = []
        matches: list[int] = []
        for asn in candidates:
            probe = self.probe(source, destination, asn)
            probes.append(probe)
            if probe.route is not None and probe.route.path == new_path:
                matches.append(asn)
        if len(matches) == 1:
            suspect = matches[0]
            explanation = (
                f"poisoning AS{suspect} steers AS{source} onto exactly the "
                f"observed new path {new_path}; the change is consistent with "
                f"AS{suspect} withdrawing or losing the destination's route."
            )
        elif not matches:
            suspect = None
            explanation = (
                "no single on-path poison reproduces the new path; the change "
                "likely originated off-path (policy further upstream) or from "
                "multiple simultaneous events."
            )
        else:
            suspect = None
            explanation = (
                f"poisons of {sorted(matches)} all reproduce the new path; the "
                "experiment cannot distinguish them (they share the relevant "
                "route segment) — poison combinations would be needed."
            )
        return RootCauseVerdict(
            suspect_asn=suspect,
            probes=tuple(probes),
            explanation=explanation,
        )
