"""Traffic demand and load-dependent congestion coupling.

By default the simulator's congestion is exogenous (diurnal profiles per
region).  This module adds the endogenous channel the paper's SUTVA
caveat describes: each access network offers demand toward the content
destination, every link's utilization rises with the share of total
demand routed across it, and therefore *a treated AS moving its traffic
onto an IXP relieves the transit links its untreated neighbours still
use* — interference from treatment to donors.

Usage: compute per-link demand loads for a routing state with
:func:`compute_link_loads`, convert them to utilization biases with
:func:`load_utilization_bias`, and install them on a
:class:`~repro.netsim.latency.LatencyModel` via its ``load_bias``
mapping (re-doing this per epoch as routes change).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import SimulationError
from repro.netsim.bgp import LinkKey, Route


def compute_link_loads(
    routes: Mapping[int, Route],
    demands: Mapping[int, float],
) -> dict[LinkKey, float]:
    """Demand units crossing each link, summed over source ASes.

    *demands* maps a source AS to its offered load (any unit — user
    counts work); sources without a route contribute nothing.
    """
    loads: dict[LinkKey, float] = {}
    for asn, demand in demands.items():
        if demand < 0:
            raise SimulationError(f"negative demand for AS{asn}")
        route = routes.get(asn)
        if route is None:
            continue
        for i in range(len(route.path) - 1):
            a, b = route.path[i], route.path[i + 1]
            key = (min(a, b), max(a, b))
            loads[key] = loads.get(key, 0.0) + float(demand)
    return loads


def load_utilization_bias(
    loads: Mapping[LinkKey, float],
    total_demand: float,
    coupling: float,
    reference_share: float = 0.0,
) -> dict[LinkKey, float]:
    """Convert link loads into additive utilization biases.

    ``bias = coupling * (load / total_demand - reference_share)`` — a
    link carrying more than *reference_share* of total demand runs
    hotter than its region profile; one carrying less runs cooler.
    *coupling* = 0 recovers the exogenous model (SUTVA holds).
    """
    if total_demand <= 0:
        raise SimulationError("total demand must be positive")
    if coupling < 0:
        raise SimulationError("coupling must be >= 0")
    return {
        key: coupling * (load / total_demand - reference_share)
        for key, load in loads.items()
    }


def apply_traffic_loads(
    latency_model,
    routes: Mapping[int, Route],
    demands: Mapping[int, float],
    coupling: float,
    reference_share: float = 0.0,
) -> dict[LinkKey, float]:
    """Recompute and install load biases on a latency model.

    Returns the installed bias mapping (handy for assertions).  Call
    again whenever the routing state changes (each timeline epoch).
    """
    total = float(sum(demands.values()))
    loads = compute_link_loads(routes, demands)
    bias = load_utilization_bias(loads, total, coupling, reference_share)
    latency_model.load_bias = dict(bias)
    return bias
