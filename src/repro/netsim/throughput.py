"""Download-throughput synthesis for speed tests.

M-Lab's NDT measures bulk TCP download rate, not just RTT.  The model
combines the two first-order effects:

- **bottleneck share** — each link offers ``capacity * (1 - util)``
  residual capacity; the path's bottleneck is the minimum;
- **latency limitation** — a single TCP flow cannot exceed roughly
  ``window / RTT``; long (tromboned) paths are throughput-limited even
  on empty links.

    rate = min(bottleneck_residual, window_limit(rtt)) * lognormal noise

This keeps the qualitative behaviour studies need: congestion hurts,
distance hurts, and the IXP's effect on throughput mirrors (and
amplifies) its effect on RTT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.netsim.bgp import Route
from repro.netsim.latency import LatencyModel
from repro.netsim.topology import Topology

#: Residual capacity share never drops below this (TCP always trickles).
MIN_RESIDUAL = 0.02


@dataclass(frozen=True)
class ThroughputSample:
    """One download measurement with its limiting factor."""

    download_mbps: float
    bottleneck_mbps: float
    window_limit_mbps: float

    @property
    def latency_limited(self) -> bool:
        """Whether the window limit (RTT), not capacity, bound the rate."""
        return self.window_limit_mbps < self.bottleneck_mbps


@dataclass(frozen=True)
class ThroughputBatch:
    """Component arrays for a whole batch of download measurements."""

    download_mbps: np.ndarray
    bottleneck_mbps: np.ndarray
    window_limit_mbps: np.ndarray

    def __len__(self) -> int:
        return len(self.download_mbps)

    @property
    def latency_limited(self) -> np.ndarray:
        """Per-sample mask: the window limit (RTT) bound the rate."""
        return self.window_limit_mbps < self.bottleneck_mbps


class ThroughputModel:
    """Synthesises NDT-style download rates along routes.

    Parameters
    ----------
    latency:
        The latency model (provides per-link utilization context and the
        RTT entering the window limit).
    access_capacity_mbps:
        Subscriber access rate (the edge bottleneck on clean paths).
    core_capacity_mbps:
        Per-flow share available on core links at zero utilization.
    window_kb:
        Effective TCP window for the ``window/RTT`` product.
    noise_sigma:
        Log-normal noise sigma on the final rate.
    """

    def __init__(
        self,
        latency: LatencyModel,
        access_capacity_mbps: float = 100.0,
        core_capacity_mbps: float = 400.0,
        window_kb: float = 2048.0,
        noise_sigma: float = 0.15,
    ) -> None:
        for name, value in (
            ("access_capacity_mbps", access_capacity_mbps),
            ("core_capacity_mbps", core_capacity_mbps),
            ("window_kb", window_kb),
        ):
            if value <= 0:
                raise SimulationError(f"{name} must be positive")
        self.latency = latency
        self.access_capacity_mbps = access_capacity_mbps
        self.core_capacity_mbps = core_capacity_mbps
        self.window_kb = window_kb
        self.noise_sigma = noise_sigma

    def window_limit_mbps(self, rtt_ms: float) -> float:
        """Single-flow rate ceiling from window/RTT."""
        rtt_s = max(rtt_ms, 1.0) / 1000.0
        return self.window_kb * 8.0 / 1024.0 / rtt_s  # KB -> Mbit

    def bottleneck_mbps(
        self,
        route: Route,
        hour: float,
        topology: Topology | None = None,
    ) -> float:
        """Minimum residual capacity along the route (noise-free)."""
        residuals = [self.access_capacity_mbps]
        for link in self.latency._links_on(route, topology):
            bias = link.congestion_bias + self.latency.load_bias.get(link.key, 0.0)
            util = self.latency.congestion.utilization(
                self.latency.link_region(link), hour, None, bias
            )
            residuals.append(
                self.core_capacity_mbps * max(1.0 - util, MIN_RESIDUAL)
            )
        return float(min(residuals))

    def window_limit_mbps_batch(self, rtt_ms: np.ndarray) -> np.ndarray:
        """Vectorised window/RTT ceiling for an array of RTTs."""
        rtt_s = np.maximum(np.asarray(rtt_ms, dtype=np.float64), 1.0) / 1000.0
        return self.window_kb * 8.0 / 1024.0 / rtt_s

    def bottleneck_mbps_batch(
        self,
        route: Route,
        hours: np.ndarray,
        topology: Topology | None = None,
    ) -> np.ndarray:
        """Minimum residual capacity along the route per hour (noise-free)."""
        hours = np.asarray(hours, dtype=np.float64)
        residual = np.full(hours.shape, self.access_capacity_mbps)
        congestion = self.latency.congestion
        for link in self.latency._links_on(route, topology):
            bias = link.congestion_bias + self.latency.load_bias.get(link.key, 0.0)
            util = congestion.utilization_batch(
                self.latency.link_region(link), hours, None, bias
            )
            residual = np.minimum(
                residual,
                self.core_capacity_mbps * np.maximum(1.0 - util, MIN_RESIDUAL),
            )
        return residual

    def sample(
        self,
        route: Route,
        rtt_ms: float,
        hour: float,
        rng: np.random.Generator,
        topology: Topology | None = None,
    ) -> ThroughputSample:
        """Draw one download-rate measurement."""
        bottleneck = self.bottleneck_mbps(route, hour, topology)
        window = self.window_limit_mbps(rtt_ms)
        base = min(bottleneck, window)
        noise = float(np.exp(rng.normal(0.0, self.noise_sigma)))
        return ThroughputSample(
            download_mbps=base * noise,
            bottleneck_mbps=bottleneck,
            window_limit_mbps=window,
        )

    def sample_batch(
        self,
        route: Route,
        rtt_ms: np.ndarray,
        hours: np.ndarray,
        rng: np.random.Generator,
        topology: Topology | None = None,
    ) -> ThroughputBatch:
        """Draw one download-rate measurement per ⟨rtt, hour⟩ pair.

        Vectorised counterpart of :meth:`sample`: the per-link residual
        capacities and the log-normal noise are each one array op, so a
        whole cell of tests costs the same Python overhead as one.
        """
        bottleneck = self.bottleneck_mbps_batch(route, hours, topology)
        window = self.window_limit_mbps_batch(rtt_ms)
        base = np.minimum(bottleneck, window)
        noise = np.exp(rng.normal(0.0, self.noise_sigma, size=base.shape))
        return ThroughputBatch(
            download_mbps=base * noise,
            bottleneck_mbps=bottleneck,
            window_limit_mbps=window,
        )

    def expected(
        self,
        route: Route,
        rtt_ms: float,
        hour: float,
        topology: Topology | None = None,
    ) -> float:
        """Noise-free download rate (for assertions)."""
        return min(
            self.bottleneck_mbps(route, hour, topology),
            self.window_limit_mbps(rtt_ms),
        )
