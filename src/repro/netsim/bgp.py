"""Gao-Rexford BGP route computation.

Computes, for one destination AS, the route every other AS selects under
the standard valley-free policy model:

- **export**: routes learned from customers are exported to everyone;
  routes learned from peers or providers are exported to customers only;
- **selection**: prefer customer routes over peer routes over provider
  routes (local-preference by relationship), then shortest AS path, then
  lowest next-hop ASN (deterministic tie-break).

The implementation runs three relaxation stages (customer routes bubble
up provider chains; peer routes hop one peering edge; provider routes
cascade down customer cones), each a Dijkstra-style pass so shortest
paths and deterministic ties come out naturally.  Link failures and
maintenance are modelled by passing the set of dead link keys.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import IntEnum

from repro.errors import RoutingError
from repro.netsim.topology import Relationship, Topology


class RouteKind(IntEnum):
    """Gao-Rexford route class, ordered by preference (lower is better)."""

    ORIGIN = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


@dataclass(frozen=True)
class Route:
    """A selected route from one AS to the destination.

    Attributes
    ----------
    source:
        The AS holding the route.
    path:
        AS path from source to destination, inclusive on both ends.
    kind:
        Relationship class of the route's first hop (selection class).
    """

    source: int
    path: tuple[int, ...]
    kind: RouteKind

    @property
    def length(self) -> int:
        """AS-path length in hops (edges)."""
        return len(self.path) - 1

    @property
    def next_hop(self) -> int | None:
        """First AS after the source (None for the origin itself)."""
        return self.path[1] if len(self.path) > 1 else None

    def crosses_link(self, a: int, b: int) -> bool:
        """Whether the path traverses the (a, b) adjacency."""
        for i in range(len(self.path) - 1):
            pair = {self.path[i], self.path[i + 1]}
            if pair == {a, b}:
                return True
        return False


LinkKey = tuple[int, int]


def compute_routes(
    topology: Topology,
    destination: int,
    dead_links: set[LinkKey] | None = None,
) -> dict[int, Route]:
    """Best route from every AS to *destination* under Gao-Rexford policy.

    ASes with no valley-free route are absent from the result.  *dead_links*
    are unordered ASN pairs (link keys) treated as down.
    """
    topology.get_as(destination)
    dead = dead_links or set()

    providers_of: dict[int, list[int]] = {}
    customers_of: dict[int, list[int]] = {}
    peers_of: dict[int, list[int]] = {}
    for asn in topology.ases:
        providers_of[asn] = []
        customers_of[asn] = []
        peers_of[asn] = []
    for key, link in topology.links.items():
        if key in dead:
            continue
        if link.relationship is Relationship.CUSTOMER_PROVIDER:
            providers_of[link.a_asn].append(link.b_asn)
            customers_of[link.b_asn].append(link.a_asn)
        else:
            peers_of[link.a_asn].append(link.b_asn)
            peers_of[link.b_asn].append(link.a_asn)

    best: dict[int, Route] = {
        destination: Route(destination, (destination,), RouteKind.ORIGIN)
    }

    # Stage 1 — customer routes: propagate from the destination up
    # provider chains (a provider learns the route from its customer).
    heap: list[tuple[int, int, tuple[int, ...]]] = []
    heapq.heappush(heap, (0, destination, (destination,)))
    settled: set[int] = set()
    while heap:
        dist, asn, path = heapq.heappop(heap)
        if asn in settled:
            continue
        settled.add(asn)
        if asn != destination:
            best[asn] = Route(asn, path, RouteKind.CUSTOMER)
        for provider in sorted(providers_of[asn]):
            if provider not in settled:
                heapq.heappush(heap, (dist + 1, provider, (provider,) + path))

    customer_route_holders = dict(best)  # origin + customer routes

    # Stage 2 — peer routes: one peering edge, then a customer route.
    # An AS only exports customer/origin routes to peers.
    for asn in sorted(topology.ases):
        if asn in best:
            continue  # customer routes always win
        candidates: list[tuple[int, int, tuple[int, ...]]] = []
        for peer in sorted(peers_of[asn]):
            route = customer_route_holders.get(peer)
            if route is not None:
                candidates.append((route.length + 1, peer, (asn,) + route.path))
        if candidates:
            _, _, path = min(candidates)
            best[asn] = Route(asn, path, RouteKind.PEER)

    # Stage 3 — provider routes: each AS exports its selected route to
    # its customers; cascades down customer cones (Dijkstra on length).
    heap2: list[tuple[int, int, tuple[int, ...]]] = []
    for asn, route in best.items():
        for customer in sorted(customers_of[asn]):
            if customer not in best:
                heapq.heappush(
                    heap2, (route.length + 1, customer, (customer,) + route.path)
                )
    settled2: set[int] = set(best)
    while heap2:
        dist, asn, path = heapq.heappop(heap2)
        if asn in settled2:
            continue
        settled2.add(asn)
        best[asn] = Route(asn, path, RouteKind.PROVIDER)
        for customer in sorted(customers_of[asn]):
            if customer not in settled2:
                heapq.heappush(heap2, (dist + 1, customer, (customer,) + path))

    return best


def route_between(
    topology: Topology,
    source: int,
    destination: int,
    dead_links: set[LinkKey] | None = None,
) -> Route:
    """The route *source* selects toward *destination*.

    Raises :class:`RoutingError` when no valley-free route exists.
    """
    routes = compute_routes(topology, destination, dead_links)
    route = routes.get(source)
    if route is None:
        raise RoutingError(
            f"AS{source} has no valley-free route to AS{destination}"
        )
    return route


def is_valley_free(topology: Topology, path: tuple[int, ...]) -> bool:
    """Validate the valley-free property of an AS path.

    A valid path is zero or more customer->provider steps, at most one
    peer step, then zero or more provider->customer steps.
    """
    if len(path) < 2:
        return True
    phase = "up"
    for i in range(len(path) - 1):
        a, b = path[i], path[i + 1]
        link = topology.link_between(a, b)
        if link is None:
            return False
        if link.relationship is Relationship.PEER_PEER:
            step = "peer"
        elif link.a_asn == a:  # a is customer: going up to provider
            step = "up"
        else:
            step = "down"
        if step == "up" and phase != "up":
            return False
        if step == "peer":
            if phase != "up":
                return False
            phase = "down"
        if step == "down":
            phase = "down"
    return True


def affected_sources(
    routes: dict[int, Route], link: LinkKey
) -> list[int]:
    """Sources whose selected route crosses the given link, sorted."""
    a, b = link
    return sorted(
        asn for asn, route in routes.items() if route.crosses_link(a, b)
    )
