"""Scenario events and the network timeline.

Events are the simulator's interventions — some endogenous (traffic-
driven policy shifts), some exogenous (scheduled maintenance, regulator-
imposed changes), mirroring the paper's discussion of which real-world
events make valid instruments.  A :class:`Timeline` applies events to a
base topology and answers "what did the network look like at hour t?",
with route computation cached per epoch.

Permanent events (IXP joins, depeerings, new links) change the topology
from their time onward; interval events (link failures, maintenance
windows) mark links dead for a bounded period.
"""

from __future__ import annotations

import bisect
import copy
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.netsim.bgp import LinkKey, Route, compute_routes
from repro.netsim.ixp import Ixp, IxpRegistry, connect_member
from repro.netsim.topology import Topology


@dataclass(frozen=True)
class NetworkEvent:
    """Base event: something that happens at a simulation hour."""

    time_hour: float

    def describe(self) -> str:
        """Human-readable one-liner."""
        return f"event at t={self.time_hour:g}h"


@dataclass(frozen=True)
class IxpJoinEvent(NetworkEvent):
    """An AS joins an exchange and peers over its fabric (permanent).

    ``port_bias`` shifts the new sessions' utilization: a positive value
    models a hot or under-provisioned member port.
    """

    asn: int = 0
    ixp_name: str = ""
    peer_with: tuple[int, ...] | None = None
    port_bias: float = 0.0

    def describe(self) -> str:
        return f"t={self.time_hour:g}h: AS{self.asn} joins {self.ixp_name}"


@dataclass(frozen=True)
class DepeeringEvent(NetworkEvent):
    """Two ASes tear down their adjacency (permanent)."""

    a_asn: int = 0
    b_asn: int = 0

    def describe(self) -> str:
        return f"t={self.time_hour:g}h: AS{self.a_asn} and AS{self.b_asn} depeer"


@dataclass(frozen=True)
class NewLinkEvent(NetworkEvent):
    """A new adjacency appears (permanent): c2p when provider set, else p2p."""

    a_asn: int = 0
    b_asn: int = 0
    provider: bool = False

    def describe(self) -> str:
        kind = "buys transit from" if self.provider else "peers with"
        return f"t={self.time_hour:g}h: AS{self.a_asn} {kind} AS{self.b_asn}"


@dataclass(frozen=True)
class LinkFailureEvent(NetworkEvent):
    """A link goes down for a bounded interval (unplanned)."""

    a_asn: int = 0
    b_asn: int = 0
    duration_hours: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_hours <= 0:
            raise SimulationError("failure duration must be positive")

    @property
    def link(self) -> LinkKey:
        """The affected link key."""
        return (min(self.a_asn, self.b_asn), max(self.a_asn, self.b_asn))

    def active(self, hour: float) -> bool:
        """Whether the link is down at *hour*."""
        return self.time_hour <= hour < self.time_hour + self.duration_hours

    def describe(self) -> str:
        return (
            f"t={self.time_hour:g}h: link AS{self.link[0]}-AS{self.link[1]} fails "
            f"for {self.duration_hours:g}h"
        )


@dataclass(frozen=True)
class MaintenanceWindowEvent(LinkFailureEvent):
    """A *scheduled* link outage.

    Functionally identical to a failure, but flagged as exogenous: its
    timing was fixed in advance, independent of network conditions —
    the paper's canonical natural-experiment instrument.
    """

    exogenous: bool = True

    def describe(self) -> str:
        return (
            f"t={self.time_hour:g}h: scheduled maintenance on "
            f"AS{self.link[0]}-AS{self.link[1]} for {self.duration_hours:g}h"
        )


class NetworkState:
    """The network as of one instant: topology, IXPs, dead links."""

    def __init__(
        self,
        topology: Topology,
        ixps: IxpRegistry,
        dead_links: frozenset[LinkKey],
        epoch: int,
    ) -> None:
        self.topology = topology
        self.ixps = ixps
        self.dead_links = dead_links
        self.epoch = epoch

    def routes_to(self, destination: int) -> dict[int, Route]:
        """Selected routes from every AS toward *destination*."""
        return compute_routes(self.topology, destination, set(self.dead_links))


class Timeline:
    """A base network plus a schedule of events.

    Permanent events create *epochs* (topology snapshots); interval
    events only toggle link liveness.  Route computations are cached per
    (epoch, dead-link-set, destination), so repeated measurement
    sampling within an epoch is cheap.
    """

    def __init__(self, topology: Topology, ixps: IxpRegistry) -> None:
        self._events: list[NetworkEvent] = []
        self._built = False
        self._base_topology = topology
        self._base_ixps = ixps
        self._epoch_times: list[float] = []
        self._epoch_states: list[tuple[Topology, IxpRegistry]] = []
        self._interval_events: list[LinkFailureEvent] = []
        self._route_cache: dict[tuple[int, frozenset[LinkKey], int], dict[int, Route]] = {}

    def add_event(self, event: NetworkEvent) -> None:
        """Schedule an event (before the first state query)."""
        if self._built:
            raise SimulationError("timeline already built; add events before querying")
        self._events.append(event)

    @property
    def events(self) -> list[NetworkEvent]:
        """All scheduled events, time-sorted."""
        return sorted(self._events, key=lambda e: e.time_hour)

    def _build(self) -> None:
        if self._built:
            return
        topo = self._base_topology.copy()
        ixps = copy.deepcopy(self._base_ixps)
        self._epoch_times = [float("-inf")]
        self._epoch_states = [(topo.copy(), copy.deepcopy(ixps))]
        for event in self.events:
            if isinstance(event, LinkFailureEvent):
                self._interval_events.append(event)
                continue
            self._apply_permanent(topo, ixps, event)
            self._epoch_times.append(event.time_hour)
            self._epoch_states.append((topo.copy(), copy.deepcopy(ixps)))
        self._built = True

    @staticmethod
    def _apply_permanent(topo: Topology, ixps: IxpRegistry, event: NetworkEvent) -> None:
        if isinstance(event, IxpJoinEvent):
            ixp = ixps.get(event.ixp_name)
            peer_with = list(event.peer_with) if event.peer_with is not None else None
            connect_member(topo, ixp, event.asn, peer_with, port_bias=event.port_bias)
        elif isinstance(event, DepeeringEvent):
            topo.remove_link(event.a_asn, event.b_asn)
        elif isinstance(event, NewLinkEvent):
            if event.provider:
                topo.add_c2p(event.a_asn, event.b_asn)
            else:
                topo.add_p2p(event.a_asn, event.b_asn)
        else:
            raise SimulationError(f"unknown permanent event {event!r}")

    def state_at(self, hour: float) -> NetworkState:
        """The network state in force at simulation *hour*."""
        self._build()
        idx = bisect.bisect_right(self._epoch_times, hour) - 1
        topo, ixps = self._epoch_states[idx]
        dead = frozenset(
            ev.link for ev in self._interval_events if ev.active(hour)
        )
        return NetworkState(topo, ixps, dead, epoch=idx)

    def routes_at(self, hour: float, destination: int) -> dict[int, Route]:
        """Cached route lookup for (hour's epoch, live links, destination)."""
        state = self.state_at(hour)
        key = (state.epoch, state.dead_links, destination)
        if key not in self._route_cache:
            self._route_cache[key] = state.routes_to(destination)
        return self._route_cache[key]

    def epoch_boundaries(self) -> list[float]:
        """Hours at which permanent events change the topology."""
        self._build()
        return [t for t in self._epoch_times if t != float("-inf")]
