"""End-to-end RTT along a BGP route.

RTT is assembled from physics plus congestion plus last-mile jitter:

    rtt = 2 * sum_links [ propagation(link cities) + queueing(region, t) ]
        + last_mile(access technology)
        + measurement noise

Propagation uses each link's endpoint cities; queueing comes from the
:class:`~repro.netsim.congestion.CongestionModel` keyed by the link's
region.  The factor of two converts one-way delays to round trip.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RoutingError, SimulationError
from repro.netsim.bgp import Route
from repro.netsim.congestion import CongestionModel
from repro.netsim.geo import CityCatalog, propagation_delay_ms
from repro.netsim.ixp import IxpRegistry
from repro.netsim.topology import Link, Topology


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-component decomposition of one RTT sample (milliseconds)."""

    propagation_ms: float
    queueing_ms: float
    last_mile_ms: float
    noise_ms: float

    @property
    def total_ms(self) -> float:
        """The full round-trip time."""
        return self.propagation_ms + self.queueing_ms + self.last_mile_ms + self.noise_ms


@dataclass(frozen=True)
class LatencyBatch:
    """Component arrays for a whole batch of RTT samples (milliseconds).

    The columnar counterpart of :class:`LatencyBreakdown`: propagation
    is one scalar (it does not vary within a route), the stochastic
    components are arrays aligned with the sampled hours.
    """

    propagation_ms: float
    queueing_ms: np.ndarray
    last_mile_ms: np.ndarray
    noise_ms: np.ndarray

    def __len__(self) -> int:
        return len(self.queueing_ms)

    @property
    def total_ms(self) -> np.ndarray:
        """The full round-trip time per sample."""
        return self.propagation_ms + self.queueing_ms + self.last_mile_ms + self.noise_ms


class LatencyModel:
    """Computes RTTs for routes over a topology.

    Parameters
    ----------
    topology, cities, congestion:
        The substrate objects.
    last_mile_ms:
        Mean access-network RTT contribution added at the source.
    noise_std_ms:
        Standard deviation of zero-mean measurement noise (clipped so a
        sample never goes below propagation).
    """

    def __init__(
        self,
        topology: Topology,
        cities: CityCatalog,
        congestion: CongestionModel,
        last_mile_ms: float = 8.0,
        noise_std_ms: float = 2.0,
        ixps: IxpRegistry | None = None,
    ) -> None:
        if last_mile_ms < 0 or noise_std_ms < 0:
            raise SimulationError("latency parameters must be >= 0")
        self.topology = topology
        self.cities = cities
        self.congestion = congestion
        self.last_mile_ms = last_mile_ms
        self.noise_std_ms = noise_std_ms
        self.ixps = ixps
        #: Optional per-link additive utilization bias from traffic load
        #: (installed by :func:`repro.netsim.traffic.apply_traffic_loads`).
        self.load_bias: dict[tuple[int, int], float] = {}
        self._prop_cache: dict[tuple, float] = {}

    def link_region(self, link: Link) -> str:
        """Region key a link's congestion draws from (its a-side country)."""
        return self.cities.get(link.a_city).country

    def _links_on(self, route: Route, topology: Topology | None = None) -> list[Link]:
        topo = topology if topology is not None else self.topology
        links = []
        for i in range(len(route.path) - 1):
            a, b = route.path[i], route.path[i + 1]
            link = topo.link_between(a, b)
            if link is None:
                raise RoutingError(
                    f"route {route.path} crosses missing link AS{a}-AS{b}"
                )
            links.append(link)
        return links

    def propagation_ms(self, route: Route, topology: Topology | None = None) -> float:
        """Round-trip propagation delay along the route (cached per link).

        Pass *topology* when the route was computed on an epoch snapshot
        that differs from the base (e.g. after an IXP join added links).
        """
        total = 0.0
        for link in self._links_on(route, topology):
            key = (link.key, link.a_city, link.b_city, link.ixp)
            if key not in self._prop_cache:
                a_city = self.cities.get(link.a_city)
                b_city = self.cities.get(link.b_city)
                if link.ixp is not None and self.ixps is not None:
                    # IXP-fabric hops physically transit the exchange's city.
                    fabric = self.cities.get(self.ixps.get(link.ixp).city)
                    delay = propagation_delay_ms(a_city, fabric) + propagation_delay_ms(
                        fabric, b_city
                    )
                else:
                    delay = propagation_delay_ms(a_city, b_city)
                self._prop_cache[key] = delay
            total += self._prop_cache[key]
        return 2.0 * total

    def sample_rtt(
        self,
        route: Route,
        hour: float,
        rng: np.random.Generator,
        topology: Topology | None = None,
    ) -> LatencyBreakdown:
        """Draw one RTT measurement along *route* at simulation *hour*."""
        prop = self.propagation_ms(route, topology)
        queueing = 0.0
        for link in self._links_on(route, topology):
            bias = link.congestion_bias + self.load_bias.get(link.key, 0.0)
            queueing += 2.0 * self.congestion.queueing_delay_ms(
                self.link_region(link), hour, rng, bias=bias
            )
        last_mile = float(max(rng.normal(self.last_mile_ms, self.last_mile_ms / 4), 0.5))
        noise = float(rng.normal(0.0, self.noise_std_ms))
        if prop + queueing + last_mile + noise < prop:
            noise = -(queueing + last_mile)  # never beat the speed of light
        return LatencyBreakdown(
            propagation_ms=prop,
            queueing_ms=queueing,
            last_mile_ms=last_mile,
            noise_ms=noise,
        )

    def sample_rtt_batch(
        self,
        route: Route,
        hours: np.ndarray,
        rng: np.random.Generator,
        topology: Topology | None = None,
    ) -> LatencyBatch:
        """Draw one RTT measurement per element of *hours* along *route*.

        Vectorised counterpart of :meth:`sample_rtt`: one call prices a
        whole ⟨group, hour⟩ cell (or many cells pooled per route).  The
        per-link congestion draws, the last-mile draw, and the
        measurement noise are each a single vectorised RNG call, so the
        per-sample Python cost is amortised to nothing.  Distribution
        is identical to the scalar path; draw *order* differs, so the
        two are seed-comparable only statistically.
        """
        hours = np.asarray(hours, dtype=np.float64)
        prop = self.propagation_ms(route, topology)
        queueing = np.zeros_like(hours)
        for link in self._links_on(route, topology):
            bias = link.congestion_bias + self.load_bias.get(link.key, 0.0)
            queueing += 2.0 * self.congestion.queueing_delay_ms_batch(
                self.link_region(link), hours, rng, bias=bias
            )
        last_mile = np.maximum(
            rng.normal(self.last_mile_ms, self.last_mile_ms / 4, size=hours.shape), 0.5
        )
        noise = rng.normal(0.0, self.noise_std_ms, size=hours.shape)
        # Never beat the speed of light: clamp noise where it would push
        # the total below pure propagation (same rule as the scalar path).
        too_fast = queueing + last_mile + noise < 0.0
        noise = np.where(too_fast, -(queueing + last_mile), noise)
        return LatencyBatch(
            propagation_ms=prop,
            queueing_ms=queueing,
            last_mile_ms=last_mile,
            noise_ms=noise,
        )

    def expected_rtt(
        self, route: Route, hour: float, topology: Topology | None = None
    ) -> float:
        """Noise-free RTT along *route* at *hour* (for assertions/tests)."""
        prop = self.propagation_ms(route, topology)
        queueing = sum(
            2.0
            * self.congestion.queueing_delay_ms(
                self.link_region(link),
                hour,
                None,
                bias=link.congestion_bias + self.load_bias.get(link.key, 0.0),
            )
            for link in self._links_on(route, topology)
        )
        return prop + queueing + self.last_mile_ms

    def expected_rtt_batch(
        self, route: Route, hours: np.ndarray, topology: Topology | None = None
    ) -> np.ndarray:
        """Noise-free RTT along *route* for a whole array of *hours*.

        The vectorised ambient-RTT curve the batched generator prices
        test rates from: one pass per link instead of one per hour.
        """
        hours = np.asarray(hours, dtype=np.float64)
        queueing = np.zeros_like(hours)
        for link in self._links_on(route, topology):
            bias = link.congestion_bias + self.load_bias.get(link.key, 0.0)
            queueing += 2.0 * self.congestion.queueing_delay_ms_batch(
                self.link_region(link), hours, None, bias=bias
            )
        return self.propagation_ms(route, topology) + queueing + self.last_mile_ms
