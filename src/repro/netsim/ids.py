"""Identifier helpers: IPv4 addresses, prefixes, and ASN allocation.

IPv4 addresses are plain 32-bit ints internally; :class:`Prefix` wraps a
CIDR block with membership tests and sequential address allocation —
enough to model IXP peering LANs and per-AS router addressing, and to
reimplement the paper's hop-IP-to-IXP matching exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


def ip_to_int(text: str) -> int:
    """Parse dotted-quad IPv4 into a 32-bit int."""
    parts = text.split(".")
    if len(parts) != 4:
        raise SimulationError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise SimulationError(f"malformed IPv4 address {text!r}")
        octet = int(part)
        if octet > 255:
            raise SimulationError(f"octet {octet} out of range in {text!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format a 32-bit int as dotted-quad IPv4."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise SimulationError(f"IPv4 value {value} out of range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class Prefix:
    """An IPv4 CIDR block.

    Attributes
    ----------
    network:
        Network address as a 32-bit int (host bits must be zero).
    length:
        Prefix length in [0, 32].
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise SimulationError(f"prefix length {self.length} out of range")
        if self.network & (self.host_mask()):
            raise SimulationError(
                f"network {int_to_ip(self.network)}/{self.length} has host bits set"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation."""
        try:
            addr, length = text.split("/")
        except ValueError:
            raise SimulationError(f"malformed prefix {text!r}") from None
        return cls(ip_to_int(addr), int(length))

    def host_mask(self) -> int:
        """Mask of host bits."""
        return (1 << (32 - self.length)) - 1

    def netmask(self) -> int:
        """Mask of network bits."""
        return 0xFFFFFFFF ^ self.host_mask()

    def contains(self, address: int | str) -> bool:
        """Whether an address (int or dotted-quad) falls in this block."""
        value = ip_to_int(address) if isinstance(address, str) else address
        return (value & self.netmask()) == self.network

    @property
    def num_addresses(self) -> int:
        """Total addresses in the block (network/broadcast included)."""
        return 1 << (32 - self.length)

    def address(self, offset: int) -> str:
        """The dotted-quad address at *offset* within the block."""
        if not 0 <= offset < self.num_addresses:
            raise SimulationError(
                f"offset {offset} outside {self} ({self.num_addresses} addresses)"
            )
        return int_to_ip(self.network + offset)

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


class PrefixAllocator:
    """Hands out disjoint /24 blocks from a private supernet.

    Used to give every AS router block and every IXP peering LAN a
    distinct, recognisable prefix.
    """

    def __init__(self, supernet: str = "10.0.0.0/8") -> None:
        self._super = Prefix.parse(supernet)
        if self._super.length > 24:
            raise SimulationError("supernet must be /24 or shorter")
        self._next = 0
        self._max = 1 << (24 - self._super.length)

    def allocate(self) -> Prefix:
        """Return the next unused /24."""
        if self._next >= self._max:
            raise SimulationError(f"supernet {self._super} exhausted")
        network = self._super.network + (self._next << 8)
        self._next += 1
        return Prefix(network, 24)


class AsnAllocator:
    """Sequential AS-number allocation from a starting value."""

    def __init__(self, start: int = 64512) -> None:
        if start <= 0:
            raise SimulationError("ASN start must be positive")
        self._next = start

    def allocate(self) -> int:
        """Return the next unused ASN."""
        asn = self._next
        self._next += 1
        return asn
