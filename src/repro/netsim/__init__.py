"""The simulated Internet: topology, BGP, latency, congestion, events.

This package is the substrate substitution for the paper's live M-Lab
measurements: a deterministic-by-seed world whose data-generating
process contains the real confounders (diurnal load, regional shocks,
route churn) and whose ground truth is queryable, so causal estimators
can be validated, not just run.

Key entry points:

- :func:`build_table1_scenario` / :func:`build_trombone_scenario` —
  pre-wired worlds for the case study;
- :class:`Topology` + :func:`compute_routes` — Gao-Rexford BGP;
- :class:`Timeline` — event scheduling and epoch-cached routing;
- :class:`LatencyModel` + :class:`CongestionModel` — RTT synthesis;
- :func:`synthesize_traceroute` + :class:`IxpRegistry` — hop-IP evidence.
"""

from repro.netsim.bgp import (
    Route,
    RouteKind,
    affected_sources,
    compute_routes,
    is_valley_free,
    route_between,
)
from repro.netsim.cdn import (
    CdnDeployment,
    CdnEdge,
    edge_selection_contrast,
    run_resolver_experiment,
)
from repro.netsim.congestion import (
    CongestionModel,
    DiurnalProfile,
    RegionalShock,
)
from repro.netsim.events import (
    DepeeringEvent,
    IxpJoinEvent,
    LinkFailureEvent,
    MaintenanceWindowEvent,
    NetworkEvent,
    NetworkState,
    NewLinkEvent,
    Timeline,
)
from repro.netsim.geo import (
    City,
    CityCatalog,
    default_catalog,
    haversine_km,
    propagation_delay_ms,
)
from repro.netsim.ids import AsnAllocator, Prefix, PrefixAllocator, int_to_ip, ip_to_int
from repro.netsim.ixp import Ixp, IxpRegistry, connect_member
from repro.netsim.latency import LatencyBreakdown, LatencyModel
from repro.netsim.poisoning import (
    PoisoningExperiment,
    PoisonProbe,
    RootCauseVerdict,
    compute_routes_with_poison,
)
from repro.netsim.scenario import (
    Scenario,
    TABLE1_TREATED_UNITS,
    build_table1_scenario,
    build_trombone_scenario,
    counterfactual_true_effect,
)
from repro.netsim.topology import (
    AsKind,
    AutonomousSystem,
    Link,
    Relationship,
    Topology,
)
from repro.netsim.throughput import ThroughputModel, ThroughputSample
from repro.netsim.traffic import (
    apply_traffic_loads,
    compute_link_loads,
    load_utilization_bias,
)
from repro.netsim.traceroute import (
    Hop,
    TracerouteResult,
    detect_ixp_crossings,
    synthesize_traceroute,
)
from repro.netsim.users import UserGroup

__all__ = [
    "AsKind",
    "AsnAllocator",
    "AutonomousSystem",
    "CdnDeployment",
    "CdnEdge",
    "City",
    "CityCatalog",
    "CongestionModel",
    "DepeeringEvent",
    "DiurnalProfile",
    "Hop",
    "Ixp",
    "IxpJoinEvent",
    "IxpRegistry",
    "LatencyBreakdown",
    "LatencyModel",
    "Link",
    "LinkFailureEvent",
    "MaintenanceWindowEvent",
    "NetworkEvent",
    "NetworkState",
    "NewLinkEvent",
    "PoisonProbe",
    "PoisoningExperiment",
    "Prefix",
    "PrefixAllocator",
    "RegionalShock",
    "Relationship",
    "RootCauseVerdict",
    "Route",
    "RouteKind",
    "Scenario",
    "TABLE1_TREATED_UNITS",
    "ThroughputModel",
    "ThroughputSample",
    "Timeline",
    "Topology",
    "TracerouteResult",
    "UserGroup",
    "affected_sources",
    "apply_traffic_loads",
    "build_table1_scenario",
    "build_trombone_scenario",
    "compute_link_loads",
    "compute_routes",
    "compute_routes_with_poison",
    "connect_member",
    "counterfactual_true_effect",
    "default_catalog",
    "detect_ixp_crossings",
    "edge_selection_contrast",
    "haversine_km",
    "int_to_ip",
    "ip_to_int",
    "is_valley_free",
    "load_utilization_bias",
    "propagation_delay_ms",
    "route_between",
    "run_resolver_experiment",
    "synthesize_traceroute",
]
