"""Internet exchange points.

An IXP is a layer-2 fabric with a peering LAN: every member gets a port
address inside the LAN prefix.  Crossing the IXP shows up in a
traceroute as a hop whose IP falls inside that prefix — exactly the
signal the paper matches against PeeringDB data to detect NAPAfrica
crossings.  :meth:`Ixp.peeringdb_record` emits a PeeringDB-shaped dict
so the pipeline's matching code reads like the real one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.netsim.ids import Prefix
from repro.netsim.topology import Topology


@dataclass
class Ixp:
    """An exchange point with a peering LAN and member ports.

    Attributes
    ----------
    name:
        Exchange name, e.g. ``"NAPAfrica-JNB"``.
    city:
        Location of the fabric (peering there implies presence there).
    peering_lan:
        The LAN prefix; member port IPs are allocated from it.
    members:
        ``{asn: port_ip}`` for current members.
    """

    name: str
    city: str
    peering_lan: Prefix
    members: dict[int, str] = field(default_factory=dict)
    _next_port: int = 1

    def add_member(self, asn: int) -> str:
        """Allocate a port IP for a new member and return it."""
        if asn in self.members:
            raise SimulationError(f"AS{asn} is already a member of {self.name}")
        if self._next_port >= self.peering_lan.num_addresses - 1:
            raise SimulationError(f"peering LAN of {self.name} is full")
        ip = self.peering_lan.address(self._next_port)
        self._next_port += 1
        self.members[asn] = ip
        return ip

    def remove_member(self, asn: int) -> None:
        """Drop a member (its port address is retired, not reused)."""
        if asn not in self.members:
            raise SimulationError(f"AS{asn} is not a member of {self.name}")
        del self.members[asn]

    def port_ip(self, asn: int) -> str:
        """The member's port address on the fabric."""
        try:
            return self.members[asn]
        except KeyError:
            raise SimulationError(f"AS{asn} is not a member of {self.name}") from None

    def contains_ip(self, address: str) -> bool:
        """Whether an address lies in this exchange's peering LAN."""
        return self.peering_lan.contains(address)

    def peeringdb_record(self) -> dict[str, object]:
        """A PeeringDB-shaped description of the exchange."""
        return {
            "name": self.name,
            "city": self.city,
            "prefixes": [str(self.peering_lan)],
            "net_count": len(self.members),
            "members": sorted(self.members),
        }

    def __repr__(self) -> str:
        return f"Ixp({self.name!r}, {self.city!r}, lan={self.peering_lan}, members={len(self.members)})"


def connect_member(
    topology: Topology,
    ixp: Ixp,
    asn: int,
    peer_with: list[int] | None = None,
    port_bias: float = 0.0,
) -> list[int]:
    """Join *asn* to *ixp* and establish p2p sessions over the fabric.

    By default the new member peers with every existing member (the
    route-server open-policy common at large African exchanges); pass
    *peer_with* to restrict to a subset.  *port_bias* sets the new
    sessions' congestion bias (a congested member port makes the IXP
    path worse, not better).  Returns the ASNs actually peered with
    (pairs that already had a direct link are skipped).
    """
    existing = sorted(ixp.members)
    ixp.add_member(asn)
    targets = existing if peer_with is None else [t for t in peer_with if t in ixp.members and t != asn]
    peered: list[int] = []
    for other in targets:
        if topology.link_between(asn, other) is not None:
            continue
        # Endpoint cities are the members' home PoPs; the latency model
        # routes the hop through the exchange's city (see LatencyModel).
        topology.add_p2p(
            asn,
            other,
            a_city=topology.get_as(asn).city,
            b_city=topology.get_as(other).city,
            ixp=ixp.name,
            congestion_bias=port_bias,
        )
        peered.append(other)
    return peered


class IxpRegistry:
    """All exchanges in a scenario, with reverse IP lookup."""

    def __init__(self, ixps: list[Ixp] | None = None) -> None:
        self._ixps: dict[str, Ixp] = {}
        for ixp in ixps or []:
            self.add(ixp)

    def add(self, ixp: Ixp) -> None:
        """Register an exchange (name must be new)."""
        if ixp.name in self._ixps:
            raise SimulationError(f"duplicate IXP {ixp.name!r}")
        for existing in self._ixps.values():
            if existing.peering_lan == ixp.peering_lan:
                raise SimulationError(
                    f"IXP {ixp.name!r} reuses the peering LAN of {existing.name!r}"
                )
        self._ixps[ixp.name] = ixp

    def get(self, name: str) -> Ixp:
        """Look up an exchange by name."""
        try:
            return self._ixps[name]
        except KeyError:
            raise SimulationError(f"unknown IXP {name!r}") from None

    def names(self) -> list[str]:
        """All exchange names, sorted."""
        return sorted(self._ixps)

    def ixp_for_ip(self, address: str) -> Ixp | None:
        """The exchange whose peering LAN contains *address*, if any."""
        for ixp in self._ixps.values():
            if ixp.contains_ip(address):
                return ixp
        return None

    def __contains__(self, name: str) -> bool:
        return name in self._ixps

    def __len__(self) -> int:
        return len(self._ixps)
