"""CDN edge selection and DNS resolver rotation (§4.3's second knob).

The paper proposes "rotating DNS resolvers to shift CDN edge selection"
as an exogenous-variation API.  This module models the mechanism: a CDN
deploys edges (separate ASes) in several cities; which edge a user's
traffic lands on is decided by the DNS mapping, which depends on the
resolver used.  Rotating resolvers therefore re-randomises edge
selection without touching anything else — an instrument for "which
edge served me" in an RTT regression.

Policies:

- ``geo`` — the resolver maps the client to the nearest edge (the
  default ISP resolver with good ECS information);
- ``public_resolver`` — a centralised public resolver maps every client
  to the edge nearest the *resolver*, not the client (the classic
  mis-mapping problem);
- ``rotate`` — round-robin/random edge choice (the experiment knob).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import RoutingError, SimulationError
from repro.frames.frame import Frame
from repro.netsim.bgp import Route, compute_routes
from repro.netsim.geo import CityCatalog, propagation_delay_ms
from repro.netsim.latency import LatencyModel
from repro.netsim.topology import Topology

POLICIES = ("geo", "public_resolver", "rotate")


@dataclass(frozen=True)
class CdnEdge:
    """One CDN edge deployment: an AS serving from a city."""

    asn: int
    city: str


class CdnDeployment:
    """A multi-edge CDN over a topology, with DNS-driven edge selection."""

    def __init__(
        self,
        topology: Topology,
        cities: CityCatalog,
        edges: list[CdnEdge],
        resolver_city: str = "Frankfurt",
    ) -> None:
        if not edges:
            raise SimulationError("a CDN needs at least one edge")
        for edge in edges:
            topology.get_as(edge.asn)
            cities.get(edge.city)
        cities.get(resolver_city)
        self.topology = topology
        self.cities = cities
        self.edges = list(edges)
        self.resolver_city = resolver_city

    def nearest_edge(self, client_city: str) -> CdnEdge:
        """The edge geographically nearest to *client_city*."""
        origin = self.cities.get(client_city)
        return min(
            self.edges,
            key=lambda e: propagation_delay_ms(origin, self.cities.get(e.city)),
        )

    def select_edge(
        self,
        client_city: str,
        policy: str,
        rng: np.random.Generator | None = None,
    ) -> CdnEdge:
        """Pick the edge a DNS lookup under *policy* would return."""
        if policy == "geo":
            return self.nearest_edge(client_city)
        if policy == "public_resolver":
            return self.nearest_edge(self.resolver_city)
        if policy == "rotate":
            if rng is None:
                raise SimulationError("rotate policy needs an rng")
            return self.edges[int(rng.integers(0, len(self.edges)))]
        raise SimulationError(f"unknown policy {policy!r}; choose from {POLICIES}")

    def route_to_edge(self, client_asn: int, edge: CdnEdge) -> Route:
        """The client's BGP route to one edge."""
        routes = compute_routes(self.topology, edge.asn)
        route = routes.get(client_asn)
        if route is None:
            raise RoutingError(f"AS{client_asn} cannot reach edge AS{edge.asn}")
        return route


def run_resolver_experiment(
    cdn: CdnDeployment,
    latency: LatencyModel,
    client_asn: int,
    client_city: str,
    policy: str,
    n_tests: int,
    hour: float = 12.0,
    rng: np.random.Generator | int | None = 0,
) -> Frame:
    """Measure RTT to the CDN under one resolver policy.

    Returns a frame with ``edge_asn``, ``edge_city``, ``nearest`` (1 if
    the chosen edge is the geographically nearest one) and ``rtt_ms``.
    Under ``rotate``, edge choice is randomized per test, so the
    nearest-vs-not RTT contrast computed from the result is causal.
    """
    if n_tests <= 0:
        raise SimulationError("n_tests must be positive")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    nearest = cdn.nearest_edge(client_city)
    route_cache: dict[int, Route] = {}
    records = []
    for _ in range(n_tests):
        edge = cdn.select_edge(client_city, policy, rng)
        if edge.asn not in route_cache:
            route_cache[edge.asn] = cdn.route_to_edge(client_asn, edge)
        sample = latency.sample_rtt(
            route_cache[edge.asn], hour + float(rng.uniform(0, 1)), rng
        )
        backhaul = 2.0 * propagation_delay_ms(
            cdn.cities.get(client_city),
            cdn.cities.get(cdn.topology.get_as(client_asn).city),
        )
        records.append(
            {
                "edge_asn": edge.asn,
                "edge_city": edge.city,
                "nearest": 1 if edge.asn == nearest.asn else 0,
                "rtt_ms": sample.total_ms + backhaul,
            }
        )
    return Frame.from_records(records)


def edge_selection_contrast(tests: Frame) -> float:
    """Mean RTT penalty of being mapped to a non-nearest edge.

    Causal when the input came from the ``rotate`` policy (randomized
    edge assignment); descriptive otherwise.
    """
    nearest = tests.numeric("nearest").astype(bool)
    rtt = tests.numeric("rtt_ms")
    if nearest.all() or (~nearest).all():
        raise SimulationError("need tests on both nearest and non-nearest edges")
    return float(rtt[~nearest].mean() - rtt[nearest].mean())
