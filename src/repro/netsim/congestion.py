"""Traffic load and queueing delay.

Congestion is the confounder at the heart of the paper's running
example: diurnal load influences both routing decisions and latency.
The model gives every link a utilization process

    util(t) = clip(base + diurnal(t) + regional_shock(t) + noise, 0, 0.97)

where the diurnal term follows local time of the link's region and
shocks are scenario events (e.g. a regional congestion episode).  The
queueing delay added per traversal follows an M/M/1-style blow-up,
``d0 * util / (1 - util)``, capped for numerical sanity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError

HOURS_PER_DAY = 24.0
MAX_UTILIZATION = 0.97


@dataclass(frozen=True)
class DiurnalProfile:
    """A sinusoidal daily load profile.

    Attributes
    ----------
    base:
        Mean utilization in [0, 1).
    amplitude:
        Peak deviation of the daily swing.
    peak_hour:
        Local hour of maximum load.
    timezone_offset:
        Hours to add to simulation time to get local time.
    """

    base: float = 0.45
    amplitude: float = 0.25
    peak_hour: float = 20.0
    timezone_offset: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.base < 1:
            raise SimulationError(f"base utilization {self.base} out of [0, 1)")
        if self.amplitude < 0:
            raise SimulationError("amplitude must be >= 0")

    def utilization(self, hour: float) -> float:
        """Deterministic utilization at simulation *hour* (no noise)."""
        local = (hour + self.timezone_offset) % HOURS_PER_DAY
        phase = 2 * math.pi * (local - self.peak_hour) / HOURS_PER_DAY
        return float(
            np.clip(self.base + self.amplitude * math.cos(phase), 0.0, MAX_UTILIZATION)
        )

    def utilization_batch(self, hours: np.ndarray) -> np.ndarray:
        """Deterministic utilization for a whole array of *hours* at once."""
        hours = np.asarray(hours, dtype=np.float64)
        local = (hours + self.timezone_offset) % HOURS_PER_DAY
        phase = 2.0 * np.pi * (local - self.peak_hour) / HOURS_PER_DAY
        return np.clip(
            self.base + self.amplitude * np.cos(phase), 0.0, MAX_UTILIZATION
        )


@dataclass(frozen=True)
class RegionalShock:
    """A transient additive load shock over a region's links.

    Models the paper's "no other major shocks" caveat: scenario builders
    inject these deliberately to stress synthetic-control robustness.
    """

    region: str
    start_hour: float
    end_hour: float
    extra_utilization: float

    def __post_init__(self) -> None:
        if self.end_hour <= self.start_hour:
            raise SimulationError("shock must end after it starts")

    def active(self, hour: float) -> bool:
        """Whether the shock covers simulation *hour*."""
        return self.start_hour <= hour < self.end_hour


class CongestionModel:
    """Per-region utilization and per-link queueing delay.

    Parameters
    ----------
    profiles:
        ``{region: DiurnalProfile}``; the region of a link is the country
        of its lower-latitude endpoint's city in the default scenario
        builder, but any string key works.
    noise_std:
        Standard deviation of per-sample utilization noise.
    base_queueing_ms:
        Queueing delay scale ``d0`` in the M/M/1 blow-up.
    max_queueing_ms:
        Hard cap on per-link queueing delay.
    """

    def __init__(
        self,
        profiles: dict[str, DiurnalProfile] | None = None,
        default_profile: DiurnalProfile | None = None,
        noise_std: float = 0.03,
        base_queueing_ms: float = 1.2,
        max_queueing_ms: float = 80.0,
    ) -> None:
        if noise_std < 0:
            raise SimulationError("noise_std must be >= 0")
        self.profiles = dict(profiles or {})
        self.default_profile = default_profile or DiurnalProfile()
        self.noise_std = noise_std
        self.base_queueing_ms = base_queueing_ms
        self.max_queueing_ms = max_queueing_ms
        self.shocks: list[RegionalShock] = []

    def add_shock(self, shock: RegionalShock) -> None:
        """Schedule a regional load shock."""
        self.shocks.append(shock)

    def profile_for(self, region: str) -> DiurnalProfile:
        """The diurnal profile of *region* (default when unregistered)."""
        return self.profiles.get(region, self.default_profile)

    def utilization(
        self,
        region: str,
        hour: float,
        rng: np.random.Generator | None = None,
        bias: float = 0.0,
    ) -> float:
        """Sampled utilization of a link in *region* at *hour*.

        *bias* is a per-link additive utilization shift (e.g. a hot IXP
        port), applied before clipping.
        """
        util = self.profile_for(region).utilization(hour) + bias
        for shock in self.shocks:
            if shock.region == region and shock.active(hour):
                util += shock.extra_utilization
        if rng is not None and self.noise_std > 0:
            util += float(rng.normal(0.0, self.noise_std))
        return float(np.clip(util, 0.0, MAX_UTILIZATION))

    def utilization_batch(
        self,
        region: str,
        hours: np.ndarray,
        rng: np.random.Generator | None = None,
        bias: float = 0.0,
    ) -> np.ndarray:
        """Sampled utilization of a link in *region* over an *hours* array.

        One vectorised draw prices every element: the diurnal curve,
        active shocks (masked per element), the per-link *bias*, and —
        when *rng* is given — one normal noise draw per element.
        """
        hours = np.asarray(hours, dtype=np.float64)
        util = self.profile_for(region).utilization_batch(hours) + bias
        for shock in self.shocks:
            if shock.region == region:
                active = (hours >= shock.start_hour) & (hours < shock.end_hour)
                util = util + shock.extra_utilization * active
        if rng is not None and self.noise_std > 0:
            util = util + rng.normal(0.0, self.noise_std, size=hours.shape)
        return np.clip(util, 0.0, MAX_UTILIZATION)

    def queueing_delay_ms(
        self,
        region: str,
        hour: float,
        rng: np.random.Generator | None = None,
        bias: float = 0.0,
    ) -> float:
        """One-way queueing delay of a link in *region* at *hour*."""
        util = self.utilization(region, hour, rng, bias)
        delay = self.base_queueing_ms * util / max(1.0 - util, 1e-3)
        return float(min(delay, self.max_queueing_ms))

    def queueing_delay_ms_batch(
        self,
        region: str,
        hours: np.ndarray,
        rng: np.random.Generator | None = None,
        bias: float = 0.0,
    ) -> np.ndarray:
        """One-way queueing delay over an *hours* array (vectorised M/M/1)."""
        util = self.utilization_batch(region, hours, rng, bias)
        delay = self.base_queueing_ms * util / np.maximum(1.0 - util, 1e-3)
        return np.minimum(delay, self.max_queueing_ms)
