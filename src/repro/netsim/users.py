"""User populations behind access networks.

Measurements in the simulator originate from users, not probes: a
:class:`UserGroup` is the set of subscribers of one AS in one city — the
paper's ⟨ASN, city⟩ analysis unit.  Groups carry the behavioural knobs
that make user-initiated measurement *endogenous*: a baseline test rate
plus sensitivities that raise the odds of running a speed test when
performance is bad or the route just changed (the collider mechanism of
§3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class UserGroup:
    """Subscribers of one AS in one city.

    Attributes
    ----------
    asn, city:
        The analysis unit.
    n_users:
        Population size (scales measurement volume).
    base_rate_per_hour:
        Poisson rate of spontaneous speed tests per user-hour.
    perf_sensitivity:
        Multiplier on the test rate per 100 ms of RTT above
        *rtt_reference_ms* (bad experience prompts testing).
    change_sensitivity:
        Additive burst multiplier in the hours right after the unit's
        route changed (new-ISP-curiosity effect).
    rtt_reference_ms:
        RTT regarded as "normal" by these users.
    backhaul_city:
        City of the AS PoP the group is backhauled to (defaults to the
        group's own city; distinct for rural groups riding metro PoPs).
    """

    asn: int
    city: str
    n_users: int
    base_rate_per_hour: float = 0.002
    perf_sensitivity: float = 0.5
    change_sensitivity: float = 1.0
    rtt_reference_ms: float = 60.0
    backhaul_city: str | None = None

    def __post_init__(self) -> None:
        if self.n_users <= 0:
            raise SimulationError("n_users must be positive")
        if self.base_rate_per_hour < 0:
            raise SimulationError("base_rate_per_hour must be >= 0")
        if self.perf_sensitivity < 0 or self.change_sensitivity < 0:
            raise SimulationError("sensitivities must be >= 0")

    @property
    def unit(self) -> tuple[int, str]:
        """The ⟨ASN, city⟩ key."""
        return (self.asn, self.city)

    @property
    def unit_label(self) -> str:
        """Human-readable unit id, e.g. ``"AS64700/Polokwane"``."""
        return f"AS{self.asn}/{self.city}"

    def test_rate(
        self,
        rtt_ms: float | None,
        hours_since_route_change: float | None,
        change_window_hours: float = 24.0,
    ) -> float:
        """Expected tests per user-hour given current conditions.

        The returned rate is the endogenous-measurement intensity:

            base * (1 + perf_sensitivity * excess_rtt/100)
                 * (1 + change_sensitivity * recently_changed)
        """
        rate = self.base_rate_per_hour
        if rtt_ms is not None and rtt_ms > self.rtt_reference_ms:
            rate *= 1.0 + self.perf_sensitivity * (rtt_ms - self.rtt_reference_ms) / 100.0
        if (
            hours_since_route_change is not None
            and 0 <= hours_since_route_change < change_window_hours
        ):
            rate *= 1.0 + self.change_sensitivity
        return rate
