"""AS-level topology: autonomous systems, business relationships, links.

The simulator models the Internet at the AS level, as BGP sees it.  Each
inter-AS link carries a Gao-Rexford business relationship — customer-
provider (``c2p``) or settlement-free peering (``p2p``) — plus the
cities its two endpoints sit in (which set its propagation delay) and,
for peering established at an exchange, the IXP's name (which is what a
traceroute hop-IP match later reveals).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import SimulationError
from repro.netsim.ids import Prefix


class AsKind(Enum):
    """Coarse role of an AS in the hierarchy."""

    TIER1 = "tier1"
    TRANSIT = "transit"
    ACCESS = "access"
    CONTENT = "content"


class Relationship(Enum):
    """Business relationship of a link, from the perspective of (a, b)."""

    CUSTOMER_PROVIDER = "c2p"  # a is the customer, b the provider
    PEER_PEER = "p2p"


@dataclass(frozen=True)
class AutonomousSystem:
    """One AS.

    Attributes
    ----------
    asn:
        AS number (unique key).
    name:
        Operator label for readable output.
    kind:
        Role in the hierarchy (:class:`AsKind`).
    city:
        Home city of the AS's main PoP (keys into a
        :class:`~repro.netsim.geo.CityCatalog`).
    router_prefix:
        /24 from which this AS's router interface IPs are assigned.
    """

    asn: int
    name: str
    kind: AsKind
    city: str
    router_prefix: Prefix

    def router_ip(self, index: int = 1) -> str:
        """A stable router interface address within the AS's block."""
        return self.router_prefix.address(index)


@dataclass(frozen=True)
class Link:
    """An inter-AS adjacency.

    For ``c2p`` links, :attr:`a_asn` is the customer and :attr:`b_asn`
    the provider.  ``ixp`` names the exchange for peering sessions set
    up over an IXP fabric (None for private interconnects).
    """

    a_asn: int
    b_asn: int
    relationship: Relationship
    a_city: str
    b_city: str
    ixp: str | None = None
    congestion_bias: float = 0.0

    def __post_init__(self) -> None:
        if self.a_asn == self.b_asn:
            raise SimulationError(f"self-link on AS{self.a_asn}")

    @property
    def key(self) -> tuple[int, int]:
        """Unordered endpoint pair for lookups."""
        return (min(self.a_asn, self.b_asn), max(self.a_asn, self.b_asn))

    def other(self, asn: int) -> int:
        """The endpoint that is not *asn*."""
        if asn == self.a_asn:
            return self.b_asn
        if asn == self.b_asn:
            return self.a_asn
        raise SimulationError(f"AS{asn} is not on link {self.key}")

    def city_of(self, asn: int) -> str:
        """The city of *asn*'s end of the link."""
        if asn == self.a_asn:
            return self.a_city
        if asn == self.b_asn:
            return self.b_city
        raise SimulationError(f"AS{asn} is not on link {self.key}")


@dataclass
class Topology:
    """A mutable registry of ASes and links.

    Links are keyed by unordered endpoint pair: at most one link per AS
    pair (sufficient at AS granularity).
    """

    ases: dict[int, AutonomousSystem] = field(default_factory=dict)
    links: dict[tuple[int, int], Link] = field(default_factory=dict)

    def add_as(self, asys: AutonomousSystem) -> None:
        """Register an AS (ASN must be new)."""
        if asys.asn in self.ases:
            raise SimulationError(f"duplicate AS{asys.asn}")
        self.ases[asys.asn] = asys

    def get_as(self, asn: int) -> AutonomousSystem:
        """Look up an AS by number."""
        try:
            return self.ases[asn]
        except KeyError:
            raise SimulationError(f"unknown AS{asn}") from None

    def _add_link(self, link: Link) -> None:
        self.get_as(link.a_asn)
        self.get_as(link.b_asn)
        if link.key in self.links:
            raise SimulationError(
                f"link between AS{link.key[0]} and AS{link.key[1]} already exists"
            )
        self.links[link.key] = link

    def add_c2p(
        self,
        customer: int,
        provider: int,
        customer_city: str | None = None,
        provider_city: str | None = None,
    ) -> Link:
        """Add a customer-provider link (cities default to each AS's home)."""
        link = Link(
            a_asn=customer,
            b_asn=provider,
            relationship=Relationship.CUSTOMER_PROVIDER,
            a_city=customer_city or self.get_as(customer).city,
            b_city=provider_city or self.get_as(provider).city,
        )
        self._add_link(link)
        return link

    def add_p2p(
        self,
        a: int,
        b: int,
        a_city: str | None = None,
        b_city: str | None = None,
        ixp: str | None = None,
        congestion_bias: float = 0.0,
    ) -> Link:
        """Add a settlement-free peering link (optionally over an IXP).

        *congestion_bias* shifts the link's utilization relative to its
        region's profile (hot IXP ports get a positive bias).
        """
        link = Link(
            a_asn=a,
            b_asn=b,
            relationship=Relationship.PEER_PEER,
            a_city=a_city or self.get_as(a).city,
            b_city=b_city or self.get_as(b).city,
            ixp=ixp,
            congestion_bias=congestion_bias,
        )
        self._add_link(link)
        return link

    def remove_link(self, a: int, b: int) -> Link:
        """Remove and return the link between two ASes."""
        key = (min(a, b), max(a, b))
        try:
            return self.links.pop(key)
        except KeyError:
            raise SimulationError(f"no link between AS{a} and AS{b}") from None

    def link_between(self, a: int, b: int) -> Link | None:
        """The link between two ASes, or None."""
        return self.links.get((min(a, b), max(a, b)))

    # -- relationship-aware neighbour queries ------------------------------------

    def providers(self, asn: int) -> list[int]:
        """ASes that *asn* buys transit from, sorted."""
        self.get_as(asn)
        out = []
        for link in self.links.values():
            if link.relationship is Relationship.CUSTOMER_PROVIDER and link.a_asn == asn:
                out.append(link.b_asn)
        return sorted(out)

    def customers(self, asn: int) -> list[int]:
        """ASes that buy transit from *asn*, sorted."""
        self.get_as(asn)
        out = []
        for link in self.links.values():
            if link.relationship is Relationship.CUSTOMER_PROVIDER and link.b_asn == asn:
                out.append(link.a_asn)
        return sorted(out)

    def peers(self, asn: int) -> list[int]:
        """Settlement-free peers of *asn*, sorted."""
        self.get_as(asn)
        out = []
        for link in self.links.values():
            if link.relationship is Relationship.PEER_PEER and asn in (
                link.a_asn,
                link.b_asn,
            ):
                out.append(link.other(asn))
        return sorted(out)

    def neighbors(self, asn: int) -> list[int]:
        """All adjacent ASes, sorted."""
        self.get_as(asn)
        out = set()
        for link in self.links.values():
            if asn in (link.a_asn, link.b_asn):
                out.add(link.other(asn))
        return sorted(out)

    def by_kind(self, kind: AsKind) -> list[AutonomousSystem]:
        """All ASes of a given kind, ASN-sorted."""
        return sorted(
            (a for a in self.ases.values() if a.kind is kind), key=lambda a: a.asn
        )

    def copy(self) -> "Topology":
        """Shallow-copy the registries (AS/Link objects are immutable)."""
        return Topology(ases=dict(self.ases), links=dict(self.links))

    def __repr__(self) -> str:
        return f"Topology({len(self.ases)} ASes, {len(self.links)} links)"
