"""Chunked frame construction: the columnar fast path's append API.

Building a million-row :class:`~repro.frames.frame.Frame` row by row
(``Frame.from_records``) spends all its time in per-row Python work.
The builders here accept *chunks* — numpy arrays of any length — and
defer everything to a single ``np.concatenate`` per column at seal
time, so the per-row cost is amortised away entirely.

- :class:`ColumnBuilder` accumulates chunks for one column and unifies
  kinds across chunks with the same rules as :meth:`Column.concat`
  (numeric mixes widen to float, anything else falls back to object).
- :class:`FrameBuilder` manages one :class:`ColumnBuilder` per column
  and enforces that every chunk covers the same columns with equal
  lengths, so the sealed frame is rectangular by construction.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import ColumnMismatchError, FrameError
from repro.frames.column import (
    KIND_BOOL,
    KIND_FLOAT,
    KIND_INT,
    KIND_OBJECT,
    Column,
    _coerce,
    infer_kind,
)
from repro.frames.frame import Frame

_NUMERIC_KINDS = frozenset((KIND_INT, KIND_FLOAT, KIND_BOOL))


def _unify_kinds(a: str, b: str) -> str:
    """The kind a concatenation of an *a*-chunk and a *b*-chunk carries."""
    if a == b:
        return a
    if a in _NUMERIC_KINDS and b in _NUMERIC_KINDS:
        return KIND_FLOAT
    return KIND_OBJECT


class ColumnBuilder:
    """Accumulates value chunks for one column; concatenates once at seal.

    Parameters
    ----------
    name:
        Column name for the sealed :class:`Column`.
    kind:
        Optional declared kind.  When omitted, the kind is inferred per
        chunk and unified across chunks (int+float -> float, mixed ->
        object).  When given, every chunk is coerced to it immediately,
        so a non-conforming chunk fails at append time, not seal time.
    """

    def __init__(self, name: str, kind: str | None = None) -> None:
        self.name = name
        self._declared = kind
        self._kind: str | None = kind
        self._chunks: list[np.ndarray] = []
        self._chunk_kinds: list[str] = []

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks)

    @property
    def kind(self) -> str | None:
        """Unified kind so far (None until the first chunk, unless declared)."""
        return self._kind

    def append_chunk(self, values: Sequence[Any] | np.ndarray) -> None:
        """Append one chunk of values (coerced, never per-row Python later)."""
        self.commit_chunk(*self.prepare_chunk(values))

    def prepare_chunk(
        self, values: Sequence[Any] | np.ndarray
    ) -> tuple[np.ndarray, str]:
        """Coerce and validate one chunk without storing it.

        Everything that can fail — kind coercion, shape checks — happens
        here, so :class:`FrameBuilder` can prepare a whole row-chunk
        before committing any column of it: a bad chunk then leaves the
        builder exactly as it was instead of half-appended (which would
        silently misalign every later row).
        """
        kind = self._declared if self._declared is not None else infer_kind(values)
        try:
            chunk = _coerce(values, kind)
        except (TypeError, ValueError) as exc:
            raise FrameError(
                f"chunk for column {self.name!r} does not coerce to "
                f"declared kind {kind!r}: {exc}"
            ) from exc
        if chunk.ndim != 1:
            raise FrameError(
                f"chunk for column {self.name!r} must be 1-D, got shape {chunk.shape}"
            )
        return chunk, kind

    def commit_chunk(self, chunk: np.ndarray, kind: str) -> None:
        """Store a chunk returned by :meth:`prepare_chunk` (cannot fail)."""
        self._chunks.append(chunk)
        self._chunk_kinds.append(kind)
        self._kind = kind if self._kind is None else _unify_kinds(self._kind, kind)

    def build(self, into: np.ndarray | None = None) -> Column:
        """Seal: one concatenate (plus kind widening when chunks disagreed).

        *into*, when given, must be a 1-D float64 buffer of exactly
        ``len(self)`` elements (e.g. a shared-memory view): chunks are
        written into it sequentially and the sealed column wraps the
        buffer itself — no concatenate, no final copy, and the caller's
        block holds the column's storage.  Only float columns support
        this (the shared transport is numeric-only).
        """
        kind = self._kind if self._kind is not None else KIND_OBJECT
        if into is not None:
            if kind != KIND_FLOAT:
                raise FrameError(
                    f"column {self.name!r} has kind {kind!r}; only float "
                    "columns can seal into a caller buffer"
                )
            if into.ndim != 1 or into.dtype != np.float64 or len(into) != len(self):
                raise FrameError(
                    f"seal buffer for column {self.name!r} must be 1-D "
                    f"float64 of length {len(self)}, got "
                    f"{into.dtype} array of shape {into.shape}"
                )
            pos = 0
            for chunk, chunk_kind in zip(self._chunks, self._chunk_kinds):
                if chunk_kind != kind:
                    chunk = Column(self.name, chunk, kind=chunk_kind).astype(kind).values
                into[pos : pos + len(chunk)] = chunk
                pos += len(chunk)
            return Column(self.name, into, kind=kind)
        if not self._chunks:
            return Column(self.name, np.empty(0, dtype=object), kind=kind)
        if len(self._chunks) == 1 and self._chunk_kinds[0] == kind:
            return Column(self.name, self._chunks[0], kind=kind)
        parts = [
            chunk
            if chunk_kind == kind
            else Column(self.name, chunk, kind=chunk_kind).astype(kind).values
            for chunk, chunk_kind in zip(self._chunks, self._chunk_kinds)
        ]
        return Column(self.name, np.concatenate(parts), kind=kind)


class FrameBuilder:
    """Accumulates equal-length column chunks; seals into a :class:`Frame`.

    Parameters
    ----------
    columns:
        Column names in display order.  When omitted, the first chunk's
        key order fixes the schema; later chunks must match it exactly.
    kinds:
        Optional ``{name: kind}`` declarations forwarded to the per-column
        builders.
    """

    def __init__(
        self,
        columns: Sequence[str] | None = None,
        kinds: Mapping[str, str] | None = None,
    ) -> None:
        self._kinds = dict(kinds or {})
        self._builders: dict[str, ColumnBuilder] | None = None
        self._order: list[str] = []
        self._rows = 0
        if columns is not None:
            self._init_schema(list(columns))

    def _init_schema(self, names: list[str]) -> None:
        if len(set(names)) != len(names):
            raise FrameError(f"duplicate column names in {names}")
        self._order = names
        self._builders = {
            name: ColumnBuilder(name, self._kinds.get(name)) for name in names
        }

    @property
    def num_rows(self) -> int:
        """Rows appended so far."""
        return self._rows

    @property
    def column_names(self) -> list[str]:
        """Schema (empty until declared or first chunk)."""
        return list(self._order)

    def append_chunk(self, chunk: Mapping[str, Sequence[Any] | np.ndarray]) -> None:
        """Append one rectangular chunk: every column, all equal lengths."""
        if self._builders is None:
            self._init_schema(list(chunk.keys()))
        assert self._builders is not None
        missing = [n for n in self._order if n not in chunk]
        extra = [n for n in chunk if n not in self._builders]
        if missing or extra:
            raise FrameError(
                f"chunk columns do not match schema {self._order}: "
                f"missing {missing}, unexpected {extra}"
            )
        lengths = {name: len(chunk[name]) for name in self._order}
        distinct = set(lengths.values())
        if len(distinct) > 1:
            raise ColumnMismatchError(
                f"chunk columns have mismatched lengths {lengths}"
            )
        # Two-phase append: prepare (which is where coercion can fail)
        # every column first, then commit all of them.  A chunk that
        # dies mid-coercion must not leave some columns longer than
        # others — that misalignment would only surface rows later.
        staged = [
            (name, self._builders[name].prepare_chunk(chunk[name]))
            for name in self._order
        ]
        for name, (values, kind) in staged:
            self._builders[name].commit_chunk(values, kind)
        self._rows += distinct.pop() if distinct else 0

    def build(self, alloc: "Callable[[str, int], np.ndarray | None] | None" = None) -> Frame:
        """Seal every column (one concatenate each) and return the frame.

        *alloc*, when given, is called as ``alloc(name, length)`` for
        every **float** column; returning a float64 buffer seals that
        column directly into it (see :meth:`ColumnBuilder.build`),
        returning ``None`` keeps the normal concatenate path.  This is
        how a caller lands a builder's numeric columns in
        shared-memory without an extra copy.
        """
        if self._builders is None:
            return Frame()
        columns = []
        for name in self._order:
            builder = self._builders[name]
            into = None
            if alloc is not None and builder.kind == KIND_FLOAT:
                into = alloc(name, len(builder))
            columns.append(builder.build(into=into))
        return Frame(columns)
