"""CSV reading and writing for frames.

The format is plain RFC-4180-ish CSV via the stdlib ``csv`` module.  On
read, columns are type-inferred: values parse as int, then float, then
bool literals (``true``/``false``), falling back to strings; empty cells
are missing.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any

import numpy as np

from repro.frames.frame import Frame


def _parse_cell(text: str) -> Any:
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    low = text.lower()
    if low == "true":
        return True
    if low == "false":
        return False
    return text


def read_csv(path: str | Path) -> Frame:
    """Read a CSV file with a header row into a frame."""
    with open(path, newline="") as f:
        return read_csv_text(f.read())


def read_csv_text(text: str) -> Frame:
    """Parse CSV content (header row required) into a frame."""
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        return Frame()
    header = rows[0]
    data: dict[str, list[Any]] = {name: [] for name in header}
    for row in rows[1:]:
        if not row:
            continue
        for name, cell in zip(header, row):
            data[name].append(_parse_cell(cell))
        for name in header[len(row):]:
            data[name].append(None)
    return Frame.from_dict(data)


def _format_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, (float, np.floating)):
        if np.isnan(value):
            return ""
        return repr(float(value))
    if isinstance(value, (bool, np.bool_)):
        return "true" if value else "false"
    return str(value)


def write_csv(frame: Frame, path: str | Path) -> None:
    """Write *frame* to a CSV file with a header row."""
    with open(path, "w", newline="") as f:
        f.write(to_csv_text(frame))


def to_csv_text(frame: Frame) -> str:
    """Render *frame* as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(frame.column_names)
    for row in frame.iter_rows():
        writer.writerow([_format_cell(row[name]) for name in frame.column_names])
    return buf.getvalue()
