"""CSV reading and writing for frames.

The format is plain RFC-4180-ish CSV via the stdlib ``csv`` module.  On
read, columns are type-inferred: values parse as int, then float, then
bool literals (``true``/``false``), falling back to strings; empty cells
are missing.  Inference and parsing run column-wise — one bulk numpy
cast per homogeneous column, with a per-cell fallback only for mixed
columns — and writing formats each column as one vectorized cast, so
the ``simulate → import`` round-trip scales with columns, not cells.

Rows wider than the header are an error (their extra cells would
otherwise vanish silently); underscore number literals like ``1_000``,
which Python's ``int()`` accepts but no CSV writer emits, stay strings.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Callable
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import FrameError
from repro.frames.column import (
    KIND_BOOL,
    KIND_FLOAT,
    KIND_INT,
    KIND_OBJECT,
    Column,
)
from repro.frames.frame import Frame


def _parse_cell(text: str | None) -> Any:
    if text is None or text == "":
        return None
    if "_" not in text:
        try:
            return int(text)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            pass
    low = text.lower()
    if low == "true":
        return True
    if low == "false":
        return False
    return text


def _parse_column(
    name: str,
    raw: list[str | None],
    alloc: Callable[[str, int], np.ndarray] | None = None,
) -> Column:
    """Bulk-parse one column of raw CSV cells.

    Missing cells are ``None``/``""``.  Homogeneous numeric and bool
    columns are converted with one numpy cast; anything mixed falls back
    to the per-cell parser (object kind, inferred like the historical
    row-wise reader).  *alloc* — the
    :meth:`~repro.pipeline.shm.SharedFrameArena.column_alloc` hook —
    provides the float column's destination buffer, so an imported
    frame's numeric storage can land directly in shared memory.
    """
    n = len(raw)
    missing = np.array([c is None or c == "" for c in raw], dtype=bool)
    present = [raw[i] for i in np.flatnonzero(~missing)]
    if not present:
        return Column(name, [None] * n)
    # numpy's string-to-number casts accept underscore literals ("1_000")
    # that no CSV writer emits; any underscore disqualifies the bulk
    # numeric stages (the per-cell parser rejects them too).
    if not any("_" in c for c in present):
        strings = np.asarray(present)
        if not missing.any():
            try:
                return Column(name, strings.astype(np.int64), kind=KIND_INT)
            except ValueError:
                pass
        try:
            parsed = strings.astype(np.float64)
        except ValueError:
            parsed = None
        if parsed is not None:
            values = alloc(name, n) if alloc is not None else np.empty(n)
            values.fill(np.nan)
            values[~missing] = parsed
            return Column(name, values, kind=KIND_FLOAT)
    lowered = [c.lower() for c in present]
    if all(c in ("true", "false") for c in lowered):
        bools = np.array([c == "true" for c in lowered], dtype=bool)
        if not missing.any():
            return Column(name, bools, kind=KIND_BOOL)
        values_obj: list[Any] = [None] * n
        for i, b in zip(np.flatnonzero(~missing), bools):
            values_obj[i] = bool(b)
        return Column(name, values_obj, kind=KIND_OBJECT)
    return Column(name, [_parse_cell(c) for c in raw])


def read_csv(
    path: str | Path,
    alloc: Callable[[str, int], np.ndarray] | None = None,
) -> Frame:
    """Read a CSV file with a header row into a frame."""
    with open(path, newline="") as f:
        return read_csv_text(f.read(), alloc=alloc)


def read_csv_text(
    text: str,
    alloc: Callable[[str, int], np.ndarray] | None = None,
) -> Frame:
    """Parse CSV content (header row required) into a frame.

    Rows with fewer cells than the header are padded with missing
    values; rows with *more* cells raise :class:`FrameError` (the
    surplus cells have no column to land in).  *alloc* routes float
    columns into caller-provided buffers (shared-memory arenas); see
    :func:`_parse_column`.
    """
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    if not rows:
        return Frame()
    header = rows[0]
    width = len(header)
    raw: list[list[str | None]] = []
    for line_no, row in enumerate(rows[1:], start=2):
        if not row:
            continue
        if len(row) > width:
            raise FrameError(
                f"CSV row {line_no} has {len(row)} cells but the header "
                f"has {width} columns"
            )
        if len(row) < width:
            row = row + [None] * (width - len(row))
        raw.append(row)
    cols = [
        _parse_column(name, [r[j] for r in raw], alloc=alloc)
        for j, name in enumerate(header)
    ]
    return Frame(cols)


def _format_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, (float, np.floating)):
        if np.isnan(value):
            return ""
        return repr(float(value))
    if isinstance(value, (bool, np.bool_)):
        return "true" if value else "false"
    return str(value)


def _format_column(col: Column) -> Any:
    """One column of CSV cell strings, cast in bulk where possible.

    ``float64 -> str`` via numpy's unicode cast is digit-for-digit
    identical to ``repr(float(v))`` (shortest round-trip repr), so float
    columns need no Python-level loop.
    """
    if col.kind == KIND_FLOAT:
        out = col.values.astype("U32")
        nan_mask = np.isnan(col.values)
        if nan_mask.any():
            out[nan_mask] = ""
        return out
    if col.kind == KIND_INT:
        return col.values.astype("U21")
    if col.kind == KIND_BOOL:
        return np.where(col.values, "true", "false")
    return [_format_cell(v) for v in col.values]


def write_csv(frame: Frame, path: str | Path) -> None:
    """Write *frame* to a CSV file with a header row."""
    with open(path, "w", newline="") as f:
        f.write(to_csv_text(frame))


def to_csv_text(frame: Frame) -> str:
    """Render *frame* as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(frame.column_names)
    columns = [_format_column(frame.column(n)) for n in frame.column_names]
    if columns:
        writer.writerows(zip(*columns))
    return buf.getvalue()
