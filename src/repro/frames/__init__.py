"""A minimal columnar-frame substrate (the library's pandas stand-in).

Public API:

- :class:`Column` — a named, typed 1-D array.
- :class:`Frame` — an ordered collection of equal-length columns with
  relational verbs (filter, sort, select, derive, join, concat).
- :class:`ColumnBuilder` / :class:`FrameBuilder` — chunked append-only
  construction (the columnar fast path; one concatenate at seal time).
- :func:`group_by` / :class:`GroupedFrame` — split-apply-combine.
- :func:`pivot` — long-to-wide reshaping (used to build RTT panels).
- :func:`read_csv` / :func:`write_csv` — CSV I/O.
"""

from repro.frames.builder import ColumnBuilder, FrameBuilder
from repro.frames.column import (
    KIND_BOOL,
    KIND_FLOAT,
    KIND_INT,
    KIND_OBJECT,
    Column,
    infer_kind,
)
from repro.frames.frame import Frame
from repro.frames.groupby import GroupedFrame, group_by, pivot, pivot_grid
from repro.frames.io import read_csv, read_csv_text, to_csv_text, write_csv

__all__ = [
    "Column",
    "ColumnBuilder",
    "Frame",
    "FrameBuilder",
    "GroupedFrame",
    "KIND_BOOL",
    "KIND_FLOAT",
    "KIND_INT",
    "KIND_OBJECT",
    "group_by",
    "infer_kind",
    "pivot",
    "pivot_grid",
    "read_csv",
    "read_csv_text",
    "to_csv_text",
    "write_csv",
]
