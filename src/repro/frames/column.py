"""Typed columns backing :class:`repro.frames.Frame`.

A column is a named, homogeneous 1-D array.  Numeric columns are stored as
``numpy.float64`` (with NaN as the missing marker), integer columns as
``numpy.int64``, boolean columns as ``numpy.bool_``, and everything else as
a numpy object array of Python values (with ``None`` as the missing
marker).  The class is intentionally small: it exists so that
:class:`~repro.frames.frame.Frame` can reason about dtypes and missing
values uniformly without pulling in pandas.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from repro.errors import ColumnMismatchError, FrameError

#: Canonical dtype kinds a column may carry.
KIND_FLOAT = "float"
KIND_INT = "int"
KIND_BOOL = "bool"
KIND_OBJECT = "object"

_VALID_KINDS = (KIND_FLOAT, KIND_INT, KIND_BOOL, KIND_OBJECT)

#: Stand-in dict key for NaN when remapping float uniques (NaN != NaN, but
#: factorize gives every NaN one shared code, so the table needs one key).
_NAN_KEY = object()

#: Elementwise ``v is None`` over object arrays without a Python-level loop
#: in the caller (frompyfunc runs the lambda in C's iteration machinery).
_IS_NONE = np.frompyfunc(lambda v: v is None, 1, 1)


def infer_kind(values: Sequence[Any] | np.ndarray) -> str:
    """Infer the column kind for a sequence of raw Python/numpy values.

    Floats (or the presence of ``None``/NaN among numbers) infer ``float``;
    pure ints infer ``int``; pure bools infer ``bool``; anything else is
    ``object``.  An empty sequence infers ``object``.
    """
    if isinstance(values, np.ndarray):
        if values.dtype.kind == "f":
            return KIND_FLOAT
        if values.dtype.kind in "iu":
            return KIND_INT
        if values.dtype.kind == "b":
            return KIND_BOOL
        return KIND_OBJECT

    saw_float = False
    saw_int = False
    saw_bool = False
    saw_none = False
    for v in values:
        if v is None:
            saw_none = True
        elif isinstance(v, bool) or isinstance(v, np.bool_):
            saw_bool = True
        elif isinstance(v, (int, np.integer)):
            saw_int = True
        elif isinstance(v, (float, np.floating)):
            saw_float = True
        else:
            return KIND_OBJECT
    if saw_bool and not (saw_float or saw_int):
        return KIND_OBJECT if saw_none else KIND_BOOL
    if saw_float or (saw_none and saw_int):
        return KIND_FLOAT
    if saw_int:
        return KIND_INT
    return KIND_OBJECT


def dense_rank(
    values: np.ndarray, nan_equal: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """First-appearance dense codes for a non-empty numeric array.

    Returns ``(codes, first_rows)``: int64 codes in ``[0, n_groups)``
    numbered by each distinct value's first appearance, and the row index
    of that first appearance per group (so ``values[first_rows]`` lists
    the distinct values in first-appearance order).  Built on one stable
    argsort — numpy radix-sorts integer and boolean arrays, which is far
    cheaper than :func:`numpy.unique`'s comparison sort when the value
    range is modest.  With *nan_equal* every NaN joins one shared group.
    """
    n = len(values)
    order = np.argsort(values, kind="stable")
    sv = values[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    neq = sv[1:] != sv[:-1]
    if nan_equal:
        neq &= ~(np.isnan(sv[1:]) & np.isnan(sv[:-1]))
    boundary[1:] = neq
    starts = np.flatnonzero(boundary)
    first_idx = order[starts]  # stable sort: the min original row per group
    appearance = np.argsort(first_idx, kind="stable")
    n_groups = len(starts)
    rank = np.empty(n_groups, dtype=np.int64)
    rank[appearance] = np.arange(n_groups, dtype=np.int64)
    sorted_codes = rank[np.cumsum(boundary) - 1]
    codes = np.empty(n, dtype=np.int64)
    codes[order] = sorted_codes
    return codes, first_idx[appearance]


def _coerce(values: Sequence[Any] | np.ndarray, kind: str) -> np.ndarray:
    """Coerce raw values into the canonical numpy array for *kind*."""
    if kind == KIND_FLOAT:
        if isinstance(values, np.ndarray) and values.dtype == np.float64:
            return values
        # numpy's cast maps None -> NaN and parses numeric strings, the
        # same semantics as the historical per-element float() loop.
        try:
            out = np.asarray(values, dtype=np.float64)
        except (TypeError, ValueError):
            out = None
        if out is not None and out.ndim == 1:
            return out
        result = np.empty(len(values), dtype=np.float64)
        for i, v in enumerate(values):
            result[i] = np.nan if v is None else float(v)
        return result
    if kind == KIND_INT:
        return np.asarray(values, dtype=np.int64)
    if kind == KIND_BOOL:
        return np.asarray(values, dtype=np.bool_)
    if isinstance(values, np.ndarray) and values.dtype == object:
        return values
    arr = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        arr[i] = v
    return arr


class Column:
    """A named, typed, immutable-by-convention 1-D array.

    Parameters
    ----------
    name:
        Column name; must be a non-empty string.
    values:
        Raw values; coerced according to *kind*.
    kind:
        One of ``float``, ``int``, ``bool``, ``object``.  Inferred from the
        values when omitted.
    """

    __slots__ = ("name", "kind", "values", "_factorized")

    def __init__(
        self,
        name: str,
        values: Sequence[Any] | np.ndarray,
        kind: str | None = None,
    ) -> None:
        if not isinstance(name, str) or not name:
            raise FrameError(f"column name must be a non-empty string, got {name!r}")
        if kind is None:
            kind = infer_kind(values)
        if kind not in _VALID_KINDS:
            raise FrameError(f"unknown column kind {kind!r}")
        self.name = name
        self.kind = kind
        self.values = _coerce(values, kind)
        self._factorized: tuple[np.ndarray, list[Any]] | None = None
        if self.values.ndim != 1:
            raise FrameError(f"column {name!r} must be 1-D, got shape {self.values.shape}")

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterable[Any]:
        return iter(self.values)

    def __getitem__(self, idx: Any) -> Any:
        return self.values[idx]

    def __repr__(self) -> str:
        return f"Column({self.name!r}, kind={self.kind}, n={len(self)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.name != other.name or self.kind != other.kind:
            return False
        if len(self) != len(other):
            return False
        if self.kind == KIND_FLOAT:
            return bool(
                np.array_equal(self.values, other.values, equal_nan=True)
            )
        return bool(np.array_equal(self.values, other.values))

    def __hash__(self) -> int:  # columns are not hashable (mutable array)
        raise TypeError("Column is not hashable")

    # -- missing values -----------------------------------------------------

    def is_missing(self) -> np.ndarray:
        """Return a boolean mask that is True where the value is missing."""
        if self.kind == KIND_FLOAT:
            return np.isnan(self.values)
        if self.kind == KIND_OBJECT:
            return _IS_NONE(self.values).astype(bool, copy=False)
        return np.zeros(len(self), dtype=bool)

    def count_missing(self) -> int:
        """Number of missing entries."""
        return int(self.is_missing().sum())

    # -- transforms ----------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column with rows reordered/selected by *indices*."""
        return Column(self.name, self.values[indices], kind=self.kind)

    def mask(self, keep: np.ndarray) -> "Column":
        """Return a new column keeping rows where *keep* is True."""
        keep = np.asarray(keep, dtype=bool)
        if len(keep) != len(self):
            raise ColumnMismatchError(
                f"mask length {len(keep)} != column length {len(self)}"
            )
        return Column(self.name, self.values[keep], kind=self.kind)

    def rename(self, name: str) -> "Column":
        """Return the same data under a different name."""
        return Column(name, self.values, kind=self.kind)

    def astype(self, kind: str) -> "Column":
        """Return a copy converted to another kind.

        Conversions go through Python scalars, so ``object -> float`` works
        for columns of numeric strings as well as numbers.
        """
        if kind == self.kind:
            return Column(self.name, self.values.copy(), kind=kind)
        if kind == KIND_FLOAT:
            vals = [None if m else float(v) for v, m in zip(self.values, self.is_missing())]
            return Column(self.name, vals, kind=KIND_FLOAT)
        if kind == KIND_INT:
            if self.count_missing():
                raise FrameError(
                    f"cannot convert column {self.name!r} with missing values to int"
                )
            return Column(self.name, [int(v) for v in self.values], kind=KIND_INT)
        if kind == KIND_BOOL:
            if self.count_missing():
                raise FrameError(
                    f"cannot convert column {self.name!r} with missing values to bool"
                )
            return Column(self.name, [bool(v) for v in self.values], kind=KIND_BOOL)
        if kind == KIND_OBJECT:
            return Column(self.name, list(self.values), kind=KIND_OBJECT)
        raise FrameError(f"unknown column kind {kind!r}")

    def append(self, other: "Column") -> "Column":
        """Concatenate like :meth:`concat`, extending the factorize memo.

        When this column has been factorized, the result's memo is built
        incrementally: only *other* is factorized and its distinct values
        are remapped through the existing code table, so a streaming
        append re-keys one batch instead of re-scanning the whole
        history.  Falls back to a plain :meth:`concat` (memo rebuilt on
        demand) when the kinds differ and must unify.
        """
        merged = self.concat(other)
        memo = self._factorized
        if memo is None or merged.kind != self.kind or other.kind != self.kind:
            return merged
        codes, uniques = memo
        if not len(other):
            merged._memoize(codes, list(uniques))
            return merged
        new_codes, new_uniques = other.factorize()

        nan_key = self.kind == KIND_FLOAT

        def _key(v: Any) -> Any:
            if nan_key and isinstance(v, (float, np.floating)) and np.isnan(v):
                return _NAN_KEY
            return v

        table = {_key(v): i for i, v in enumerate(uniques)}
        grown = list(uniques)
        remap = np.empty(len(new_uniques), dtype=np.int64)
        for i, v in enumerate(new_uniques):
            key = _key(v)
            code = table.get(key)
            if code is None:
                code = table[key] = len(grown)
                grown.append(v)
            remap[i] = code
        merged._memoize(np.concatenate([codes, remap[new_codes]]), grown)
        return merged

    def concat(self, other: "Column") -> "Column":
        """Concatenate two columns of the same name, unifying kinds."""
        if other.name != self.name:
            raise ColumnMismatchError(
                f"cannot concat column {other.name!r} onto {self.name!r}"
            )
        if self.kind == other.kind:
            return Column(
                self.name, np.concatenate([self.values, other.values]), kind=self.kind
            )
        # Unify: int+float -> float, anything else -> object.
        numeric = {KIND_INT, KIND_FLOAT, KIND_BOOL}
        if self.kind in numeric and other.kind in numeric:
            a = self.astype(KIND_FLOAT)
            b = other.astype(KIND_FLOAT)
            return Column(self.name, np.concatenate([a.values, b.values]), kind=KIND_FLOAT)
        a = self.astype(KIND_OBJECT)
        b = other.astype(KIND_OBJECT)
        return Column(self.name, np.concatenate([a.values, b.values]), kind=KIND_OBJECT)

    def to_list(self) -> list[Any]:
        """Return the values as a plain Python list (NaN/None preserved)."""
        return list(self.values)

    def factorize(self) -> tuple[np.ndarray, list[Any]]:
        """Map values to dense integer codes plus their distinct values.

        Returns ``(codes, uniques)`` where ``codes`` is an int64 array with
        ``uniques[codes[i]] == values[i]`` and ``uniques`` lists the
        distinct values in first-appearance order — the same order
        :meth:`unique` and the row-wise grouping loop produce.  Numeric
        columns use one stable argsort (radix sort for ints and bools);
        object columns hash one value per constant run.  For float columns every
        NaN shares one code.  The result is memoised on the column — the
        pipeline factorizes the same key columns repeatedly (treatment
        scan, panel build, joins) and the values array is immutable by
        convention.
        """
        if self._factorized is not None:
            codes, uniques = self._factorized
            return codes, list(uniques)
        values = self.values
        n = len(values)
        if n == 0:
            return np.empty(0, dtype=np.int64), []
        if self.kind != KIND_OBJECT:
            codes, first_rows = dense_rank(values, nan_equal=self.kind == KIND_FLOAT)
            uniques = list(values[first_rows])
        else:
            # Hash one value per *run*, not per row: columns built chunk by
            # chunk (the measurement generator, CSV import) carry long
            # constant runs, and numpy's elementwise object comparison
            # short-circuits on identity, so the boundary scan is cheap.
            # Worst case (no runs) this is the plain hash pass plus one
            # C-level comparison sweep.
            boundary = np.empty(n, dtype=bool)
            boundary[0] = True
            boundary[1:] = values[1:] != values[:-1]
            starts = np.flatnonzero(boundary)
            table: dict[Any, int] = {}
            run_codes = np.fromiter(
                (table.setdefault(v, len(table)) for v in values[starts]),
                dtype=np.int64,
                count=len(starts),
            )
            codes = np.repeat(run_codes, np.diff(np.append(starts, n)))
            uniques = list(table)
        self._memoize(codes, uniques)
        return codes, list(uniques)

    def _memoize(self, codes: np.ndarray, uniques: list[Any]) -> None:
        """Cache factorize output and freeze the backing array.

        A later in-place mutation of ``values`` would silently
        desynchronise the cached codes, so once codes exist the array
        must refuse writes — callers that need to mutate must build a
        new column (or go through :meth:`append`, which extends the
        memo instead).
        """
        self._factorized = (codes, uniques)
        try:
            self.values.flags.writeable = False
        except ValueError:
            pass  # e.g. a read-only or foreign-buffer view; already safe

    def unique(self) -> list[Any]:
        """Distinct values in first-appearance order (missing included once)."""
        seen: set[Any] = set()
        out: list[Any] = []
        saw_nan = False
        for v in self.values:
            if isinstance(v, float) and np.isnan(v):
                if not saw_nan:
                    saw_nan = True
                    out.append(v)
                continue
            if v not in seen:
                seen.add(v)
                out.append(v)
        return out
