"""A small columnar frame: the library's tabular workhorse.

:class:`Frame` holds an ordered set of equal-length :class:`Column` objects
and supports the handful of relational verbs the analysis pipeline needs —
filter, sort, select, derive, group-by, and join.  It deliberately favours
explicitness over pandas-style magic: row predicates are plain callables or
boolean masks, and every transform returns a new frame.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import ColumnMismatchError, FrameError
from repro.frames.column import (
    KIND_BOOL,
    KIND_FLOAT,
    KIND_INT,
    KIND_OBJECT,
    Column,
    dense_rank,
)


class Frame:
    """An immutable-by-convention columnar table.

    Parameters
    ----------
    columns:
        Columns in display order.  All must have the same length and
        distinct names.
    """

    __slots__ = ("_columns", "_order")

    def __init__(self, columns: Sequence[Column] = ()) -> None:
        self._columns: dict[str, Column] = {}
        self._order: list[str] = []
        n = None
        for col in columns:
            if col.name in self._columns:
                raise FrameError(f"duplicate column name {col.name!r}")
            if n is None:
                n = len(col)
            elif len(col) != n:
                raise ColumnMismatchError(
                    f"column {col.name!r} has length {len(col)}, expected {n}"
                )
            self._columns[col.name] = col
            self._order.append(col.name)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[Any] | np.ndarray]) -> "Frame":
        """Build a frame from ``{name: values}`` (ordered as given)."""
        return cls([Column(name, values) for name, values in data.items()])

    @classmethod
    def from_records(
        cls, records: Iterable[Mapping[str, Any]], columns: Sequence[str] | None = None
    ) -> "Frame":
        """Build a frame from an iterable of row dicts.

        Column order follows *columns* when given, otherwise the key order
        of the first record.  Keys missing from a record become missing
        values.
        """
        rows = list(records)
        if columns is None:
            if not rows:
                return cls()
            columns = list(rows[0].keys())
        data: dict[str, list[Any]] = {c: [] for c in columns}
        for row in rows:
            for c in columns:
                data[c].append(row.get(c))
        return cls.from_dict(data)

    # -- basic introspection ----------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Number of rows (0 for an empty frame)."""
        if not self._order:
            return 0
        return len(self._columns[self._order[0]])

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._order)

    @property
    def column_names(self) -> list[str]:
        """Column names in display order."""
        return list(self._order)

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        """Return the raw value array of column *name*."""
        return self.column(name).values

    def column(self, name: str) -> Column:
        """Return the :class:`Column` object named *name*."""
        try:
            return self._columns[name]
        except KeyError:
            raise FrameError(
                f"no column {name!r}; available: {self._order}"
            ) from None

    def row(self, index: int) -> dict[str, Any]:
        """Return row *index* as a dict (supports negative indices)."""
        n = self.num_rows
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise FrameError(f"row index {index} out of range for {n} rows")
        return {name: self._columns[name].values[index] for name in self._order}

    def iter_rows(self) -> Iterable[dict[str, Any]]:
        """Yield each row as a dict.  Convenient, not fast."""
        for i in range(self.num_rows):
            yield self.row(i)

    def to_dict(self) -> dict[str, list[Any]]:
        """Return ``{name: list-of-values}`` preserving column order."""
        return {name: self._columns[name].to_list() for name in self._order}

    def __repr__(self) -> str:
        return f"Frame({self.num_rows} rows x {self.num_columns} cols: {self._order})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        if self._order != other._order:
            return False
        return all(self._columns[n] == other._columns[n] for n in self._order)

    def __hash__(self) -> int:
        raise TypeError("Frame is not hashable")

    def head(self, n: int = 5) -> "Frame":
        """Return the first *n* rows."""
        idx = np.arange(min(n, self.num_rows))
        return self.take(idx)

    def to_text(self, max_rows: int = 20, float_fmt: str = "{:.4g}") -> str:
        """Render an aligned plain-text table (for examples and logs)."""
        names = self._order
        if not names:
            return "(empty frame)"
        shown = min(self.num_rows, max_rows)

        def fmt(v: Any) -> str:
            if v is None:
                return ""
            if isinstance(v, (float, np.floating)):
                return "" if np.isnan(v) else float_fmt.format(float(v))
            return str(v)

        cells = [[fmt(self._columns[n].values[i]) for n in names] for i in range(shown)]
        widths = [
            max(len(n), *(len(r[j]) for r in cells)) if cells else len(n)
            for j, n in enumerate(names)
        ]
        lines = ["  ".join(n.ljust(w) for n, w in zip(names, widths))]
        lines.append("  ".join("-" * w for w in widths))
        for r in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        if shown < self.num_rows:
            lines.append(f"... ({self.num_rows - shown} more rows)")
        return "\n".join(lines)

    # -- column-level transforms --------------------------------------------------

    def select(self, names: Sequence[str]) -> "Frame":
        """Return a frame with only *names*, in the given order."""
        return Frame([self.column(n) for n in names])

    def drop(self, names: Sequence[str] | str) -> "Frame":
        """Return a frame without the given column(s)."""
        if isinstance(names, str):
            names = [names]
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise FrameError(f"cannot drop unknown columns {missing}")
        keep = [n for n in self._order if n not in set(names)]
        return self.select(keep)

    def rename(self, mapping: Mapping[str, str]) -> "Frame":
        """Return a frame with columns renamed per *mapping*."""
        for old in mapping:
            if old not in self._columns:
                raise FrameError(f"cannot rename unknown column {old!r}")
        cols = [
            self._columns[n].rename(mapping.get(n, n)) for n in self._order
        ]
        return Frame(cols)

    def with_column(self, name: str, values: Sequence[Any] | np.ndarray) -> "Frame":
        """Return a frame with column *name* added or replaced."""
        col = Column(name, values)
        if self._order and len(col) != self.num_rows:
            raise ColumnMismatchError(
                f"new column {name!r} has length {len(col)}, expected {self.num_rows}"
            )
        cols = [self._columns[n] for n in self._order if n != name]
        cols.append(col)
        return Frame(cols)

    def derive(self, name: str, fn: Callable[[dict[str, Any]], Any]) -> "Frame":
        """Return a frame with a new column computed per-row by *fn*."""
        values = [fn(row) for row in self.iter_rows()]
        return self.with_column(name, values)

    # -- row-level transforms ------------------------------------------------------

    def take(self, indices: np.ndarray | Sequence[int]) -> "Frame":
        """Return rows selected/reordered by integer *indices*."""
        idx = np.asarray(indices, dtype=np.int64)
        return Frame([self._columns[n].take(idx) for n in self._order])

    def filter(
        self, predicate: Callable[[dict[str, Any]], bool] | np.ndarray
    ) -> "Frame":
        """Return rows matching a boolean mask or per-row predicate."""
        if callable(predicate):
            mask = np.array(
                [bool(predicate(row)) for row in self.iter_rows()], dtype=bool
            )
        else:
            mask = np.asarray(predicate, dtype=bool)
            if len(mask) != self.num_rows:
                raise ColumnMismatchError(
                    f"mask length {len(mask)} != row count {self.num_rows}"
                )
        return Frame([self._columns[n].mask(mask) for n in self._order])

    def where_equal(self, **conditions: Any) -> "Frame":
        """Return rows where each named column equals the given value."""
        mask = np.ones(self.num_rows, dtype=bool)
        for name, value in conditions.items():
            col = self.column(name)
            mask &= _equals_mask(col, value, self.num_rows)
        return self.filter(mask)

    def drop_missing(self, names: Sequence[str] | None = None) -> "Frame":
        """Drop rows with a missing value in any of *names* (default: all)."""
        names = list(names) if names is not None else self._order
        mask = np.ones(self.num_rows, dtype=bool)
        for n in names:
            mask &= ~self.column(n).is_missing()
        return self.filter(mask)

    def sort_by(self, names: Sequence[str] | str, descending: bool = False) -> "Frame":
        """Return rows sorted by the given column(s), stably.

        Stability holds in both directions: rows with equal keys keep
        their original relative order.  (Descending is implemented by
        inverting the keys, not by reversing the sorted order — the
        latter would reverse equal-key runs too.)  Missing float values
        sort last either way.
        """
        if isinstance(names, str):
            names = [names]
        if not names:
            return self
        # numpy.lexsort sorts by the last key first; apply keys in reverse.
        keys = []
        for n in reversed(names):
            col = self.column(n)
            if col.kind == KIND_OBJECT:
                vals = np.array([str(v) for v in col.values])
                if descending:
                    # Strings cannot be negated; rank them and negate the rank.
                    _, inverse = np.unique(vals, return_inverse=True)
                    vals = -inverse.astype(np.int64, copy=False)
            elif descending:
                if col.kind == KIND_FLOAT:
                    vals = -col.values  # NaN stays NaN and still sorts last
                elif col.kind == KIND_BOOL:
                    vals = np.logical_not(col.values)
                else:
                    # Negating int64 overflows on INT64_MIN; negate ranks.
                    _, inverse = np.unique(col.values, return_inverse=True)
                    vals = -inverse.astype(np.int64, copy=False)
            else:
                vals = col.values
            keys.append(vals)
        order = np.lexsort(keys)
        return self.take(order)

    def concat(self, other: "Frame") -> "Frame":
        """Append *other*'s rows.  Column sets must match (order-insensitive)."""
        if set(self._order) != set(other._order):
            raise ColumnMismatchError(
                f"cannot concat frames with columns {self._order} and {other._order}"
            )
        if not self._order:
            return other
        return Frame(
            [self._columns[n].concat(other._columns[n]) for n in self._order]
        )

    def append_frame(self, other: "Frame") -> "Frame":
        """Append *other*'s rows, extending each column's factorize memo.

        Semantically identical to :meth:`concat`; the difference is
        incremental cost.  Every column already factorized here keeps
        its codes and only re-keys *other*'s rows
        (:meth:`Column.append`), which is what lets the streaming
        ingestion path accumulate a measurement history in time
        proportional to the batch, not the history.
        """
        if not self._order:
            return other
        if set(self._order) != set(other._order):
            raise ColumnMismatchError(
                f"cannot append frames with columns {self._order} and {other._order}"
            )
        return Frame(
            [self._columns[n].append(other._columns[n]) for n in self._order]
        )

    # -- joins -------------------------------------------------------------------

    def join(
        self,
        other: "Frame",
        on: Sequence[str] | str,
        how: str = "inner",
        suffix: str = "_right",
    ) -> "Frame":
        """Hash join with *other* on the given key column(s).

        Supports ``inner`` and ``left`` joins.  Non-key columns of *other*
        that collide with a column of *self* are renamed with *suffix*.
        """
        if isinstance(on, str):
            on = [on]
        if how not in ("inner", "left"):
            raise FrameError(f"unsupported join type {how!r}")
        for k in on:
            self.column(k)
            other.column(k)

        n_left = self.num_rows
        n_right = other.num_rows
        # Factorize each key over both sides at once so equal keys share a
        # code (Column.concat unifies int/float the way tuple == would).
        if on:
            parts = []
            for k in on:
                both = self.column(k).concat(other.column(k))
                codes, uniques = both.factorize()
                parts.append((codes, max(len(uniques), 1)))
            combined, _ = _combine_codes(parts)
        else:
            combined = np.zeros(n_left + n_right, dtype=np.int64)
        left_codes = combined[:n_left]
        right_codes = combined[n_left:]

        # Sort the right side by key code; each left row's matches are then
        # one contiguous slice found by binary search.
        right_order = np.argsort(right_codes, kind="stable")
        right_sorted = right_codes[right_order]
        lo = np.searchsorted(right_sorted, left_codes, side="left")
        hi = np.searchsorted(right_sorted, left_codes, side="right")
        counts = hi - lo

        reps = counts if how == "inner" else np.maximum(counts, 1)
        total = int(reps.sum())
        left_idx = np.repeat(np.arange(n_left, dtype=np.int64), reps)
        run_starts = np.cumsum(reps) - reps
        offsets = np.arange(total, dtype=np.int64) - np.repeat(run_starts, reps)
        positions = np.repeat(lo, reps) + offsets
        right_idx = right_order[np.minimum(positions, max(n_right - 1, 0))] if n_right else np.zeros(total, dtype=np.int64)
        unmatched = np.repeat(counts == 0, reps)  # all-False for inner joins
        right_idx = np.where(unmatched, -1, right_idx)

        left_part = self.take(left_idx)
        out_cols = [left_part.column(n) for n in left_part.column_names]
        taken = set(self._order)
        for n in other.column_names:
            if n in on:
                continue
            col = other.column(n)
            name = n + suffix if n in taken else n
            out_cols.append(_gather_with_missing(col, right_idx, unmatched).rename(name))
        return Frame(out_cols)

    # -- aggregation helpers (full group-by lives in groupby.py) -------------------

    def encode_keys(
        self, names: Sequence[str] | str
    ) -> tuple[np.ndarray, list[tuple[Any, ...]]]:
        """Factorize one or more key columns into dense group codes.

        Returns ``(codes, keys)``: an int64 array assigning every row a
        group id in ``[0, len(keys))``, and the distinct key tuples in
        first-appearance order (``keys[codes[i]]`` is row *i*'s key).
        This is the primitive under :meth:`group_indices`, ``group_by``,
        ``pivot``, and the panel builder.
        """
        if isinstance(names, str):
            names = [names]
        cols = [self.column(n) for n in names]
        n = self.num_rows
        if not cols:
            if n == 0:
                return np.empty(0, dtype=np.int64), []
            return np.zeros(n, dtype=np.int64), [()]
        if n == 0:
            return np.empty(0, dtype=np.int64), []

        if len(cols) == 1:
            codes, uniques = cols[0].factorize()
            return codes, [(u,) for u in uniques]

        parts = []
        for col in cols:
            codes, uniques = col.factorize()
            parts.append((codes, max(len(uniques), 1)))
        combined, overflow = _combine_codes(parts)
        if overflow:
            # Key-space product exceeds int64; fall back to tuple hashing.
            arrays = [c.values for c in cols]
            table: dict[tuple[Any, ...], int] = {}
            keys: list[tuple[Any, ...]] = []
            out = np.empty(n, dtype=np.int64)
            for i in range(n):
                key = tuple(a[i] for a in arrays)
                code = table.get(key)
                if code is None:
                    code = table[key] = len(keys)
                    keys.append(key)
                out[i] = code
            return out, keys

        codes, first_rows = dense_rank(combined)
        arrays = [c.values for c in cols]
        keys = list(zip(*(a[first_rows] for a in arrays)))
        return codes, keys

    def group_indices(self, names: Sequence[str] | str) -> dict[tuple[Any, ...], np.ndarray]:
        """Map each distinct key tuple to the row indices holding it.

        Keys appear in first-appearance order and each index array is
        ascending, matching the historical row-wise scan.
        """
        if self.num_rows == 0:
            if isinstance(names, str):
                names = [names]
            for n in names:
                self.column(n)
            return {}
        codes, keys = self.encode_keys(names)
        order = np.argsort(codes, kind="stable")
        boundaries = np.flatnonzero(np.diff(codes[order])) + 1
        return dict(zip(keys, np.split(order, boundaries)))

    def describe(self) -> "Frame":
        """Summary statistics for every numeric column.

        Returns a frame with one row per numeric column: count, number
        missing, mean, std, min, median, max.
        """
        records = []
        for name in self._order:
            col = self._columns[name]
            if col.kind == KIND_OBJECT:
                continue
            values = col.astype(KIND_FLOAT).values
            finite = values[~np.isnan(values)]
            records.append(
                {
                    "column": name,
                    "count": int(len(finite)),
                    "missing": int(len(values) - len(finite)),
                    "mean": float(finite.mean()) if len(finite) else None,
                    "std": float(finite.std(ddof=1)) if len(finite) > 1 else None,
                    "min": float(finite.min()) if len(finite) else None,
                    "median": float(np.median(finite)) if len(finite) else None,
                    "max": float(finite.max()) if len(finite) else None,
                }
            )
        return Frame.from_records(
            records,
            columns=["column", "count", "missing", "mean", "std", "min", "median", "max"],
        )

    def numeric(self, name: str) -> np.ndarray:
        """Return column *name* as float64 (raising if non-numeric)."""
        col = self.column(name)
        if col.kind == KIND_OBJECT:
            raise FrameError(f"column {name!r} is not numeric")
        return col.astype(KIND_FLOAT).values


def _combine_codes(parts: Sequence[tuple[np.ndarray, int]]) -> tuple[np.ndarray, bool]:
    """Merge per-column factorization codes into one code per row.

    *parts* is ``[(codes, cardinality), ...]``.  Returns the mixed-radix
    combination plus an overflow flag: when the key-space product would
    not fit in int64 the combination is meaningless and callers must
    fall back to tuple hashing.
    """
    space = 1
    for _, card in parts:
        space *= card
    if space >= 2**62:
        return parts[0][0], True
    combined = parts[0][0]
    for codes, card in parts[1:]:
        combined = combined * card + codes
    return combined, False


def _equals_mask(col: Column, value: Any, n: int) -> np.ndarray:
    """Elementwise ``col == value`` as a boolean mask, NaN never equal."""
    if col.kind == KIND_OBJECT and value is None:
        return col.is_missing()
    try:
        raw = col.values == value
    except (TypeError, ValueError):
        raw = None
    if isinstance(raw, np.ndarray) and raw.shape == (n,):
        return raw.astype(bool, copy=False)
    if raw is not None and np.isscalar(raw):
        # numpy collapsed an incomparable-type comparison to one bool
        return np.full(n, bool(raw), dtype=bool)
    return np.array([v == value for v in col.values], dtype=bool)


def _gather_with_missing(col: Column, indices: np.ndarray, missing: np.ndarray) -> Column:
    """``col.take(indices)`` with *missing* rows set to the null marker.

    Mirrors the historical per-row join gather, including its kind
    promotions: int columns with missing matches become float (NaN),
    bool columns become object (None), object columns are re-inferred
    from their gathered values.
    """
    if not len(col) or bool(missing.all()):
        # Every output row is unmatched; the historical list path then
        # saw only Nones and inferred an object column.
        return Column(col.name, [None] * len(indices))
    safe = np.where(missing, 0, indices)
    any_missing = bool(missing.any())
    if col.kind == KIND_FLOAT:
        out = col.values[safe]
        if any_missing:
            out = out.copy()
            out[missing] = np.nan
        return Column(col.name, out, kind=KIND_FLOAT)
    if col.kind == KIND_INT:
        if not any_missing:
            return Column(col.name, col.values[safe], kind=KIND_INT)
        out = col.values[safe].astype(np.float64)
        out[missing] = np.nan
        return Column(col.name, out, kind=KIND_FLOAT)
    if col.kind == KIND_BOOL:
        if not any_missing:
            return Column(col.name, col.values[safe], kind=KIND_BOOL)
        out = col.values[safe].astype(object)
        out[missing] = None
        return Column(col.name, out, kind=KIND_OBJECT)
    if len(col):
        out = col.values[safe]
        if any_missing:
            out = out.copy()
            out[missing] = None
    else:
        out = np.full(len(safe), None, dtype=object)
    # Re-infer like the historical list-building path did (an object
    # column of plain ints came back as an int column, for example).
    return Column(col.name, out.tolist())
