"""A small columnar frame: the library's tabular workhorse.

:class:`Frame` holds an ordered set of equal-length :class:`Column` objects
and supports the handful of relational verbs the analysis pipeline needs —
filter, sort, select, derive, group-by, and join.  It deliberately favours
explicitness over pandas-style magic: row predicates are plain callables or
boolean masks, and every transform returns a new frame.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import ColumnMismatchError, FrameError
from repro.frames.column import KIND_FLOAT, KIND_OBJECT, Column


class Frame:
    """An immutable-by-convention columnar table.

    Parameters
    ----------
    columns:
        Columns in display order.  All must have the same length and
        distinct names.
    """

    __slots__ = ("_columns", "_order")

    def __init__(self, columns: Sequence[Column] = ()) -> None:
        self._columns: dict[str, Column] = {}
        self._order: list[str] = []
        n = None
        for col in columns:
            if col.name in self._columns:
                raise FrameError(f"duplicate column name {col.name!r}")
            if n is None:
                n = len(col)
            elif len(col) != n:
                raise ColumnMismatchError(
                    f"column {col.name!r} has length {len(col)}, expected {n}"
                )
            self._columns[col.name] = col
            self._order.append(col.name)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[Any] | np.ndarray]) -> "Frame":
        """Build a frame from ``{name: values}`` (ordered as given)."""
        return cls([Column(name, values) for name, values in data.items()])

    @classmethod
    def from_records(
        cls, records: Iterable[Mapping[str, Any]], columns: Sequence[str] | None = None
    ) -> "Frame":
        """Build a frame from an iterable of row dicts.

        Column order follows *columns* when given, otherwise the key order
        of the first record.  Keys missing from a record become missing
        values.
        """
        rows = list(records)
        if columns is None:
            if not rows:
                return cls()
            columns = list(rows[0].keys())
        data: dict[str, list[Any]] = {c: [] for c in columns}
        for row in rows:
            for c in columns:
                data[c].append(row.get(c))
        return cls.from_dict(data)

    # -- basic introspection ----------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Number of rows (0 for an empty frame)."""
        if not self._order:
            return 0
        return len(self._columns[self._order[0]])

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._order)

    @property
    def column_names(self) -> list[str]:
        """Column names in display order."""
        return list(self._order)

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        """Return the raw value array of column *name*."""
        return self.column(name).values

    def column(self, name: str) -> Column:
        """Return the :class:`Column` object named *name*."""
        try:
            return self._columns[name]
        except KeyError:
            raise FrameError(
                f"no column {name!r}; available: {self._order}"
            ) from None

    def row(self, index: int) -> dict[str, Any]:
        """Return row *index* as a dict (supports negative indices)."""
        n = self.num_rows
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise FrameError(f"row index {index} out of range for {n} rows")
        return {name: self._columns[name].values[index] for name in self._order}

    def iter_rows(self) -> Iterable[dict[str, Any]]:
        """Yield each row as a dict.  Convenient, not fast."""
        for i in range(self.num_rows):
            yield self.row(i)

    def to_dict(self) -> dict[str, list[Any]]:
        """Return ``{name: list-of-values}`` preserving column order."""
        return {name: self._columns[name].to_list() for name in self._order}

    def __repr__(self) -> str:
        return f"Frame({self.num_rows} rows x {self.num_columns} cols: {self._order})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        if self._order != other._order:
            return False
        return all(self._columns[n] == other._columns[n] for n in self._order)

    def __hash__(self) -> int:
        raise TypeError("Frame is not hashable")

    def head(self, n: int = 5) -> "Frame":
        """Return the first *n* rows."""
        idx = np.arange(min(n, self.num_rows))
        return self.take(idx)

    def to_text(self, max_rows: int = 20, float_fmt: str = "{:.4g}") -> str:
        """Render an aligned plain-text table (for examples and logs)."""
        names = self._order
        if not names:
            return "(empty frame)"
        shown = min(self.num_rows, max_rows)

        def fmt(v: Any) -> str:
            if v is None:
                return ""
            if isinstance(v, (float, np.floating)):
                return "" if np.isnan(v) else float_fmt.format(float(v))
            return str(v)

        cells = [[fmt(self._columns[n].values[i]) for n in names] for i in range(shown)]
        widths = [
            max(len(n), *(len(r[j]) for r in cells)) if cells else len(n)
            for j, n in enumerate(names)
        ]
        lines = ["  ".join(n.ljust(w) for n, w in zip(names, widths))]
        lines.append("  ".join("-" * w for w in widths))
        for r in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        if shown < self.num_rows:
            lines.append(f"... ({self.num_rows - shown} more rows)")
        return "\n".join(lines)

    # -- column-level transforms --------------------------------------------------

    def select(self, names: Sequence[str]) -> "Frame":
        """Return a frame with only *names*, in the given order."""
        return Frame([self.column(n) for n in names])

    def drop(self, names: Sequence[str] | str) -> "Frame":
        """Return a frame without the given column(s)."""
        if isinstance(names, str):
            names = [names]
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise FrameError(f"cannot drop unknown columns {missing}")
        keep = [n for n in self._order if n not in set(names)]
        return self.select(keep)

    def rename(self, mapping: Mapping[str, str]) -> "Frame":
        """Return a frame with columns renamed per *mapping*."""
        for old in mapping:
            if old not in self._columns:
                raise FrameError(f"cannot rename unknown column {old!r}")
        cols = [
            self._columns[n].rename(mapping.get(n, n)) for n in self._order
        ]
        return Frame(cols)

    def with_column(self, name: str, values: Sequence[Any] | np.ndarray) -> "Frame":
        """Return a frame with column *name* added or replaced."""
        col = Column(name, values)
        if self._order and len(col) != self.num_rows:
            raise ColumnMismatchError(
                f"new column {name!r} has length {len(col)}, expected {self.num_rows}"
            )
        cols = [self._columns[n] for n in self._order if n != name]
        cols.append(col)
        return Frame(cols)

    def derive(self, name: str, fn: Callable[[dict[str, Any]], Any]) -> "Frame":
        """Return a frame with a new column computed per-row by *fn*."""
        values = [fn(row) for row in self.iter_rows()]
        return self.with_column(name, values)

    # -- row-level transforms ------------------------------------------------------

    def take(self, indices: np.ndarray | Sequence[int]) -> "Frame":
        """Return rows selected/reordered by integer *indices*."""
        idx = np.asarray(indices, dtype=np.int64)
        return Frame([self._columns[n].take(idx) for n in self._order])

    def filter(
        self, predicate: Callable[[dict[str, Any]], bool] | np.ndarray
    ) -> "Frame":
        """Return rows matching a boolean mask or per-row predicate."""
        if callable(predicate):
            mask = np.array(
                [bool(predicate(row)) for row in self.iter_rows()], dtype=bool
            )
        else:
            mask = np.asarray(predicate, dtype=bool)
            if len(mask) != self.num_rows:
                raise ColumnMismatchError(
                    f"mask length {len(mask)} != row count {self.num_rows}"
                )
        return Frame([self._columns[n].mask(mask) for n in self._order])

    def where_equal(self, **conditions: Any) -> "Frame":
        """Return rows where each named column equals the given value."""
        mask = np.ones(self.num_rows, dtype=bool)
        for name, value in conditions.items():
            col = self.column(name)
            mask &= np.array([v == value for v in col.values], dtype=bool)
        return self.filter(mask)

    def drop_missing(self, names: Sequence[str] | None = None) -> "Frame":
        """Drop rows with a missing value in any of *names* (default: all)."""
        names = list(names) if names is not None else self._order
        mask = np.ones(self.num_rows, dtype=bool)
        for n in names:
            mask &= ~self.column(n).is_missing()
        return self.filter(mask)

    def sort_by(self, names: Sequence[str] | str, descending: bool = False) -> "Frame":
        """Return rows sorted by the given column(s), stably."""
        if isinstance(names, str):
            names = [names]
        if not names:
            return self
        order = np.arange(self.num_rows)
        # numpy.lexsort sorts by the last key first; apply keys in reverse.
        keys = []
        for n in reversed(names):
            col = self.column(n)
            if col.kind == KIND_OBJECT:
                vals = np.array([str(v) for v in col.values])
            else:
                vals = col.values
            keys.append(vals)
        order = np.lexsort(keys)
        if descending:
            order = order[::-1]
        return self.take(order)

    def concat(self, other: "Frame") -> "Frame":
        """Append *other*'s rows.  Column sets must match (order-insensitive)."""
        if set(self._order) != set(other._order):
            raise ColumnMismatchError(
                f"cannot concat frames with columns {self._order} and {other._order}"
            )
        if not self._order:
            return other
        return Frame(
            [self._columns[n].concat(other._columns[n]) for n in self._order]
        )

    # -- joins -------------------------------------------------------------------

    def join(
        self,
        other: "Frame",
        on: Sequence[str] | str,
        how: str = "inner",
        suffix: str = "_right",
    ) -> "Frame":
        """Hash join with *other* on the given key column(s).

        Supports ``inner`` and ``left`` joins.  Non-key columns of *other*
        that collide with a column of *self* are renamed with *suffix*.
        """
        if isinstance(on, str):
            on = [on]
        if how not in ("inner", "left"):
            raise FrameError(f"unsupported join type {how!r}")
        for k in on:
            self.column(k)
            other.column(k)

        right_index: dict[tuple[Any, ...], list[int]] = {}
        right_key_cols = [other.column(k).values for k in on]
        for i in range(other.num_rows):
            key = tuple(c[i] for c in right_key_cols)
            right_index.setdefault(key, []).append(i)

        left_idx: list[int] = []
        right_idx: list[int] = []  # -1 means "no match" (left join)
        left_key_cols = [self.column(k).values for k in on]
        for i in range(self.num_rows):
            key = tuple(c[i] for c in left_key_cols)
            matches = right_index.get(key)
            if matches:
                for j in matches:
                    left_idx.append(i)
                    right_idx.append(j)
            elif how == "left":
                left_idx.append(i)
                right_idx.append(-1)

        left_part = self.take(np.asarray(left_idx, dtype=np.int64))
        out_cols = [left_part.column(n) for n in left_part.column_names]
        taken = set(self._order)
        for n in other.column_names:
            if n in on:
                continue
            col = other.column(n)
            name = n + suffix if n in taken else n
            values: list[Any] = []
            for j in right_idx:
                values.append(None if j < 0 else col.values[j])
            out_cols.append(Column(name, values))
        return Frame(out_cols)

    # -- aggregation helpers (full group-by lives in groupby.py) -------------------

    def group_indices(self, names: Sequence[str] | str) -> dict[tuple[Any, ...], np.ndarray]:
        """Map each distinct key tuple to the row indices holding it."""
        if isinstance(names, str):
            names = [names]
        cols = [self.column(n).values for n in names]
        groups: dict[tuple[Any, ...], list[int]] = {}
        for i in range(self.num_rows):
            key = tuple(c[i] for c in cols)
            groups.setdefault(key, []).append(i)
        return {k: np.asarray(v, dtype=np.int64) for k, v in groups.items()}

    def describe(self) -> "Frame":
        """Summary statistics for every numeric column.

        Returns a frame with one row per numeric column: count, number
        missing, mean, std, min, median, max.
        """
        records = []
        for name in self._order:
            col = self._columns[name]
            if col.kind == KIND_OBJECT:
                continue
            values = col.astype(KIND_FLOAT).values
            finite = values[~np.isnan(values)]
            records.append(
                {
                    "column": name,
                    "count": int(len(finite)),
                    "missing": int(len(values) - len(finite)),
                    "mean": float(finite.mean()) if len(finite) else None,
                    "std": float(finite.std(ddof=1)) if len(finite) > 1 else None,
                    "min": float(finite.min()) if len(finite) else None,
                    "median": float(np.median(finite)) if len(finite) else None,
                    "max": float(finite.max()) if len(finite) else None,
                }
            )
        return Frame.from_records(
            records,
            columns=["column", "count", "missing", "mean", "std", "min", "median", "max"],
        )

    def numeric(self, name: str) -> np.ndarray:
        """Return column *name* as float64 (raising if non-numeric)."""
        col = self.column(name)
        if col.kind == KIND_OBJECT:
            raise FrameError(f"column {name!r} is not numeric")
        return col.astype(KIND_FLOAT).values
