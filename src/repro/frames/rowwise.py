"""Row-wise reference implementations of the frame kernels.

These are the pre-vectorization algorithms — per-row Python loops over
dict-of-lists accumulators — kept verbatim as an executable spec.  The
parity tests in ``tests/frames/test_rowwise_parity.py`` and the analysis
benchmark compare the vectorized kernels in :mod:`repro.frames.frame`
and :mod:`repro.frames.groupby` against these functions; they are not
used by the pipeline itself.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.errors import FrameError
from repro.frames.column import Column
from repro.frames.frame import Frame


def _nan_safe(values: np.ndarray) -> np.ndarray:
    if values.dtype.kind == "f":
        return values[~np.isnan(values)]
    return values


#: The historical builtin table, including its quirks: ``sum`` filters NaN
#: twice, ``min``/``max`` return numpy scalars.
ROWWISE_BUILTINS: dict[str, Callable[[np.ndarray], Any]] = {
    "count": lambda v: len(v),
    "sum": lambda v: float(np.sum(_nan_safe(v))) if len(_nan_safe(v)) else 0.0,
    "mean": lambda v: float(np.mean(_nan_safe(v))) if len(_nan_safe(v)) else None,
    "median": lambda v: float(np.median(_nan_safe(v))) if len(_nan_safe(v)) else None,
    "min": lambda v: _nan_safe(v).min() if len(_nan_safe(v)) else None,
    "max": lambda v: _nan_safe(v).max() if len(_nan_safe(v)) else None,
    "std": lambda v: float(np.std(_nan_safe(v), ddof=1)) if len(_nan_safe(v)) > 1 else None,
    "var": lambda v: float(np.var(_nan_safe(v), ddof=1)) if len(_nan_safe(v)) > 1 else None,
    "first": lambda v: v[0] if len(v) else None,
    "last": lambda v: v[-1] if len(v) else None,
    "nunique": lambda v: len({str(x) for x in v}),
}


def group_indices(
    frame: Frame, names: Sequence[str] | str
) -> dict[tuple[Any, ...], np.ndarray]:
    """Per-row tuple-hashing grouping (the old ``Frame.group_indices``)."""
    if isinstance(names, str):
        names = [names]
    cols = [frame.column(n).values for n in names]
    groups: dict[tuple[Any, ...], list[int]] = {}
    for i in range(frame.num_rows):
        key = tuple(c[i] for c in cols)
        groups.setdefault(key, []).append(i)
    return {k: np.asarray(v, dtype=np.int64) for k, v in groups.items()}


def aggregate(
    frame: Frame,
    keys: Sequence[str] | str,
    **specs: tuple[str, "str | Callable[[np.ndarray], Any]"],
) -> Frame:
    """Per-group Python-loop aggregation (the old ``GroupedFrame.aggregate``)."""
    if isinstance(keys, str):
        keys = [keys]
    if not specs:
        raise FrameError("aggregate() needs at least one aggregation spec")
    resolved: list[tuple[str, str, Callable[[np.ndarray], Any]]] = []
    for out_name, (src, agg) in specs.items():
        frame.column(src)
        if callable(agg):
            fn = agg
        else:
            try:
                fn = ROWWISE_BUILTINS[agg]
            except KeyError:
                raise FrameError(f"unknown aggregation {agg!r}") from None
        resolved.append((out_name, src, fn))

    groups = group_indices(frame, keys)
    key_values: dict[str, list[Any]] = {k: [] for k in keys}
    out_values: dict[str, list[Any]] = {name: [] for name, _, _ in resolved}
    for key, idx in groups.items():
        for kname, kval in zip(keys, key):
            key_values[kname].append(kval)
        for out_name, src, fn in resolved:
            vals = frame.column(src).values[idx]
            out_values[out_name].append(fn(vals))

    cols = [Column(k, v) for k, v in key_values.items()]
    cols.extend(Column(name, vals) for name, vals in out_values.items())
    return Frame(cols)


def pivot(
    frame: Frame,
    index: str,
    columns: str,
    values: str,
    agg: str = "mean",
) -> tuple[Frame, list[Any]]:
    """Per-row cell accumulation (the old ``repro.frames.groupby.pivot``)."""
    frame.column(index)
    frame.column(columns)
    frame.column(values)
    agg_fn = ROWWISE_BUILTINS.get(agg)
    if agg_fn is None:
        raise FrameError(f"unknown aggregation {agg!r}")

    col_keys = frame.column(columns).unique()
    row_keys = frame.column(index).unique()
    row_pos = {k: i for i, k in enumerate(row_keys)}
    col_pos = {k: j for j, k in enumerate(col_keys)}

    cells: dict[tuple[int, int], list[float]] = {}
    idx_vals = frame.column(index).values
    col_vals = frame.column(columns).values
    val_vals = frame.numeric(values)
    for i in range(frame.num_rows):
        key = (row_pos[idx_vals[i]], col_pos[col_vals[i]])
        cells.setdefault(key, []).append(val_vals[i])

    grid = np.full((len(row_keys), len(col_keys)), np.nan)
    for (r, c), vals in cells.items():
        agged = agg_fn(np.asarray(vals, dtype=float))
        grid[r, c] = np.nan if agged is None else float(agged)

    cols = [Column(index, row_keys)]
    for j, key in enumerate(col_keys):
        cols.append(Column(str(key), grid[:, j]))
    return Frame(cols), col_keys


def join(
    left: Frame,
    right: Frame,
    on: Sequence[str] | str,
    how: str = "inner",
    suffix: str = "_right",
) -> Frame:
    """Per-row hash join (the old ``Frame.join``)."""
    if isinstance(on, str):
        on = [on]
    if how not in ("inner", "left"):
        raise FrameError(f"unsupported join type {how!r}")
    for k in on:
        left.column(k)
        right.column(k)

    right_index: dict[tuple[Any, ...], list[int]] = {}
    right_key_cols = [right.column(k).values for k in on]
    for i in range(right.num_rows):
        key = tuple(c[i] for c in right_key_cols)
        right_index.setdefault(key, []).append(i)

    left_idx: list[int] = []
    right_idx: list[int] = []  # -1 means "no match" (left join)
    left_key_cols = [left.column(k).values for k in on]
    for i in range(left.num_rows):
        key = tuple(c[i] for c in left_key_cols)
        matches = right_index.get(key)
        if matches:
            for j in matches:
                left_idx.append(i)
                right_idx.append(j)
        elif how == "left":
            left_idx.append(i)
            right_idx.append(-1)

    left_part = left.take(np.asarray(left_idx, dtype=np.int64))
    out_cols = [left_part.column(n) for n in left_part.column_names]
    taken = set(left.column_names)
    for n in right.column_names:
        if n in on:
            continue
        col = right.column(n)
        name = n + suffix if n in taken else n
        values: list[Any] = []
        for j in right_idx:
            values.append(None if j < 0 else col.values[j])
        out_cols.append(Column(name, values))
    return Frame(out_cols)
