"""Group-by aggregation for :class:`repro.frames.Frame`.

The entry point is :func:`group_by`, which returns a :class:`GroupedFrame`
supporting named aggregations::

    out = group_by(frame, ["asn", "city"]).aggregate(
        rtt_median=("rtt_ms", "median"),
        n=("rtt_ms", "count"),
    )

Built-in aggregations: ``count``, ``sum``, ``mean``, ``median``, ``min``,
``max``, ``std``, ``var``, ``first``, ``last``, ``nunique``, plus any
callable taking a numpy array.

Grouping is factorized (:meth:`Frame.encode_keys`): rows are assigned
dense integer group codes, one stable argsort makes every group a
contiguous slice, and the hot aggregations (``count``/``sum``/``mean``/
``median``/``min``/``max`` over numeric columns) run as grouped array
kernels over those slices — NaN handling happens once per column, and
the median uses a single per-group value sort instead of a Python loop.
Numeric results come back as plain Python floats (``count`` stays int);
callables and the remaining builtins see exactly the per-group value
arrays the row-wise path produced, in the same row order.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.errors import FrameError
from repro.frames.column import KIND_OBJECT, Column
from repro.frames.frame import Frame

_AggSpec = tuple[str, "str | Callable[[np.ndarray], Any]"]


def _nan_safe(values: np.ndarray) -> np.ndarray:
    """Drop NaN entries from a float array (pass others through)."""
    if values.dtype.kind == "f":
        return values[~np.isnan(values)]
    return values


def _plain(value: Any) -> Any:
    """Normalize numpy scalars to plain Python numbers."""
    if isinstance(value, (np.floating, np.integer)):
        return float(value)
    if isinstance(value, np.bool_):
        return float(bool(value))
    return value


def _agg_count(v: np.ndarray) -> int:
    return len(v)


def _agg_sum(v: np.ndarray) -> float:
    s = _nan_safe(v)
    return float(np.sum(s)) if len(s) else 0.0


def _agg_mean(v: np.ndarray) -> Any:
    s = _nan_safe(v)
    return float(np.mean(s)) if len(s) else None


def _agg_median(v: np.ndarray) -> Any:
    s = _nan_safe(v)
    return float(np.median(s)) if len(s) else None


def _agg_min(v: np.ndarray) -> Any:
    s = _nan_safe(v)
    return _plain(s.min()) if len(s) else None


def _agg_max(v: np.ndarray) -> Any:
    s = _nan_safe(v)
    return _plain(s.max()) if len(s) else None


def _agg_std(v: np.ndarray) -> Any:
    s = _nan_safe(v)
    return float(np.std(s, ddof=1)) if len(s) > 1 else None


def _agg_var(v: np.ndarray) -> Any:
    s = _nan_safe(v)
    return float(np.var(s, ddof=1)) if len(s) > 1 else None


_BUILTINS: dict[str, Callable[[np.ndarray], Any]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "mean": _agg_mean,
    "median": _agg_median,
    "min": _agg_min,
    "max": _agg_max,
    "std": _agg_std,
    "var": _agg_var,
    "first": lambda v: v[0] if len(v) else None,
    "last": lambda v: v[-1] if len(v) else None,
    "nunique": lambda v: len({str(x) for x in v}),
}

#: Builtins with a grouped-kernel fast path over numeric columns.
_FAST_AGGS = frozenset({"count", "sum", "mean", "median", "min", "max"})


class _Segments:
    """Contiguous group slices of one gathered (group-sorted) array."""

    __slots__ = ("order", "starts", "ends")

    def __init__(self, codes: np.ndarray, n_groups: int) -> None:
        self.order = np.argsort(codes, kind="stable")
        sorted_codes = codes[self.order]
        bounds = np.searchsorted(
            sorted_codes, np.arange(n_groups + 1, dtype=np.int64), side="left"
        )
        self.starts = bounds[:-1]
        self.ends = bounds[1:]

    @classmethod
    def from_parts(
        cls, order: np.ndarray, starts: np.ndarray, ends: np.ndarray
    ) -> "_Segments":
        """Wrap precomputed sort/boundary arrays without re-sorting."""
        seg = cls.__new__(cls)
        seg.order = order
        seg.starts = starts
        seg.ends = ends
        return seg


def _grouped_fast(
    values: np.ndarray,
    segments: _Segments,
    agg: str,
) -> np.ndarray:
    """One builtin over every group at once; NaN handled once per column.

    Returns a float64 array (NaN where the row-wise builtin returned
    ``None``), except ``count`` which returns int64 group sizes.
    """
    starts, ends = segments.starts, segments.ends
    if agg == "count":
        return ends - starts
    gathered = values[segments.order]
    is_float = gathered.dtype.kind == "f"
    if agg in ("sum", "mean"):
        # Summing contiguous slices keeps numpy's pairwise summation —
        # bit-identical to the historical per-group np.sum/np.mean.
        out = np.empty(len(starts), dtype=np.float64)
        for g in range(len(starts)):
            seg = gathered[starts[g] : ends[g]]
            if is_float:
                seg = seg[~np.isnan(seg)]
            if len(seg):
                out[g] = np.sum(seg) if agg == "sum" else np.mean(seg)
            else:
                out[g] = 0.0 if agg == "sum" else np.nan
        return out
    # median/min/max: NaN counts come from one reduceat over the gathered
    # layout; min/max reduce over NaN-neutralised copies (min/max pick an
    # element, so association cannot change the result), and the median
    # sorts each slice (NaN last) and picks middles by the valid counts.
    gf = gathered.astype(np.float64, copy=False)
    sizes = ends - starts
    if is_float:
        nan_mask = np.isnan(gf)
        valid = sizes - np.add.reduceat(nan_mask.astype(np.int64), starts)
    else:
        nan_mask = None
        valid = sizes
    out = np.full(len(starts), np.nan)
    ok = valid > 0
    if not ok.any():
        return out
    if agg == "min":
        filled = np.where(nan_mask, np.inf, gf) if nan_mask is not None else gf
        out[ok] = np.minimum.reduceat(filled, starts)[ok]
    elif agg == "max":
        filled = np.where(nan_mask, -np.inf, gf) if nan_mask is not None else gf
        out[ok] = np.maximum.reduceat(filled, starts)[ok]
    else:  # median
        for g in np.flatnonzero(ok):
            ss = np.sort(gf[starts[g] : ends[g]])  # NaN sorts last
            k = valid[g]
            out[g] = (ss[(k - 1) // 2] + ss[k // 2]) / 2.0
    return out


class GroupedFrame:
    """A frame partitioned by one or more key columns."""

    def __init__(self, frame: Frame, keys: Sequence[str]) -> None:
        self._frame = frame
        self._keys = list(keys)
        self._codes, self._key_tuples = frame.encode_keys(self._keys)
        self._segments = _Segments(self._codes, len(self._key_tuples))

    @property
    def keys(self) -> list[str]:
        """The grouping column names."""
        return list(self._keys)

    def __len__(self) -> int:
        return len(self._key_tuples)

    def _group_items(self) -> list[tuple[tuple[Any, ...], np.ndarray]]:
        """Each key tuple with its ascending row indices."""
        seg = self._segments
        return [
            (key, seg.order[seg.starts[g] : seg.ends[g]])
            for g, key in enumerate(self._key_tuples)
        ]

    def groups(self) -> dict[tuple[Any, ...], Frame]:
        """Return each group's rows as its own frame."""
        return {k: self._frame.take(idx) for k, idx in self._group_items()}

    def aggregate(self, **specs: _AggSpec) -> Frame:
        """Aggregate each group into one output row.

        Each keyword is an output column named by the keyword, whose value
        is ``(source_column, agg)`` where ``agg`` is a built-in name or a
        callable over the group's raw value array.
        """
        if not specs:
            raise FrameError("aggregate() needs at least one aggregation spec")
        resolved: list[tuple[str, str, "str | None", Callable[[np.ndarray], Any]]] = []
        for out_name, (src, agg) in specs.items():
            self._frame.column(src)  # validate early
            if callable(agg):
                resolved.append((out_name, src, None, agg))
                continue
            try:
                fn = _BUILTINS[agg]
            except KeyError:
                raise FrameError(
                    f"unknown aggregation {agg!r}; "
                    f"available: {sorted(_BUILTINS)}"
                ) from None
            resolved.append((out_name, src, agg, fn))

        n_groups = len(self._key_tuples)
        cols = [
            Column(kname, list(kvals))
            for kname, kvals in zip(self._keys, zip(*self._key_tuples))
        ] if n_groups else [Column(kname, []) for kname in self._keys]

        seg = self._segments
        gathered_cache: dict[str, np.ndarray] = {}
        for out_name, src, agg_name, fn in resolved:
            col = self._frame.column(src)
            if n_groups == 0:
                cols.append(Column(out_name, []))
                continue
            if agg_name in _FAST_AGGS and col.kind != KIND_OBJECT:
                result = _grouped_fast(col.values, seg, agg_name)
                cols.append(Column(out_name, result))
                continue
            src_gathered = gathered_cache.get(src)
            if src_gathered is None:
                src_gathered = gathered_cache[src] = col.values[seg.order]
            values = [
                fn(src_gathered[seg.starts[g] : seg.ends[g]])
                for g in range(n_groups)
            ]
            cols.append(Column(out_name, values))
        return Frame(cols)

    def apply(self, fn: Callable[[tuple[Any, ...], Frame], dict[str, Any]]) -> Frame:
        """Map each ``(key, group_frame)`` to an output record."""
        records = [fn(key, self._frame.take(idx)) for key, idx in self._group_items()]
        return Frame.from_records(records)


def group_by(frame: Frame, keys: Sequence[str] | str) -> GroupedFrame:
    """Partition *frame* by one or more key columns."""
    if isinstance(keys, str):
        keys = [keys]
    for k in keys:
        frame.column(k)
    return GroupedFrame(frame, keys)


def pivot_grid(
    frame: Frame,
    index: str,
    columns: str,
    values: str,
    agg: str = "mean",
    sort_index: bool = False,
    grid_factory: "Callable[[tuple[int, int], list[Any], list[Any]], np.ndarray] | None" = None,
) -> tuple[list[Any], list[Any], np.ndarray]:
    """The core of :func:`pivot`: ``(row_keys, col_keys, grid)``.

    Row and column keys are the distinct values of their columns in
    first-appearance order; ``grid`` is a dense float matrix with NaN in
    unobserved cells.  Observed cells are aggregated with one grouped
    kernel and scattered with a single fancy-indexed assignment —
    :func:`repro.synthcontrol.build_panel` reads the grid directly
    instead of round-tripping through a wide frame.

    With *sort_index* the row keys come back sorted by value (object
    keys by ``str``, matching :meth:`Frame.sort_by`): the row codes are
    remapped through the sort permutation *before* the scatter, so the
    grid lands already ordered — there is no post-hoc row-gather copy.

    *grid_factory*, when given, allocates the grid:
    ``factory(shape, row_keys, col_keys)`` must return a float64 array
    of ``shape`` (its contents need not be initialised — the NaN fill
    happens here).  This is how the panel build seals its matrix
    directly into a shared-memory block instead of a fresh allocation
    that would need a final copy.  The factory is only consulted for a
    non-empty grid; a degenerate pivot falls back to a normal array.
    """
    agg_fn = _BUILTINS.get(agg)
    if agg_fn is None:
        raise FrameError(f"unknown aggregation {agg!r}")
    row_codes, row_keys = frame.column(index).factorize()
    col_codes, col_keys = frame.column(columns).factorize()
    vals = frame.numeric(values)

    if sort_index and row_keys:
        if frame.column(index).kind == KIND_OBJECT:
            sort_keys = np.array([str(v) for v in row_keys])
        else:
            sort_keys = np.asarray(row_keys)
        order = np.argsort(sort_keys, kind="stable")
        rank = np.empty(len(order), dtype=np.int64)
        rank[order] = np.arange(len(order), dtype=np.int64)
        row_codes = rank[row_codes]
        row_keys = [row_keys[i] for i in order]

    shape = (len(row_keys), len(col_keys))
    if grid_factory is not None and min(shape) > 0:
        grid = grid_factory(shape, row_keys, col_keys)
        if grid.shape != shape or grid.dtype != np.float64:
            raise FrameError(
                f"grid_factory returned {grid.dtype} array of shape "
                f"{grid.shape}; expected float64 of {shape}"
            )
        grid.fill(np.nan)
    else:
        grid = np.full(shape, np.nan)
    if frame.num_rows:
        combined = row_codes * max(len(col_keys), 1) + col_codes
        # One stable argsort (radix on int64 codes) both orders the rows by
        # cell and yields the occupied cells in ascending flat order.
        order = np.argsort(combined, kind="stable")
        sorted_comb = combined[order]
        boundary = np.empty(len(sorted_comb), dtype=bool)
        boundary[0] = True
        boundary[1:] = sorted_comb[1:] != sorted_comb[:-1]
        starts = np.flatnonzero(boundary)
        occupied = sorted_comb[starts]
        segments = _Segments.from_parts(
            order, starts, np.append(starts[1:], len(sorted_comb))
        )
        if agg in _FAST_AGGS:
            cells = _grouped_fast(vals, segments, agg).astype(
                np.float64, copy=False
            )
        else:
            gathered = vals[segments.order]
            cells = np.array(
                [
                    _none_to_nan(agg_fn(gathered[s:e]))
                    for s, e in zip(segments.starts, segments.ends)
                ],
                dtype=np.float64,
            )
        grid.flat[occupied] = cells
    return row_keys, col_keys, grid


def _none_to_nan(value: Any) -> float:
    return np.nan if value is None else float(value)


def pivot(
    frame: Frame,
    index: str,
    columns: str,
    values: str,
    agg: str = "mean",
) -> tuple[Frame, list[Any]]:
    """Spread *values* into one output column per distinct *columns* value.

    Returns ``(wide_frame, column_keys)`` where ``wide_frame`` has the
    *index* column plus one float column per key (named ``str(key)``), and
    ``column_keys`` preserves the original key objects in column order.
    Missing cells are NaN.
    """
    row_keys, col_keys, grid = pivot_grid(frame, index, columns, values, agg)
    cols = [Column(index, row_keys)]
    for j, key in enumerate(col_keys):
        cols.append(Column(str(key), grid[:, j]))
    return Frame(cols), col_keys
