"""Group-by aggregation for :class:`repro.frames.Frame`.

The entry point is :func:`group_by`, which returns a :class:`GroupedFrame`
supporting named aggregations::

    out = group_by(frame, ["asn", "city"]).aggregate(
        rtt_median=("rtt_ms", "median"),
        n=("rtt_ms", "count"),
    )

Built-in aggregations: ``count``, ``sum``, ``mean``, ``median``, ``min``,
``max``, ``std``, ``var``, ``first``, ``last``, ``nunique``, plus any
callable taking a numpy array.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.errors import FrameError
from repro.frames.column import Column
from repro.frames.frame import Frame

_AggSpec = tuple[str, "str | Callable[[np.ndarray], Any]"]


def _nan_safe(values: np.ndarray) -> np.ndarray:
    """Drop NaN entries from a float array (pass others through)."""
    if values.dtype.kind == "f":
        return values[~np.isnan(values)]
    return values


_BUILTINS: dict[str, Callable[[np.ndarray], Any]] = {
    "count": lambda v: len(v),
    "sum": lambda v: float(np.sum(_nan_safe(v))) if len(_nan_safe(v)) else 0.0,
    "mean": lambda v: float(np.mean(_nan_safe(v))) if len(_nan_safe(v)) else None,
    "median": lambda v: float(np.median(_nan_safe(v))) if len(_nan_safe(v)) else None,
    "min": lambda v: _nan_safe(v).min() if len(_nan_safe(v)) else None,
    "max": lambda v: _nan_safe(v).max() if len(_nan_safe(v)) else None,
    "std": lambda v: float(np.std(_nan_safe(v), ddof=1)) if len(_nan_safe(v)) > 1 else None,
    "var": lambda v: float(np.var(_nan_safe(v), ddof=1)) if len(_nan_safe(v)) > 1 else None,
    "first": lambda v: v[0] if len(v) else None,
    "last": lambda v: v[-1] if len(v) else None,
    "nunique": lambda v: len({str(x) for x in v}),
}


class GroupedFrame:
    """A frame partitioned by one or more key columns."""

    def __init__(self, frame: Frame, keys: Sequence[str]) -> None:
        self._frame = frame
        self._keys = list(keys)
        self._groups = frame.group_indices(self._keys)

    @property
    def keys(self) -> list[str]:
        """The grouping column names."""
        return list(self._keys)

    def __len__(self) -> int:
        return len(self._groups)

    def groups(self) -> dict[tuple[Any, ...], Frame]:
        """Return each group's rows as its own frame."""
        return {k: self._frame.take(idx) for k, idx in self._groups.items()}

    def aggregate(self, **specs: _AggSpec) -> Frame:
        """Aggregate each group into one output row.

        Each keyword is an output column named by the keyword, whose value
        is ``(source_column, agg)`` where ``agg`` is a built-in name or a
        callable over the group's raw value array.
        """
        if not specs:
            raise FrameError("aggregate() needs at least one aggregation spec")
        resolved: list[tuple[str, str, Callable[[np.ndarray], Any]]] = []
        for out_name, (src, agg) in specs.items():
            self._frame.column(src)  # validate early
            if callable(agg):
                fn = agg
            else:
                try:
                    fn = _BUILTINS[agg]
                except KeyError:
                    raise FrameError(
                        f"unknown aggregation {agg!r}; "
                        f"available: {sorted(_BUILTINS)}"
                    ) from None
            resolved.append((out_name, src, fn))

        key_values: dict[str, list[Any]] = {k: [] for k in self._keys}
        out_values: dict[str, list[Any]] = {name: [] for name, _, _ in resolved}
        for key, idx in self._groups.items():
            for kname, kval in zip(self._keys, key):
                key_values[kname].append(kval)
            for out_name, src, fn in resolved:
                vals = self._frame.column(src).values[idx]
                out_values[out_name].append(fn(vals))

        cols = [Column(k, v) for k, v in key_values.items()]
        cols.extend(Column(name, vals) for name, vals in out_values.items())
        return Frame(cols)

    def apply(self, fn: Callable[[tuple[Any, ...], Frame], dict[str, Any]]) -> Frame:
        """Map each ``(key, group_frame)`` to an output record."""
        records = [fn(key, self._frame.take(idx)) for key, idx in self._groups.items()]
        return Frame.from_records(records)


def group_by(frame: Frame, keys: Sequence[str] | str) -> GroupedFrame:
    """Partition *frame* by one or more key columns."""
    if isinstance(keys, str):
        keys = [keys]
    for k in keys:
        frame.column(k)
    return GroupedFrame(frame, keys)


def pivot(
    frame: Frame,
    index: str,
    columns: str,
    values: str,
    agg: str = "mean",
) -> tuple[Frame, list[Any]]:
    """Spread *values* into one output column per distinct *columns* value.

    Returns ``(wide_frame, column_keys)`` where ``wide_frame`` has the
    *index* column plus one float column per key (named ``str(key)``), and
    ``column_keys`` preserves the original key objects in column order.
    Missing cells are NaN.
    """
    frame.column(index)
    frame.column(columns)
    frame.column(values)
    agg_fn = _BUILTINS.get(agg)
    if agg_fn is None:
        raise FrameError(f"unknown aggregation {agg!r}")

    col_keys = frame.column(columns).unique()
    row_keys = frame.column(index).unique()
    row_pos = {k: i for i, k in enumerate(row_keys)}
    col_pos = {k: j for j, k in enumerate(col_keys)}

    cells: dict[tuple[int, int], list[float]] = {}
    idx_vals = frame.column(index).values
    col_vals = frame.column(columns).values
    val_vals = frame.numeric(values)
    for i in range(frame.num_rows):
        key = (row_pos[idx_vals[i]], col_pos[col_vals[i]])
        cells.setdefault(key, []).append(val_vals[i])

    grid = np.full((len(row_keys), len(col_keys)), np.nan)
    for (r, c), vals in cells.items():
        agged = agg_fn(np.asarray(vals, dtype=float))
        grid[r, c] = np.nan if agged is None else float(agged)

    cols = [Column(index, row_keys)]
    for j, key in enumerate(col_keys):
        cols.append(Column(str(key), grid[:, j]))
    return Frame(cols), col_keys
