"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the package
layout: frame errors, graph errors, identification errors, estimation
errors, and simulation errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class FrameError(ReproError):
    """Raised for malformed or inconsistent columnar-frame operations."""


class ColumnMismatchError(FrameError):
    """Raised when columns of unequal length or missing names are combined."""


class GraphError(ReproError):
    """Raised for malformed causal graphs (cycles, unknown nodes, ...)."""


class CycleError(GraphError):
    """Raised when an edge set that must be acyclic contains a cycle."""


class ParseError(GraphError):
    """Raised when a textual graph specification cannot be parsed."""


class IdentificationError(ReproError):
    """Raised when a causal effect is not identifiable from the given DAG."""


class EstimationError(ReproError):
    """Raised when an estimator cannot produce an estimate."""


class InsufficientDataError(EstimationError):
    """Raised when there are too few observations to fit an estimator."""


class DonorPoolError(EstimationError):
    """Raised when a synthetic-control donor pool is empty or degenerate."""


class ExecutionError(ReproError):
    """Raised for invalid parallel-execution requests (bad n_jobs, ...)."""


class TransientError(ReproError):
    """Base class for failures worth retrying (the *transient* taxonomy).

    The retry machinery in :mod:`repro.pipeline.executor` re-runs a task
    whose failure is transient — an injected fault, a killed worker, a
    blown deadline — and never retries anything else: domain errors
    (:class:`PipelineError`, :class:`EstimationError`, ...) and plain
    programming errors describe the *task*, not the run, and would fail
    identically on every attempt.  See :func:`is_transient`.
    """


class InjectedFault(TransientError):
    """A transient failure raised on purpose by :mod:`repro.chaos`."""


class InjectedWorkerDeath(TransientError):
    """Stand-in for a killed worker when there is no worker to kill.

    A ``kind="kill"`` fault calls ``os._exit`` inside a process-pool
    worker; in a serial run the same fault raises this instead, so the
    observable contract — the task's first attempt dies, a retry
    succeeds — is identical across backends.
    """


class TaskTimeoutError(TransientError):
    """A task overran the :class:`RetryPolicy`'s per-task deadline."""


class FaultPlanError(ReproError):
    """Raised for a malformed fault plan (unknown kind, bad rate, ...)."""


class CheckpointError(ReproError):
    """Raised for an unusable study checkpoint (mid-file corruption,
    parameter mismatch with the resuming run, ...)."""


def is_transient(exc: BaseException) -> bool:
    """Whether *exc* belongs to the retryable taxonomy.

    Transient: :class:`TransientError` subclasses, ``TimeoutError``, and
    ``concurrent.futures``' ``BrokenProcessPool`` (a dead worker says
    nothing about the task it was running).  Everything else — including
    every non-transient :class:`ReproError` — is fatal and retried never.
    """
    from concurrent.futures.process import BrokenProcessPool

    return isinstance(exc, (TransientError, TimeoutError, BrokenProcessPool))


class PipelineError(ReproError):
    """Raised for malformed pipeline inputs (bad unit labels, ...)."""


class SimulationError(ReproError):
    """Raised for inconsistent simulator configuration or state."""


class RoutingError(SimulationError):
    """Raised when no route exists between two ASes or routing state is bad."""


class PlatformError(ReproError):
    """Raised for measurement-platform misuse (unknown probe, bad tag...)."""
