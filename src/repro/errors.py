"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the package
layout: frame errors, graph errors, identification errors, estimation
errors, and simulation errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class FrameError(ReproError):
    """Raised for malformed or inconsistent columnar-frame operations."""


class ColumnMismatchError(FrameError):
    """Raised when columns of unequal length or missing names are combined."""


class GraphError(ReproError):
    """Raised for malformed causal graphs (cycles, unknown nodes, ...)."""


class CycleError(GraphError):
    """Raised when an edge set that must be acyclic contains a cycle."""


class ParseError(GraphError):
    """Raised when a textual graph specification cannot be parsed."""


class IdentificationError(ReproError):
    """Raised when a causal effect is not identifiable from the given DAG."""


class EstimationError(ReproError):
    """Raised when an estimator cannot produce an estimate."""


class InsufficientDataError(EstimationError):
    """Raised when there are too few observations to fit an estimator."""


class DonorPoolError(EstimationError):
    """Raised when a synthetic-control donor pool is empty or degenerate."""


class ExecutionError(ReproError):
    """Raised for invalid parallel-execution requests (bad n_jobs, ...)."""


class PipelineError(ReproError):
    """Raised for malformed pipeline inputs (bad unit labels, ...)."""


class SimulationError(ReproError):
    """Raised for inconsistent simulator configuration or state."""


class RoutingError(SimulationError):
    """Raised when no route exists between two ASes or routing state is bad."""


class PlatformError(ReproError):
    """Raised for measurement-platform misuse (unknown probe, bad tag...)."""
