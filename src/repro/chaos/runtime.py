"""The fault-point runtime: where scheduled faults actually fire.

Pipeline code marks its vulnerable moments with
:func:`fault_point` — ``fault_point("fits.unit", key=unit)`` before a
fit, ``frame = fault_point("import.read", key=path, value=text)``
around a payload that a fault may corrupt.  With no plan active the
call is a single module-global check and an immediate return, cheap
enough to leave compiled into the hot path permanently (benchmarked in
``benchmarks/test_bench_chaos_overhead.py``).

Activating a plan (:func:`activate_plan` or the :func:`active_plan`
context manager) arms every fault point in the process.  The executor
ships the active plan to process-pool workers with each task, together
with the task's attempt number, so retried work sees a consistent,
attempt-aware fault schedule in whichever process it lands
(:func:`worker_context`).

Every fired fault is appended to the process's fault log
(:func:`fault_events`) and recorded as a ``fault`` span plus a
``faults_injected_total`` metric, so a chaos run's injections are
inspectable with the same observability tools as the work they
disrupted.  Worker-side events ship home with each task outcome and
merge in task order, keeping the parent's log deterministic.
"""

from __future__ import annotations

import contextlib
import logging
import os
import time
from collections.abc import Iterator
from contextvars import ContextVar
from typing import Any, TypeVar

from repro.chaos.plan import FaultEvent, FaultPlan, FaultSpec, hash01
from repro.errors import InjectedFault, InjectedWorkerDeath
from repro.obs.metrics import get_metrics
from repro.obs.trace import span

logger = logging.getLogger(__name__)

_V = TypeVar("_V")

_active_plan: FaultPlan | None = None
_in_worker = False
_events: list[FaultEvent] = []
_attempt: ContextVar[int] = ContextVar("repro_chaos_attempt", default=0)


def get_active_plan() -> FaultPlan | None:
    """The plan currently armed in this process, if any."""
    return _active_plan


def activate_plan(plan: FaultPlan | None, in_worker: bool = False) -> FaultPlan | None:
    """Arm *plan* process-wide; returns the previously active plan.

    *in_worker* marks this process as a disposable pool worker, which
    is what licenses ``kind="kill"`` faults to call ``os._exit`` — in a
    non-worker process they raise
    :class:`~repro.errors.InjectedWorkerDeath` instead.
    """
    global _active_plan, _in_worker
    previous = _active_plan
    _active_plan = plan
    _in_worker = in_worker
    return previous


def deactivate_plan() -> None:
    """Disarm fault injection in this process."""
    activate_plan(None)


@contextlib.contextmanager
def active_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm *plan* for the duration of a ``with`` block."""
    previous = activate_plan(plan)
    try:
        yield plan
    finally:
        activate_plan(previous)


def current_attempt() -> int:
    """This task's attempt number (0 on the first try)."""
    return _attempt.get()


@contextlib.contextmanager
def task_attempt(attempt: int) -> Iterator[None]:
    """Set the attempt number seen by fault points inside the block."""
    token = _attempt.set(attempt)
    try:
        yield
    finally:
        _attempt.reset(token)


@contextlib.contextmanager
def worker_context(plan: FaultPlan | None, attempt: int) -> Iterator[None]:
    """Arm a shipped plan inside a pool worker for one task.

    Swaps the worker's fault-event buffer so the events this task fires
    ship home with its outcome (pooled workers run many tasks and must
    not double-report), and tags the process as a worker so kill faults
    really kill it.
    """
    global _events
    saved_events, _events = _events, []
    previous = activate_plan(plan, in_worker=True)
    token = _attempt.set(attempt)
    try:
        yield
    finally:
        _attempt.reset(token)
        activate_plan(previous)
        _events = saved_events


def drain_events() -> list[FaultEvent]:
    """Return and clear this process's fault log (worker shipping)."""
    global _events
    events, _events = _events, []
    return events


def record_events(events: list[FaultEvent]) -> None:
    """Append shipped worker events to this process's fault log."""
    _events.extend(events)


def fault_events() -> tuple[FaultEvent, ...]:
    """Every fault fired in (or shipped to) this process, in order."""
    return tuple(_events)


def clear_events() -> None:
    """Reset the fault log (test isolation)."""
    _events.clear()


def fault_point(site: str, key: object = None, value: _V = None) -> _V:
    """A named place where the active plan may inject a failure.

    Returns *value* unchanged when no plan is active or no spec fires;
    ``kind="corrupt"`` faults return a corrupted copy instead, and the
    other kinds raise, kill, or stall as scheduled.  *key* should be
    the stable identity of the work at this site (unit label, donor
    name, file path) so firing decisions are independent of visit order
    and process placement.
    """
    plan = _active_plan
    if plan is None:
        return value
    key_text = "" if key is None else str(key)
    attempt = _attempt.get()
    spec = plan.decide(site, key_text, attempt)
    if spec is None:
        return value
    return _fire(plan, spec, site, key_text, attempt, value)


def _fire(
    plan: FaultPlan,
    spec: FaultSpec,
    site: str,
    key: str,
    attempt: int,
    value: Any,
) -> Any:
    _events.append(FaultEvent(site=site, key=key, kind=spec.kind, attempt=attempt))
    get_metrics().counter(
        "faults_injected_total", "faults fired by the active FaultPlan"
    ).inc()
    logger.warning(
        "chaos: injecting %s at %s (key=%r, attempt=%d)",
        spec.kind, site, key, attempt,
    )
    with span("fault", site=site, kind=spec.kind, key=key, attempt=attempt):
        if spec.kind == "error":
            raise InjectedFault(
                f"injected fault at {site} (key={key!r}, attempt={attempt})"
            )
        if spec.kind == "kill":
            if _in_worker:
                os._exit(spec.exit_code)
            raise InjectedWorkerDeath(
                f"injected worker death at {site} (key={key!r}, attempt={attempt})"
            )
        if spec.kind == "delay":
            time.sleep(spec.delay_s)
            return value
        return _corrupt(plan, spec, site, key, value)


def _corrupt(
    plan: FaultPlan, spec: FaultSpec, site: str, key: str, value: Any
) -> Any:
    """Apply the spec's corruption op; a pure function of plan and key."""
    r = hash01(plan.seed, "corrupt", site, spec.corruption, key)
    if spec.corruption == "truncate_text":
        text = str(value)
        # Cut somewhere in the back half: far enough in that a header
        # and real records survive, like a crash mid-append.
        cut = int(len(text) * (0.5 + 0.5 * r))
        return text[:cut]
    if spec.corruption == "garble_row":
        lines = str(value).split("\n")
        data = [i for i, line in enumerate(lines) if i > 0 and line.strip()]
        if not data:
            return value
        target = data[int(r * len(data)) % len(data)]
        cells = lines[target].split(",")
        cells[-1] = "###garbled###"
        lines[target] = ",".join(cells)
        return "\n".join(lines)
    # nan_cell: poison one cell of a panel-like object (times/units/matrix).
    import numpy as np

    matrix = np.array(value.matrix, copy=True)
    if matrix.size == 0:
        return value
    flat = int(r * matrix.size) % matrix.size
    matrix.flat[flat] = np.nan
    return type(value)(times=value.times, units=value.units, matrix=matrix)
