"""Deterministic fault schedules.

A :class:`FaultPlan` is a seeded, serializable description of *which*
fault fires *where*: each :class:`FaultSpec` names a fault-point site
(``"fits.unit"``, ``"import.read"``, ...), a fault kind, and a firing
rate.  Whether a particular visit to a fault point fires is a pure
function of ``(plan seed, site, kind, key)`` — no global counters, no
wall clock — so:

- two runs of the same workload under the same plan inject the same
  faults at the same places (the reproducibility contract);
- the decision for a keyed site (a unit label, a donor name, a file
  path) does not depend on *when* or *in which process* the site is
  hit, so a serial run and a ``--jobs 4`` run inject identical faults;
- a retried task sees the fault again only while its attempt number is
  below the spec's ``fire_attempts`` — the knob that makes a fault
  *transient* (fails once, retry succeeds) or *persistent*.

The hash is SHA-256 over the decision tuple, not Python's ``hash()``
(which is salted per process and would break cross-process determinism).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.errors import FaultPlanError

KINDS = ("error", "kill", "delay", "corrupt")

CORRUPTIONS = ("truncate_text", "garble_row", "nan_cell")


def hash01(*parts: object) -> float:
    """A uniform [0, 1) draw, deterministic in *parts* across processes."""
    text = "|".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what fires, where, and how often.

    Attributes
    ----------
    site:
        Fault-point name this spec targets (exact match).
    kind:
        ``"error"`` raises :class:`~repro.errors.InjectedFault`;
        ``"kill"`` terminates the worker process mid-task (serial runs
        raise :class:`~repro.errors.InjectedWorkerDeath` instead);
        ``"delay"`` sleeps ``delay_s`` (long enough to blow a retry
        deadline); ``"corrupt"`` applies ``corruption`` to the value
        flowing through the fault point.
    rate:
        Probability that a given key at this site is selected at all.
        The draw is per ``(seed, site, kind, key)``, so selection is a
        stable property of the key, not of visit order.
    fire_attempts:
        The fault fires only while the task's attempt number is below
        this.  ``1`` (default) models a transient failure; a large
        value models a persistent one that exhausts retries.
    match:
        Optional substring filter on the key (e.g. one unit's label).
    delay_s:
        Sleep length for ``kind="delay"``.
    corruption:
        Named corruption op for ``kind="corrupt"``: ``"truncate_text"``
        cuts a text payload mid-line, ``"garble_row"`` mangles one CSV
        data row, ``"nan_cell"`` poisons one panel cell.
    exit_code:
        Process exit code for ``kind="kill"``.
    """

    site: str
    kind: str
    rate: float = 1.0
    fire_attempts: int = 1
    match: str | None = None
    delay_s: float = 0.0
    corruption: str | None = None
    exit_code: int = 17

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.fire_attempts < 1:
            raise FaultPlanError(
                f"fire_attempts must be >= 1, got {self.fire_attempts}"
            )
        if self.kind == "corrupt":
            if self.corruption not in CORRUPTIONS:
                raise FaultPlanError(
                    f"kind='corrupt' needs a corruption op from {CORRUPTIONS}, "
                    f"got {self.corruption!r}"
                )
        if self.kind == "delay" and self.delay_s < 0:
            raise FaultPlanError(f"delay_s must be >= 0, got {self.delay_s}")


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault, as recorded in the fault log."""

    site: str
    key: str
    kind: str
    attempt: int


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of faults; see the module docstring.

    The plan itself is immutable and picklable, so the executor can ship
    it to pool workers with each task; firing decisions are stateless.
    """

    seed: int
    specs: tuple[FaultSpec, ...]

    def __post_init__(self) -> None:
        # Accept any iterable of specs but store a hashable tuple.
        object.__setattr__(self, "specs", tuple(self.specs))

    def decide(self, site: str, key: str, attempt: int) -> FaultSpec | None:
        """The spec that fires for this visit, or None.

        Specs are consulted in plan order; the first match wins, so a
        plan can layer a broad low-rate fault under a targeted one.
        """
        for spec in self.specs:
            if spec.site != site:
                continue
            if spec.match is not None and spec.match not in key:
                continue
            if attempt >= spec.fire_attempts:
                continue
            if hash01(self.seed, spec.site, spec.kind, key) < spec.rate:
                return spec
        return None

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-ready representation."""
        return {"seed": self.seed, "specs": [asdict(s) for s in self.specs]}

    @classmethod
    def from_dict(cls, obj: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (validating specs)."""
        try:
            specs = tuple(FaultSpec(**spec) for spec in obj["specs"])
            return cls(seed=int(obj["seed"]), specs=specs)
        except (KeyError, TypeError) as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from exc

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from :meth:`to_json` output."""
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(obj)

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Read a plan from a JSON file."""
        return cls.from_json(Path(path).read_text())

    def save(self, path: str | Path) -> None:
        """Write the plan as JSON."""
        Path(path).write_text(self.to_json() + "\n")
