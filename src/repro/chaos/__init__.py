"""repro.chaos — deterministic fault injection for the study pipeline.

A measurement platform that only works when nothing fails cannot be
trusted when something does.  This subsystem lets the test suite (and a
brave operator) inject the failure modes a production pipeline actually
sees — transient task errors, workers killed mid-fit, tasks stalled
past their deadline, corrupted CSV text and poisoned panel cells —
**reproducibly from one integer seed**:

- :class:`~repro.chaos.plan.FaultPlan` /
  :class:`~repro.chaos.plan.FaultSpec` — a seeded, serializable fault
  schedule whose firing decisions are pure functions of
  ``(seed, site, kind, key)``, identical across runs, processes, and
  ``n_jobs`` settings;
- :func:`~repro.chaos.runtime.fault_point` — the named hooks threaded
  through the pipeline (``"fits.unit"``, ``"placebo.refit"``,
  ``"import.read"``, ``"study.panel"``, ...), free when no plan is
  active;
- :func:`~repro.chaos.runtime.active_plan` and the fault log
  (:func:`~repro.chaos.runtime.fault_events`) — arming and auditing.

The chaos *test suite* (``tests/test_chaos_*.py``) is the point: it
proves the Table-1 verdict is failure-invariant — same rows whether
faults fire or not, serial or parallel, interrupted or not.
"""

from repro.chaos.plan import (
    CORRUPTIONS,
    KINDS,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    hash01,
)
from repro.chaos.runtime import (
    activate_plan,
    active_plan,
    clear_events,
    current_attempt,
    deactivate_plan,
    drain_events,
    fault_events,
    fault_point,
    get_active_plan,
    record_events,
    task_attempt,
    worker_context,
)

__all__ = [
    "CORRUPTIONS",
    "KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "activate_plan",
    "active_plan",
    "clear_events",
    "current_attempt",
    "deactivate_plan",
    "drain_events",
    "fault_events",
    "fault_point",
    "get_active_plan",
    "hash01",
    "record_events",
    "task_attempt",
    "worker_context",
]
