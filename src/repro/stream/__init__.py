"""Streaming ingestion and the incremental study engine.

The batch pipeline (:func:`repro.pipeline.study.run_ixp_study`)
consumes a complete measurement frame; this package consumes the same
measurements as a time-ordered feed and keeps a live study current
between batches:

- :mod:`repro.stream.batches` — slicing frames into
  :class:`MeasurementBatch` feeds, plus the scenario replay driver;
- :mod:`repro.stream.state` — incremental panel and treatment-
  assignment accumulators (the dirty-unit model lives here);
- :mod:`repro.stream.refit` — warm-started per-unit robust refits;
- :mod:`repro.stream.engine` — the :class:`StreamStudy` driver tying
  them to the executor/retry/checkpoint/observability stack.

The contract throughout: after the final batch, ``finalize()`` returns
rows bit-identical to the batch study's on the same measurements,
whatever the batch split, serial or parallel, resumed or not.
"""

from repro.stream.batches import (
    MeasurementBatch,
    random_batches,
    replay_scenario,
    slice_frame,
)
from repro.stream.engine import BatchReport, StreamOutcome, StreamStudy
from repro.stream.refit import LiveRefitter, UnitFitState
from repro.stream.state import (
    AssignmentAccumulator,
    PanelAccumulator,
    PanelDelta,
    ingest_frame,
)

__all__ = [
    "AssignmentAccumulator",
    "BatchReport",
    "LiveRefitter",
    "MeasurementBatch",
    "PanelAccumulator",
    "PanelDelta",
    "StreamOutcome",
    "StreamStudy",
    "UnitFitState",
    "ingest_frame",
    "random_batches",
    "replay_scenario",
    "slice_frame",
]
