"""Ingestion layer: time-ordered measurement batches.

A live deployment receives measurements as users take them; the replay
driver here simulates that regime from the deterministic generators in
:mod:`repro.mplatform`.  The full scenario frame is generated **once**
and then sliced by measurement hour — the generator draws noise per
⟨group, routing-state⟩ pool rather than per hour, so slicing an
already-generated frame is the only way the streamed union can equal
the batch frame value-for-value (which the engine's bit-parity
guarantee rests on).

Slicing is one stable argsort plus ``searchsorted`` boundary lookups,
so cutting a frame into hundreds of per-hour batches stays
``O(N log N)`` total, not ``O(N x batches)``.  Rows keep their original
relative order inside each batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FrameError
from repro.frames.frame import Frame


@dataclass(frozen=True)
class MeasurementBatch:
    """One time-slice of measurements, as the ingestion layer sees it.

    Attributes
    ----------
    index:
        Position in the stream (0-based, contiguous — empty slices are
        dropped before numbering, so resume bookkeeping is dense).
    start_hour, end_hour:
        Smallest and largest measurement hour in the batch (inclusive).
    frame:
        The measurement rows, same columns as the full frame.
    """

    index: int
    start_hour: float
    end_hour: float
    frame: Frame = field(repr=False)

    @property
    def n_rows(self) -> int:
        """Number of measurement rows in this batch."""
        return self.frame.num_rows


def slice_frame(
    frame: Frame,
    *,
    n_batches: int | None = None,
    batch_hours: float | None = None,
    time_column: str = "time_hour",
) -> list[MeasurementBatch]:
    """Slice a measurement frame into time-ordered batches.

    Pass exactly one of *n_batches* (equal-width slices of the observed
    hour range) or *batch_hours* (fixed slice width in hours).  Every
    row lands in exactly one batch — the union of the slices equals the
    input as a multiset — and empty slices are dropped, with the
    surviving batches renumbered contiguously.
    """
    if (n_batches is None) == (batch_hours is None):
        raise FrameError("pass exactly one of n_batches / batch_hours")
    hours = frame.numeric(time_column)
    if not len(hours):
        raise FrameError("cannot slice an empty measurement frame")
    lo = float(hours.min())
    hi = float(hours.max())
    if batch_hours is not None:
        if batch_hours <= 0:
            raise FrameError(f"batch_hours must be positive, got {batch_hours}")
        # Anchor cuts at absolute multiples of the width, not at the
        # first observed hour: ``batch_hours=24.0`` then means calendar
        # days regardless of when the first measurement lands, so a
        # steady-state batch only ever *appends* panel windows instead
        # of straddling two and re-editing the earlier one.
        origin = float(np.floor(lo / batch_hours) * batch_hours)
        n = max(1, int(np.ceil((hi - origin) / batch_hours)))
        cuts = origin + batch_hours * np.arange(1, n)
    else:
        n = int(n_batches)
        if n < 1:
            raise FrameError(f"n_batches must be >= 1, got {n_batches}")
        cuts = lo + (hi - lo) * np.arange(1, n) / n
    # Row -> slice id: the number of interior cut points at or below the
    # row's hour.  Rows exactly on a cut go right, deterministically.
    ids = np.searchsorted(cuts, hours, side="right")
    return _gather_batches(frame, hours, ids, n)


def random_batches(
    frame: Frame,
    *,
    n_batches: int,
    seed: int,
    time_column: str = "time_hour",
) -> list[MeasurementBatch]:
    """Randomly sized time slices under a seed.

    Cut points are drawn uniformly over the observed hour range, so the
    slice widths vary arbitrarily while staying time-ordered — the
    adversarial splits the streaming-equivalence property test feeds
    the engine.  Deterministic for a given ``(frame, n_batches, seed)``.
    """
    if n_batches < 1:
        raise FrameError(f"n_batches must be >= 1, got {n_batches}")
    hours = frame.numeric(time_column)
    if not len(hours):
        raise FrameError("cannot slice an empty measurement frame")
    rng = np.random.default_rng(seed)
    cuts = np.sort(rng.uniform(float(hours.min()), float(hours.max()), n_batches - 1))
    ids = np.searchsorted(cuts, hours, side="right")
    return _gather_batches(frame, hours, ids, n_batches)


def replay_scenario(
    scenario,
    *,
    rng: int = 0,
    n_batches: int | None = None,
    batch_hours: float | None = None,
    endogenous: bool = True,
    arena=None,
) -> tuple[Frame, list[MeasurementBatch]]:
    """Generate a scenario's measurements once and replay them as a feed.

    Returns ``(frame, batches)``: the full measurement frame (the batch
    path's input, kept for parity checks) and its time-ordered slices.
    *arena* (a :class:`~repro.pipeline.shm.SharedFrameArena`) backs the
    generated frame's float columns with shared-memory blocks.
    """
    from repro.mplatform import measurements_frame

    frame = measurements_frame(scenario, rng=rng, endogenous=endogenous, arena=arena)
    return frame, slice_frame(frame, n_batches=n_batches, batch_hours=batch_hours)


def _gather_batches(
    frame: Frame, hours: np.ndarray, ids: np.ndarray, n: int
) -> list[MeasurementBatch]:
    """Materialize slice frames from per-row slice ids in one sorted pass."""
    order = np.argsort(ids, kind="stable")  # stable: original order kept per slice
    sorted_ids = ids[order]
    bounds = np.searchsorted(sorted_ids, np.arange(n + 1, dtype=np.int64))
    batches: list[MeasurementBatch] = []
    for b in range(n):
        start, end = bounds[b], bounds[b + 1]
        if start == end:
            continue
        rows = order[start:end]
        slice_hours = hours[rows]
        batches.append(
            MeasurementBatch(
                index=len(batches),
                start_hour=float(slice_hours.min()),
                end_hour=float(slice_hours.max()),
                frame=frame.take(rows),
            )
        )
    return batches
