"""Incremental refit layer: warm-started per-unit robust fits.

After each ingested batch only a handful of units are dirty.  For each
one the :class:`LiveRefitter` refits the robust synthetic control,
reusing both the unit's cached donor pool and its previous
:class:`~repro.synthcontrol.robust.DonorFactorization` (through
:func:`~repro.synthcontrol.incremental.extend_factorization`) whenever
the new panel merely *appended* rows — the common steady-state, where
a batch adds a day of data and nothing else moves.  A warm refit then
costs one small-core SVD instead of a donor screen plus a full
factorization; anything that breaks append-only growth (edits to
existing panel rows, imputed cells in the old block, a failed prior
fit) falls back to the cold path: a fresh donor screen and a full SVD.
Either route feeds the same downstream math, and on exact inputs both
routes agree.

Placebo inference is amortized.  A warm refresh recomputes the unit's
*effect* (denoise + ridge fit, well under a millisecond) every batch,
but the placebo RMSE-ratio ensemble — one leave-one-out SVD sweep plus
a ridge fit per donor, the bulk of a refresh — is recomputed only
every ``placebo_every`` batches per unit (and on every cold refit,
where the donor pool may have changed).  Units stagger their refresh
phases so the cost spreads evenly across batches instead of spiking.
In between, the live p-value ranks the *fresh* treated ratio against
the cached ensemble; the placebo distribution drifts by at most
``placebo_every`` batches of data.  ``placebo_every=1`` restores full
per-batch inference.

Live rows are advisory: they show the study evolving while the stream
runs.  The engine's ``finalize()`` re-runs the batch study's own
plan/execute code over the accumulated state, so the shipped table
never depends on this layer's warm-start or amortization bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import DonorPoolError, EstimationError, PipelineError
from repro.estimators.bootstrap import permutation_p_value
from repro.pipeline.crossing import TreatmentAssignment
from repro.pipeline.study import StudyRow, _pre_period_count, parse_unit_label
from repro.synthcontrol.donor import Panel, select_donors
from repro.synthcontrol.incremental import extend_factorization, live_placebo_ratios
from repro.synthcontrol.robust import (
    DonorFactorization,
    denoise_from_factorization,
    factor_donor_matrix,
    fit_from_denoised,
)


@dataclass
class UnitFitState:
    """One treated unit's cached fit state between batches."""

    unit: str
    donors: tuple[str, ...] = ()
    fact: DonorFactorization | None = field(default=None, repr=False)
    times: tuple[Any, ...] = ()  # panel time prefix the factorization covers
    epoch: int = -1  # engine epoch the factorization was built under
    row: StudyRow | None = None
    skip_reason: str | None = None
    ratios: tuple[float, ...] | None = None  # cached placebo ensemble
    n_placebos_skipped: int = 0
    since_placebo: int = 0  # warm refreshes since the ensemble was rebuilt
    stagger: int = 0  # phase offset so units' rebuilds interleave


class LiveRefitter:
    """Windowed robust refits over the stream's evolving panel."""

    def __init__(
        self,
        *,
        energy: float = 0.99,
        ridge: float = 1e-2,
        max_placebos: int | None = None,
        min_pre_periods: int = 7,
        min_post_periods: int = 3,
        max_donor_missing: float = 0.5,
        placebo_every: int = 4,
    ) -> None:
        if placebo_every < 1:
            raise PipelineError(f"placebo_every must be >= 1, got {placebo_every}")
        self._energy = energy
        self._ridge = ridge
        self._max_placebos = max_placebos
        self._min_pre = min_pre_periods
        self._min_post = min_post_periods
        self._max_missing = max_donor_missing
        self._placebo_every = placebo_every
        self._states: dict[str, UnitFitState] = {}
        self.warm_refits = 0
        self.cold_refits = 0
        self.placebo_refreshes = 0

    def state(self, unit: str) -> UnitFitState | None:
        """The unit's cached state, if it has ever been refit."""
        return self._states.get(unit)

    def refresh(
        self,
        panel: Panel,
        assignment: TreatmentAssignment,
        unit: str,
        epoch: int,
    ) -> UnitFitState:
        """Refit one dirty treated unit against the current panel."""
        state = self._states.get(unit)
        if state is None:
            stagger = len(self._states) % self._placebo_every
            state = self._states[unit] = UnitFitState(unit=unit, stagger=stagger)
        try:
            parse_unit_label(unit)
            first_day = int(assignment.first_crossing_hour[unit] // 24)
            pre_periods = _pre_period_count(panel, first_day)
            post_periods = panel.n_times - pre_periods
            if pre_periods < self._min_pre:
                raise EstimationError(f"only {pre_periods} pre-treatment days")
            if post_periods < self._min_post:
                raise EstimationError(f"only {post_periods} post-treatment days")
            donors, donor_matrix, fact, warm = self._donor_pool(
                state, panel, assignment, unit, epoch, pre_periods
            )
            denoised, _ = denoise_from_factorization(fact, energy=self._energy)
            fit = fit_from_denoised(
                panel.series(unit),
                denoised,
                pre_periods,
                unit,
                donors,
                ridge=self._ridge,
            )
            rebuild = (
                not warm
                or state.ratios is None
                or state.since_placebo + 1 >= self._placebo_every
            )
            if rebuild:
                ratios, n_skipped = live_placebo_ratios(
                    fact,
                    donor_matrix,
                    donors,
                    pre_periods,
                    energy=self._energy,
                    ridge=self._ridge,
                    limit=self._max_placebos,
                )
                state.ratios = tuple(ratios)
                state.n_placebos_skipped = n_skipped
                # A cold rebuild seeds the unit's phase offset so the
                # treated units' ensemble rebuilds interleave instead of
                # all landing on the same future batch.
                state.since_placebo = state.stagger if not warm else 0
                self.placebo_refreshes += 1
            else:
                state.since_placebo += 1
            p_value = permutation_p_value(
                fit.rmse_ratio, np.asarray(state.ratios), alternative="greater"
            )
        except (DonorPoolError, EstimationError, PipelineError) as exc:
            state.fact = None
            state.donors = ()
            state.times = ()
            state.row = None
            state.ratios = None
            state.since_placebo = 0
            state.skip_reason = str(exc)
            return state
        state.donors = donors
        state.fact = fact
        state.times = panel.times
        state.epoch = epoch
        state.skip_reason = None
        state.row = StudyRow(
            unit=unit,
            rtt_delta_ms=fit.effect,
            rmse_ratio=fit.rmse_ratio,
            p_value=p_value,
            pre_periods=pre_periods,
            post_periods=post_periods,
            n_donors=len(donors),
            n_placebos=len(state.ratios),
            n_placebos_skipped=state.n_placebos_skipped,
        )
        return state

    def _donor_pool(
        self,
        state: UnitFitState,
        panel: Panel,
        assignment: TreatmentAssignment,
        unit: str,
        epoch: int,
        pre_periods: int,
    ) -> tuple[tuple[str, ...], np.ndarray, DonorFactorization, bool]:
        """The unit's donor pool, matrix, SVD, and whether it was warm.

        When the cached factorization is warm-eligible — same engine
        epoch, the panel merely grew, and the cached time prefix is
        intact — the cached donor pool is reused *without* re-running
        the correlation screen: none of the screen's pre-period inputs
        changed, and skipping it keeps the warm refresh at the cost of
        one small-core SVD.  (The screen's ``max_missing`` filter also
        sees the appended rows, so a pool picked today could differ at
        the margin from one picked at first fit; live rows are advisory
        and ``finalize()`` re-screens every unit from scratch.)  Any
        break in append-only growth falls back to a fresh screen and a
        cold factorization.
        """
        n_known = len(state.times)
        warm_ok = (
            state.fact is not None
            and state.donors
            and state.epoch == epoch
            and panel.n_times > n_known
            and panel.times[:n_known] == state.times
        )
        if warm_ok:
            donors = state.donors
            donor_matrix = np.column_stack([panel.series(d) for d in donors])
            try:
                fact = extend_factorization(state.fact, donor_matrix[n_known:])
                self.warm_refits += 1
                return donors, donor_matrix, fact, True
            except EstimationError:
                pass  # imputed old block: exactness would be lost, go cold
        donors = tuple(
            select_donors(
                panel,
                unit,
                excluded=tuple(assignment.treated_units),
                pre_periods=pre_periods,
                max_missing=self._max_missing,
            )
        )
        donor_matrix = np.column_stack([panel.series(d) for d in donors])
        self.cold_refits += 1
        return donors, donor_matrix, factor_donor_matrix(donor_matrix), False
