"""Incremental state layer: panels and treatment assignment, batch by batch.

Two accumulators mirror the batch pipeline's first two stages —
:func:`~repro.pipeline.aggregate.rtt_panel` and
:func:`~repro.pipeline.crossing.assign_treatment` — but absorb one
measurement batch at a time:

- :class:`PanelAccumulator` maintains the ⟨unit, day⟩ median panel.  It
  keeps per-cell raw-value buffers so a dirty cell's median is
  recomputed with exactly the batch kernel's formula over the cell's
  *full* value multiset (medians do not compose across batches; the
  buffers are the price of bit-parity), and extends the
  :class:`~repro.synthcontrol.donor.Panel` through
  :meth:`~repro.synthcontrol.donor.Panel.apply_batch` — a batch-sized
  scatter, never a full rebuild.
- :class:`AssignmentAccumulator` maintains each unit's first sustained
  IXP crossing.  A unit touched by a batch has its candidate recomputed
  over its full (merged, hour-sorted) history — new rows landing inside
  an earlier candidate's debounce window can flip a previous pass or
  fail, so a suffix-only recompute would be wrong.

Both reproduce the batch stage's output exactly on any prefix of the
stream: the panel because median cells depend only on value multisets,
the assignment because the debounce windows cut on hour *values* (tie
order immaterial) and :meth:`AssignmentAccumulator.assignment` builds
its dicts in the batch path's sorted-name insertion order (which
``treated_units``' stable sort exposes on tied first-crossing hours).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.frames.frame import Frame
from repro.frames.groupby import _Segments
from repro.pipeline.crossing import (
    TreatmentAssignment,
    _first_sustained_crossing,
    crossing_mask,
)
from repro.synthcontrol.donor import Panel, PanelUpdate


@dataclass(frozen=True)
class PanelDelta:
    """What one ingested batch changed in the panel.

    Attributes
    ----------
    dirty_units:
        Labels whose cells changed, in first-appearance order.
    n_dirty_cells:
        Number of ⟨unit, day⟩ cells rewritten.
    n_new_times, n_new_units:
        Axis growth this batch caused.
    edited_old_times:
        True when some dirty cell sits on a day the panel already had —
        i.e. an *existing* matrix row changed, which invalidates any
        append-only warm start of donor SVDs built on the old rows.
    """

    dirty_units: tuple[str, ...]
    n_dirty_cells: int
    n_new_times: int
    n_new_units: int
    edited_old_times: bool


class PanelAccumulator:
    """Incremental ⟨unit, day⟩ median panel over a measurement stream."""

    def __init__(self, *, outcome: str = "rtt_ms") -> None:
        self._outcome = outcome
        self._unit_pos: dict[str, int] = {}
        self._units: list[str] = []
        self._times: list[Any] = []  # kept sorted ascending
        self._time_pos: dict[Any, int] = {}
        # (unit_pos, day) -> raw value chunks; consolidated to one array
        # per cell at each recompute so memory stays one float per row.
        self._cells: dict[tuple[int, Any], list[np.ndarray]] = {}
        self._n_rows = 0
        self.panel = Panel(times=(), units=(), matrix=np.empty((0, 0)))

    @property
    def n_rows(self) -> int:
        """Measurement rows absorbed so far."""
        return self._n_rows

    def apply(self, frame: Frame) -> PanelDelta:
        """Absorb one batch and extend :attr:`panel`; returns the delta."""
        if frame.num_rows == 0:
            return PanelDelta((), 0, 0, 0, False)
        codes, keys = frame.encode_keys(["unit", "day"])
        vals = frame.numeric(self._outcome)
        segments = _Segments(codes, len(keys))

        # Pass 1 — register axes and stash this batch's values per cell.
        # Iterating keys in first-appearance order registers new units in
        # the same order the batch pivot's unit factorize would.
        edited_old = False
        n_new_units = 0
        fresh_times: dict[Any, None] = {}
        dirty_units: dict[str, None] = {}
        cell_ids: list[tuple[int, Any]] = []
        for g, (unit_raw, day) in enumerate(keys):
            label = str(unit_raw)
            pos = self._unit_pos.get(label)
            if pos is None:
                pos = self._unit_pos[label] = len(self._units)
                self._units.append(label)
                n_new_units += 1
            dirty_units[label] = None
            if day in self._time_pos:
                edited_old = True
            else:
                fresh_times[day] = None
            chunk = vals[segments.order[segments.starts[g] : segments.ends[g]]]
            cell = (pos, day)
            cell_ids.append(cell)
            buffer = self._cells.get(cell)
            if buffer is None:
                self._cells[cell] = [chunk]
            else:
                buffer.append(chunk)

        # Extend the time axis (sorted, like the pivot's sort_index).
        n_new_times = len(fresh_times)
        if n_new_times:
            self._times = sorted(self._times + list(fresh_times))
            self._time_pos = {t: i for i, t in enumerate(self._times)}

        # Pass 2 — recompute each dirty cell's median over its full
        # multiset, with the batch kernel's exact formula: sort (NaN
        # last), middle two of the valid count.
        n_dirty = len(cell_ids)
        row_index = np.empty(n_dirty, dtype=np.int64)
        col_index = np.empty(n_dirty, dtype=np.int64)
        medians = np.empty(n_dirty, dtype=np.float64)
        for i, (pos, day) in enumerate(cell_ids):
            chunks = self._cells[(pos, day)]
            if len(chunks) > 1:
                merged = np.concatenate(chunks)
                self._cells[(pos, day)] = [merged]
            else:
                merged = chunks[0]
            ss = np.sort(merged)  # NaN sorts last
            k = len(merged) - int(np.isnan(merged).sum())
            medians[i] = np.nan if k == 0 else (ss[(k - 1) // 2] + ss[k // 2]) / 2.0
            row_index[i] = self._time_pos[day]
            col_index[i] = pos

        self.panel = self.panel.apply_batch(
            PanelUpdate(
                times=tuple(self._times),
                units=tuple(self._units),
                row_index=row_index,
                col_index=col_index,
                cells=medians,
            )
        )
        self._n_rows += frame.num_rows
        return PanelDelta(
            dirty_units=tuple(dirty_units),
            n_dirty_cells=n_dirty,
            n_new_times=n_new_times,
            n_new_units=n_new_units,
            edited_old_times=edited_old,
        )


class AssignmentAccumulator:
    """Incremental first-sustained-crossing detection over a stream."""

    def __init__(
        self,
        ixp_name: str,
        *,
        min_crossing_share: float = 0.5,
        window_hours: float = 24.0,
    ) -> None:
        self.ixp_name = ixp_name
        self._share = min_crossing_share
        self._window = window_hours
        self._hours: dict[str, np.ndarray] = {}  # per unit, sorted ascending
        self._cross: dict[str, np.ndarray] = {}
        self._first: dict[str, float] = {}
        self._any_cross: set[str] = set()  # units with >= 1 crossing row ever

    def apply(self, frame: Frame) -> tuple[str, ...]:
        """Absorb one batch; returns the units whose history it touched."""
        if frame.num_rows == 0:
            return ()
        crosses = crossing_mask(frame, self.ixp_name)
        codes, uniques = frame.column("unit").factorize()
        hours = frame.numeric("time_hour")

        # Merge factorize codes that share a string label, like the batch
        # path does (its historical scan compared str(u)).
        labels = [str(u) for u in uniques]
        gid_of: dict[str, int] = {}
        names: list[str] = []
        gid_map = np.empty(len(labels), dtype=np.int64)
        for i, label in enumerate(labels):
            gid = gid_of.get(label)
            if gid is None:
                gid = gid_of[label] = len(names)
                names.append(label)
            gid_map[i] = gid
        segments = _Segments(gid_map[codes], len(names))

        for g, label in enumerate(names):
            rows = segments.order[segments.starts[g] : segments.ends[g]]
            batch_hours = hours[rows]
            batch_cross = crosses[rows]
            hour_order = np.argsort(batch_hours, kind="stable")
            batch_hours = batch_hours[hour_order]
            batch_cross = batch_cross[hour_order]
            known = self._hours.get(label)
            if known is None:
                self._hours[label] = batch_hours
                self._cross[label] = batch_cross
            elif batch_hours[0] >= known[-1]:
                # Pure append — the live-feed steady state.
                self._hours[label] = np.concatenate([known, batch_hours])
                self._cross[label] = np.concatenate([self._cross[label], batch_cross])
            else:
                # Sorted-merge insert: O(history) memcpy, no re-sort.  Ties
                # land left of existing equal hours — immaterial, the
                # debounce windows cut on hour values.
                at = np.searchsorted(known, batch_hours, side="left")
                self._hours[label] = np.insert(known, at, batch_hours)
                self._cross[label] = np.insert(self._cross[label], at, batch_cross)
            if batch_cross.any():
                self._any_cross.add(label)
            elif label not in self._any_cross:
                # No crossing row in the whole history: trivially never
                # sustained.  This skips the scan for every donor unit.
                continue
            cached = self._first.get(label)
            if cached is not None and batch_hours[0] >= cached + self._window:
                # Every new hour lies past the cached decision's debounce
                # window, so neither that window nor any earlier (failed)
                # candidate window gained or lost rows: the first
                # sustained crossing cannot have moved.  Exact skip.
                continue
            candidate = _first_sustained_crossing(
                self._hours[label], self._cross[label], self._share, self._window
            )
            if candidate is None:
                self._first.pop(label, None)
            else:
                self._first[label] = candidate
        return tuple(names)

    def assignment(self) -> TreatmentAssignment:
        """The assignment over everything absorbed so far.

        Dict insertion order follows the batch path's sorted-name loop
        exactly — ``treated_units`` breaks first-crossing-hour ties by
        insertion order, so this is part of the bit-parity contract,
        not a style choice.
        """
        names = sorted(self._hours)
        first = {u: self._first[u] for u in names if u in self._first}
        never = tuple(u for u in names if u not in self._first)
        return TreatmentAssignment(
            ixp_name=self.ixp_name,
            first_crossing_hour=first,
            never_crossed=never,
        )


def ingest_frame(
    frame: Frame,
    ixp_name: str,
    *,
    n_batches: int,
    outcome: str = "rtt_ms",
    on_batch: Any = None,
) -> tuple["TreatmentAssignment", Panel]:
    """Build assignment and panel by streaming *frame* in time slices.

    Convenience wrapper used by the campaign scheduler: slices the frame
    into *n_batches* contiguous windows (:func:`repro.stream.batches.
    slice_frame`) and pushes each through fresh accumulators.  Because
    both accumulators are bit-parity with the batch path on any prefix,
    the returned ``(assignment, panel)`` is identical to
    ``assign_treatment`` + ``rtt_panel`` over the whole frame — the
    point of going through here is the per-slice ``on_batch`` hook,
    which fires *before* each slice is absorbed (the campaign's
    ``stream.batch`` fault site lives there).
    """
    from repro.stream.batches import slice_frame

    panels = PanelAccumulator(outcome=outcome)
    crossings = AssignmentAccumulator(ixp_name)
    for batch in slice_frame(frame, n_batches=n_batches):
        if on_batch is not None:
            on_batch(batch)
        crossings.apply(batch.frame)
        panels.apply(batch.frame)
    return crossings.assignment(), panels.panel
