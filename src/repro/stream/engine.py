"""The streaming study driver: ingest batches, refit live, finalize.

:class:`StreamStudy` wires the stream's three lower layers into the
existing service stack:

- each :meth:`~StreamStudy.ingest` call feeds one
  :class:`~repro.stream.batches.MeasurementBatch` through the
  :class:`~repro.stream.state.PanelAccumulator` and
  :class:`~repro.stream.state.AssignmentAccumulator`, then live-refits
  the dirty treated units through the
  :class:`~repro.stream.refit.LiveRefitter` — all under ``repro.obs``
  spans and metrics, with a ``stream.batch`` chaos fault point;
- a :class:`~repro.pipeline.checkpoint.StudyCheckpoint` journals each
  fully ingested batch, so a stream killed at any point resumes with
  ``resume=True``: journaled batches replay into the state layer
  (skipping live refits — their rows are already absorbed) and only the
  unjournaled suffix ingests fresh;
- :meth:`~StreamStudy.finalize` hands the accumulated panel and
  assignment to the **batch study's own**
  :func:`~repro.pipeline.study.prepare_unit_plan` /
  :func:`~repro.pipeline.study.execute_unit_plan`, fanning out over the
  executor/retry stack (shared-memory panel included) exactly like
  ``run_ixp_study`` — which is why the final rows are bit-identical to
  the batch path's, for any batch split, serial or parallel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.chaos.runtime import fault_point
from repro.errors import CheckpointError, PipelineError
from repro.obs import COUNT_BUCKETS, SECONDS_BUCKETS, get_metrics, span
from repro.pipeline.checkpoint import StudyCheckpoint
from repro.pipeline.executor import RetryPolicy, resolve_n_jobs
from repro.pipeline.shm import SharedPanelOwner
from repro.pipeline.study import (
    StudyResult,
    StudyRow,
    execute_unit_plan,
    prepare_unit_plan,
)
from repro.stream.batches import MeasurementBatch
from repro.stream.refit import LiveRefitter
from repro.stream.state import AssignmentAccumulator, PanelAccumulator, PanelDelta


@dataclass(frozen=True)
class BatchReport:
    """What one ingested batch did, for progress display and benchmarks."""

    index: int
    n_rows: int
    n_dirty_units: int
    n_dirty_cells: int
    n_refits: int
    warm_refits: int
    cold_refits: int
    seconds: float
    replayed: bool = False
    placebo_refreshes: int = 0


def _live_summary(result: StudyResult) -> dict:
    """A JSON-ready view of a live (advisory) result for telemetry."""
    from dataclasses import asdict

    return {
        "rows": [asdict(row) for row in result.rows],
        "skipped": [
            {"unit": unit, "reason": reason} for unit, reason in result.skipped
        ],
    }


@dataclass(frozen=True)
class StreamOutcome:
    """A finished stream: the finalized study plus per-batch reports."""

    result: StudyResult
    reports: tuple[BatchReport, ...] = field(repr=False)


class StreamStudy:
    """Incremental IXP study over a feed of measurement batches.

    Mirrors :func:`~repro.pipeline.study.run_ixp_study`'s keyword
    surface where the stages overlap; ``live_refits=False`` skips the
    advisory per-batch refits (state accumulation and the finalized
    table are unaffected) for feeds where only the final table matters.
    ``live_placebo_every`` sets the live layer's placebo-amortization
    period (see :mod:`repro.stream.refit`); ``1`` means full placebo
    inference on every refit.
    """

    def __init__(
        self,
        ixp_name: str,
        *,
        method: str = "robust",
        min_pre_periods: int = 7,
        min_post_periods: int = 3,
        max_donor_missing: float = 0.5,
        max_placebos: int | None = None,
        energy: float = 0.99,
        ridge: float = 1e-2,
        outcome: str = "rtt_ms",
        n_jobs: int | None = 1,
        retry: RetryPolicy | None = None,
        checkpoint: str | Path | None = None,
        resume: bool = False,
        live_refits: bool = True,
        live_placebo_every: int = 4,
        batch_fits: bool = True,
        telemetry: object | None = None,
    ) -> None:
        self.ixp_name = ixp_name
        self._method = method
        self._min_pre = min_pre_periods
        self._min_post = min_post_periods
        self._max_missing = max_donor_missing
        self._max_placebos = max_placebos
        self._energy = energy
        self._ridge = ridge
        self._outcome = outcome
        self._n_jobs = n_jobs
        self._retry = retry
        self._batch_fits = batch_fits
        self._live = live_refits and method == "robust"
        self._epoch = 0
        self._panel_acc = PanelAccumulator(outcome=outcome)
        self._assign_acc = AssignmentAccumulator(ixp_name)
        self._refitter = LiveRefitter(
            energy=energy,
            ridge=ridge,
            max_placebos=max_placebos,
            min_pre_periods=min_pre_periods,
            min_post_periods=min_post_periods,
            max_donor_missing=max_donor_missing,
            placebo_every=live_placebo_every,
        )
        self.reports: list[BatchReport] = []
        #: Telemetry sink, duck-typed to
        #: :class:`repro.obs.serve.TelemetryPublisher` (``publish_batch``
        #: / ``publish_final``).  Publication is observation only — it
        #: runs after the batch's state and journal writes, so rows are
        #: identical with telemetry on or off.
        self._telemetry = telemetry
        self._ckpt: StudyCheckpoint | None = None
        if checkpoint is not None:
            self._ckpt = StudyCheckpoint(
                checkpoint,
                ixp_name=ixp_name,
                method=method,
                outcome=outcome,
                resume=resume,
            )

    @property
    def panel(self):
        """The panel accumulated so far."""
        return self._panel_acc.panel

    def assignment(self):
        """The treatment assignment over everything ingested so far."""
        return self._assign_acc.assignment()

    def ingest(self, batch: MeasurementBatch) -> BatchReport:
        """Absorb one measurement batch; returns what it changed."""
        t0 = time.perf_counter()
        replayed = False
        if self._ckpt is not None:
            journaled = self._ckpt.completed_batches.get(batch.index)
            if journaled is not None:
                if journaled != batch.n_rows:
                    raise CheckpointError(
                        f"checkpoint journaled batch {batch.index} with "
                        f"{journaled} rows but the replayed batch has "
                        f"{batch.n_rows}; the feed does not match the "
                        f"checkpoint — pass a fresh checkpoint path"
                    )
                replayed = True
        metrics = get_metrics()
        with span("ingest", batch=batch.index, rows=batch.n_rows) as sp:
            fault_point("stream.batch", key=str(batch.index))
            with span("panel.apply"):
                delta = self._panel_acc.apply(batch.frame)
            if delta.edited_old_times:
                # An existing panel row changed; every cached warm-start
                # factorization is built on stale rows now.
                self._epoch += 1
            with span("assignment.apply"):
                self._assign_acc.apply(batch.frame)
            refits = 0
            warm0, cold0 = self._refitter.warm_refits, self._refitter.cold_refits
            placebo0 = self._refitter.placebo_refreshes
            if self._live and not replayed:
                assignment = self._assign_acc.assignment()
                treated = set(assignment.treated_units)
                for unit in delta.dirty_units:
                    if unit not in treated:
                        continue
                    with span("refit.unit", unit=unit):
                        self._refitter.refresh(
                            self._panel_acc.panel, assignment, unit, self._epoch
                        )
                    refits += 1
            seconds = time.perf_counter() - t0
            sp.set(
                n_dirty_units=len(delta.dirty_units),
                n_refits=refits,
                replayed=replayed,
            )
        metrics.counter("stream_batches_total", "measurement batches ingested").inc()
        metrics.counter(
            "stream_rows_total", "measurement rows ingested via the stream"
        ).inc(batch.n_rows)
        metrics.histogram(
            "stream_dirty_units", COUNT_BUCKETS, "dirty units per ingested batch"
        ).observe(len(delta.dirty_units))
        metrics.histogram(
            "stream_batch_seconds", SECONDS_BUCKETS, "wall seconds per ingested batch"
        ).observe(seconds)
        if self._ckpt is not None and not replayed:
            self._ckpt.append_batch(batch.index, batch.n_rows)
        report = BatchReport(
            index=batch.index,
            n_rows=batch.n_rows,
            n_dirty_units=len(delta.dirty_units),
            n_dirty_cells=delta.n_dirty_cells,
            n_refits=refits,
            warm_refits=self._refitter.warm_refits - warm0,
            cold_refits=self._refitter.cold_refits - cold0,
            seconds=seconds,
            replayed=replayed,
            placebo_refreshes=self._refitter.placebo_refreshes - placebo0,
        )
        self.reports.append(report)
        if self._telemetry is not None:
            live = self.live_result() if self._live else None
            self._telemetry.publish_batch(
                report,
                live_summary=None if live is None else _live_summary(live),
            )
        return report

    def live_result(self) -> StudyResult:
        """The advisory study as of the last live refit.

        Rows come from the refitter's cached per-unit states, in
        treatment order; units it has not fitted (or could not) land in
        ``skipped``.  Use :meth:`finalize` for the shipped table.
        """
        assignment = self._assign_acc.assignment()
        rows: list[StudyRow] = []
        skipped: list[tuple[str, str]] = []
        for unit in assignment.treated_units:
            state = self._refitter.state(unit)
            if state is None:
                skipped.append((unit, "no live refit yet"))
            elif state.row is not None:
                rows.append(state.row)
            else:
                skipped.append((unit, state.skip_reason or "refit failed"))
        return StudyResult(
            rows=tuple(rows), assignment=assignment, skipped=tuple(skipped)
        )

    def finalize(self, *, n_jobs: int | None = None) -> StudyResult:
        """Run the batch study's fit stage over the accumulated state.

        This is the exact code path ``run_ixp_study`` uses after its
        panel/assignment stages — including per-unit checkpoint journal
        and resume, retries, and the shared-memory fan-out — so the
        returned rows are bit-identical to the batch study's on the
        same measurements, independent of how they were batched.
        """
        if self._panel_acc.n_rows == 0:
            raise PipelineError("cannot finalize a stream with no ingested batches")
        if n_jobs is None:
            n_jobs = self._n_jobs
        assignment = self._assign_acc.assignment()
        panel = self._panel_acc.panel
        workers = resolve_n_jobs(n_jobs)
        owner: SharedPanelOwner | None = None
        try:
            if workers > 1:
                owner = SharedPanelOwner.from_panel(panel)
                panel = owner.panel
            fit_kwargs: dict[str, object] = {}
            if self._method == "robust":
                fit_kwargs = {"energy": self._energy, "ridge": self._ridge}
            with span("finalize", ixp=self.ixp_name, n_jobs=n_jobs):
                plan = prepare_unit_plan(
                    panel,
                    assignment,
                    min_pre_periods=self._min_pre,
                    min_post_periods=self._min_post,
                    max_donor_missing=self._max_missing,
                    method=self._method,
                    max_placebos=self._max_placebos,
                    fit_kwargs=tuple(sorted(fit_kwargs.items())),
                    task_panel=owner.ref if owner is not None else panel,
                )
                rows, skipped = execute_unit_plan(
                    plan,
                    n_jobs=n_jobs,
                    retry=self._retry,
                    owner=owner,
                    checkpoint=self._ckpt,
                    batch_fits=self._batch_fits,
                )
        finally:
            if owner is not None:
                owner.close()
            self.close()
        result = StudyResult(
            rows=tuple(rows), assignment=assignment, skipped=tuple(skipped)
        )
        if self._telemetry is not None:
            self._telemetry.publish_final(result)
        return result

    def run(self, batches) -> StreamOutcome:
        """Ingest a whole feed, finalize, and return both views."""
        for batch in batches:
            self.ingest(batch)
        result = self.finalize()
        return StreamOutcome(result=result, reports=tuple(self.reports))

    def close(self) -> None:
        """Close the checkpoint journal, if any (idempotent)."""
        if self._ckpt is not None:
            self._ckpt.close()

    def __enter__(self) -> "StreamStudy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
