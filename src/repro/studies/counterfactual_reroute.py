"""E4 — the counterfactual box: exposure is not impact (Xaminer critique).

The paper's fourth box: simulating physical failures and tracing which
paths cross the failed element maps *exposure*, but without modelling
how routing responds it "conflates exposure with impact".  This study
quantifies the gap on the simulator:

- **exposure analysis** (what the criticised tool does): which sources'
  current best paths cross the failed link — implicitly assuming they
  all lose the path's service;
- **counterfactual analysis** (what the paper asks for): re-run BGP
  with the link dead and measure what actually happens — most sources
  reconverge onto alternates with a bounded RTT penalty, and only the
  truly cut-off ones lose connectivity.

It also runs the unit-level video-call counterfactual from §3 via the
SCM machinery: "would quality have been better had the route change
not occurred?".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.bgp import LinkKey, affected_sources, compute_routes
from repro.netsim.scenario import Scenario, build_table1_scenario
from repro.scm.counterfactual import CounterfactualResult, counterfactual
from repro.scm.mechanisms import GaussianNoise, LinearMechanism
from repro.scm.model import StructuralCausalModel


@dataclass(frozen=True)
class RerouteImpact:
    """Exposure vs actual impact of one link failure.

    Attributes
    ----------
    failed_link:
        The link taken down.
    exposed_sources:
        ASes whose pre-failure best path crossed the link (the
        exposure map).
    disconnected_sources:
        ASes with no route at all after reconvergence (true loss).
    rtt_penalty_ms:
        Per-AS RTT change after reconvergence, for exposed ASes that
        stayed connected.
    """

    failed_link: LinkKey
    exposed_sources: tuple[int, ...]
    disconnected_sources: tuple[int, ...]
    rtt_penalty_ms: dict[int, float]

    @property
    def n_exposed(self) -> int:
        """Size of the exposure map."""
        return len(self.exposed_sources)

    @property
    def n_disconnected(self) -> int:
        """How many exposed sources actually lost connectivity."""
        return len(self.disconnected_sources)

    @property
    def mean_penalty_ms(self) -> float:
        """Mean RTT penalty among survivors (0 when none exposed)."""
        vals = list(self.rtt_penalty_ms.values())
        return sum(vals) / len(vals) if vals else 0.0

    def format_report(self) -> str:
        """The exposure-vs-impact contrast."""
        return "\n".join(
            [
                f"failed link: AS{self.failed_link[0]}-AS{self.failed_link[1]}",
                f"exposure analysis:        {self.n_exposed} source ASes 'at risk'",
                f"counterfactual analysis:  {self.n_disconnected} actually disconnected; "
                f"the rest rerouted with a mean RTT penalty of {self.mean_penalty_ms:+.1f} ms",
            ]
        )


def run_reroute_experiment(
    scenario: Scenario | None = None,
    failed_link: LinkKey | None = None,
    hour: float = 12.0,
) -> RerouteImpact:
    """Fail a link and contrast exposure with post-reconvergence impact.

    Defaults to the Table-1 world and its busiest link (regional transit
    to the CDN), which every non-IXP access path crosses.
    """
    if scenario is None:
        scenario = build_table1_scenario(n_donor_ases=12, duration_days=4, join_day=2)
    state = scenario.timeline.state_at(hour)
    topo = state.topology
    destination = scenario.content_asn
    before = compute_routes(topo, destination, set(state.dead_links))
    if failed_link is None:
        failed_link = (
            min(64611, destination),
            max(64611, destination),
        )
    exposed = tuple(
        a for a in affected_sources(before, failed_link) if a != destination
    )
    after = compute_routes(
        topo, destination, set(state.dead_links) | {failed_link}
    )
    disconnected = tuple(sorted(a for a in exposed if a not in after))
    penalties: dict[int, float] = {}
    for asn in exposed:
        if asn in after:
            rtt_before = scenario.latency.expected_rtt(before[asn], hour, topology=topo)
            rtt_after = scenario.latency.expected_rtt(after[asn], hour, topology=topo)
            penalties[asn] = rtt_after - rtt_before
    return RerouteImpact(
        failed_link=failed_link,
        exposed_sources=exposed,
        disconnected_sources=disconnected,
        rtt_penalty_ms=penalties,
    )


#: Structural effect of the reroute on call quality (negative: it hurt).
TRUE_REROUTE_EFFECT = -1.2


def video_call_model() -> StructuralCausalModel:
    """§3's video-call world as an additive-noise SCM.

    ``congestion`` pushes operators to reroute and also degrades quality
    directly; the reroute itself carries its own (negative) effect.
    """
    return StructuralCausalModel(
        {
            "congestion": (LinearMechanism({}), GaussianNoise(1.0)),
            "rerouted": (
                LinearMechanism({"congestion": 0.7}),
                GaussianNoise(0.4),
            ),
            "quality": (
                LinearMechanism(
                    {"rerouted": TRUE_REROUTE_EFFECT, "congestion": -0.8},
                    intercept=4.5,
                ),
                GaussianNoise(0.2),
            ),
        }
    )


def would_quality_have_been_better(
    observation: dict[str, float],
) -> CounterfactualResult:
    """The §3 counterfactual: same situation, but the reroute undone.

    *observation* must contain ``congestion``, ``rerouted`` and
    ``quality`` for the degraded call.  Returns the twin-world result;
    ``result.effect_on("quality")`` answers the question directly.
    """
    return counterfactual(video_call_model(), observation, {"rerouted": 0.0})
