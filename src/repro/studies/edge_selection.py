"""E7 — resolver rotation as an instrument for CDN edge selection (§4.3).

The paper's exogenous-knobs list includes "rotating DNS resolvers to
shift CDN edge selection".  This study builds a two-edge CDN (a local
Johannesburg edge and a London edge), puts a South African client
behind it, and contrasts three DNS regimes:

- **geo** — the ISP resolver maps to the nearest edge (best case);
- **public_resolver** — a centralised resolver maps everyone to the
  edge nearest *itself* (the classic mis-mapping: the client ends up
  on the London edge);
- **rotate** — the experiment knob: random edge per test, so the
  nearest-vs-remote RTT contrast measured under it is causal, and it
  quantifies exactly what the mis-mapping costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frames.frame import Frame
from repro.netsim.cdn import (
    CdnDeployment,
    CdnEdge,
    edge_selection_contrast,
    run_resolver_experiment,
)
from repro.netsim.congestion import CongestionModel, DiurnalProfile
from repro.netsim.geo import default_catalog
from repro.netsim.ids import PrefixAllocator
from repro.netsim.latency import LatencyModel
from repro.netsim.topology import AsKind, AutonomousSystem, Topology


@dataclass(frozen=True)
class EdgeSelectionOutput:
    """RTTs under the three DNS regimes plus the causal edge contrast.

    Attributes
    ----------
    median_rtt_geo, median_rtt_public, median_rtt_rotate:
        Median RTT per regime.
    edge_penalty_ms:
        Causal RTT cost of the remote edge (from the rotate arm).
    misconfiguration_cost_ms:
        Median RTT difference between the public-resolver and geo
        regimes — what the centralised resolver costs this client.
    """

    median_rtt_geo: float
    median_rtt_public: float
    median_rtt_rotate: float
    edge_penalty_ms: float
    misconfiguration_cost_ms: float

    def format_report(self) -> str:
        """Summary table."""
        return "\n".join(
            [
                f"median RTT, ISP resolver (geo mapping):     {self.median_rtt_geo:7.1f} ms",
                f"median RTT, public resolver (mis-mapped):   {self.median_rtt_public:7.1f} ms",
                f"median RTT, rotating resolver (randomized): {self.median_rtt_rotate:7.1f} ms",
                "",
                f"causal penalty of the remote edge (rotate arm): {self.edge_penalty_ms:+.1f} ms",
                f"cost of the centralised resolver:               {self.misconfiguration_cost_ms:+.1f} ms",
            ]
        )


def _build_world() -> tuple[CdnDeployment, LatencyModel, int, str]:
    cities = default_catalog()
    prefixes = PrefixAllocator("10.64.0.0/10")
    topo = Topology()

    def make(asn: int, name: str, kind: AsKind, city: str) -> AutonomousSystem:
        asys = AutonomousSystem(
            asn=asn, name=name, kind=kind, city=city, router_prefix=prefixes.allocate()
        )
        topo.add_as(asys)
        return asys

    transit_za = make(65301, "ZA-Transit", AsKind.TRANSIT, "Johannesburg")
    transit_eu = make(65302, "EU-Transit", AsKind.TIER1, "London")
    edge_jnb = make(65311, "CDN-Edge-JNB", AsKind.CONTENT, "Johannesburg")
    edge_lon = make(65312, "CDN-Edge-LON", AsKind.CONTENT, "London")
    client = make(65320, "AccessISP", AsKind.ACCESS, "Durban")
    topo.add_p2p(transit_za.asn, transit_eu.asn)
    topo.add_c2p(edge_jnb.asn, transit_za.asn)
    topo.add_c2p(edge_lon.asn, transit_eu.asn)
    topo.add_c2p(client.asn, transit_za.asn)

    congestion = CongestionModel(
        profiles={
            "ZA": DiurnalProfile(base=0.5, amplitude=0.2, timezone_offset=2.0),
            "GB": DiurnalProfile(base=0.45, amplitude=0.15),
        },
        noise_std=0.03,
    )
    latency = LatencyModel(topo, cities, congestion, noise_std_ms=2.0)
    cdn = CdnDeployment(
        topo,
        cities,
        edges=[CdnEdge(edge_jnb.asn, "Johannesburg"), CdnEdge(edge_lon.asn, "London")],
        resolver_city="Frankfurt",
    )
    return cdn, latency, client.asn, "Durban"


def run_edge_selection_experiment(
    n_tests: int = 2000,
    seed: int = 0,
) -> EdgeSelectionOutput:
    """Run all three resolver regimes over the two-edge world."""
    cdn, latency, client_asn, client_city = _build_world()

    def median_rtt(frame: Frame) -> float:
        return float(np.median(frame.numeric("rtt_ms")))

    geo = run_resolver_experiment(
        cdn, latency, client_asn, client_city, "geo", n_tests, rng=seed
    )
    public = run_resolver_experiment(
        cdn, latency, client_asn, client_city, "public_resolver", n_tests, rng=seed + 1
    )
    rotate = run_resolver_experiment(
        cdn, latency, client_asn, client_city, "rotate", n_tests, rng=seed + 2
    )
    return EdgeSelectionOutput(
        median_rtt_geo=median_rtt(geo),
        median_rtt_public=median_rtt(public),
        median_rtt_rotate=median_rtt(rotate),
        edge_penalty_ms=edge_selection_contrast(rotate),
        misconfiguration_cost_ms=median_rtt(public) - median_rtt(geo),
    )
