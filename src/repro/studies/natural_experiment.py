"""E3 — natural experiments: valid vs invalid instruments.

Two halves, matching §3's discussion:

1. **Invalid instrument** (the IMC'21 box and the local-pref example):
   an operator's policy change shifts routing *and* directly alters
   upstream congestion, violating the exclusion restriction.  The IV
   estimate is biased even though the first stage is strong — the
   quantitative version of "normalising for observables does not make
   variation exogenous".
2. **Valid instrument**: a *scheduled maintenance window* whose timing
   was fixed in advance moves routing but touches the outcome only
   through the route, so the Wald/2SLS estimate recovers the truth.

Both worlds are SCMs with known structural effects; the graphical
validity of each candidate is checked with
:func:`repro.graph.is_instrument` so structure and estimate agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.estimators.iv import two_stage_least_squares, wald_estimate
from repro.estimators.ols import fit_ols
from repro.frames.frame import Frame
from repro.graph.dag import CausalDag
from repro.graph.instruments import explain_instrument, is_instrument
from repro.scm.mechanisms import BernoulliMechanism, GaussianNoise, LinearMechanism, UniformNoise
from repro.scm.model import StructuralCausalModel

#: True structural effect of being on the alternate route, in both worlds.
TRUE_ROUTE_EFFECT = 3.0


@dataclass(frozen=True)
class InstrumentStudyOutput:
    """Estimates under a valid and an invalid instrument.

    Attributes
    ----------
    naive_ols:
        Confounded regression of latency on route (biased in both worlds).
    valid_iv, invalid_iv:
        Wald estimates under each instrument.
    valid_is_instrument, invalid_is_instrument:
        The graphical verdicts (True / False respectively).
    true_effect:
        Ground truth both should be compared against.
    explanations:
        Prose verdicts from :func:`explain_instrument`.
    """

    naive_ols: float
    valid_iv: float
    invalid_iv: float
    valid_is_instrument: bool
    invalid_is_instrument: bool
    true_effect: float
    explanations: dict[str, str]

    def format_report(self) -> str:
        """Summary with the key contrasts."""
        return "\n".join(
            [
                f"true effect of the route on latency: {self.true_effect:+.2f}",
                f"naive OLS (confounded):              {self.naive_ols:+.2f}",
                f"IV with scheduled maintenance:       {self.valid_iv:+.2f}"
                f"   (graphically valid: {self.valid_is_instrument})",
                f"IV with policy change:               {self.invalid_iv:+.2f}"
                f"   (graphically valid: {self.invalid_is_instrument} — exclusion violated)",
            ]
        )


def maintenance_dag() -> CausalDag:
    """The valid-instrument world.

    ``maintenance`` (scheduled, exogenous) forces the alternate route;
    latent ``demand`` confounds route and latency.
    """
    return CausalDag(
        edges=[
            ("maintenance", "alt_route"),
            ("demand", "alt_route"),
            ("demand", "latency"),
            ("alt_route", "latency"),
        ],
        unobserved=["demand"],
    )


def policy_dag() -> CausalDag:
    """The invalid-instrument world.

    The ``policy_change`` also shifts upstream ``congestion`` directly
    (the paper's local-preference example), opening a second causal
    channel to latency: exclusion fails.
    """
    return CausalDag(
        edges=[
            ("policy_change", "alt_route"),
            ("policy_change", "congestion"),
            ("congestion", "latency"),
            ("demand", "alt_route"),
            ("demand", "latency"),
            ("alt_route", "latency"),
        ],
        unobserved=["demand", "congestion"],
    )


def maintenance_model() -> StructuralCausalModel:
    """SCM for the valid world (maintenance moves ~half of route choice)."""
    return StructuralCausalModel(
        {
            "maintenance": (BernoulliMechanism({}, intercept=0.0), UniformNoise()),
            "demand": (LinearMechanism({}), GaussianNoise(1.0)),
            "alt_route": (
                LinearMechanism({"maintenance": 0.6, "demand": 0.3}),
                GaussianNoise(0.3),
            ),
            "latency": (
                LinearMechanism(
                    {"alt_route": TRUE_ROUTE_EFFECT, "demand": 2.0}, intercept=40.0
                ),
                GaussianNoise(1.0),
            ),
        },
        dag=maintenance_dag(),
    )


def policy_model(direct_channel: float = 2.5) -> StructuralCausalModel:
    """SCM for the invalid world; *direct_channel* sizes the violation."""
    return StructuralCausalModel(
        {
            "policy_change": (BernoulliMechanism({}, intercept=0.0), UniformNoise()),
            "demand": (LinearMechanism({}), GaussianNoise(1.0)),
            "congestion": (
                LinearMechanism({"policy_change": direct_channel}),
                GaussianNoise(0.5),
            ),
            "alt_route": (
                LinearMechanism({"policy_change": 0.6, "demand": 0.3}),
                GaussianNoise(0.3),
            ),
            "latency": (
                LinearMechanism(
                    {"alt_route": TRUE_ROUTE_EFFECT, "demand": 2.0, "congestion": 1.0},
                    intercept=40.0,
                ),
                GaussianNoise(1.0),
            ),
        },
        dag=policy_dag(),
    )


def run_instrument_experiment(
    n_samples: int = 20_000,
    seed: int = 0,
) -> InstrumentStudyOutput:
    """Generate both worlds and contrast the IV estimates against truth."""
    valid_data = maintenance_model().sample(n_samples, rng=seed)
    invalid_data = policy_model().sample(n_samples, rng=seed + 1)

    naive = fit_ols(
        valid_data["latency"], {"alt_route": valid_data["alt_route"]}
    ).coefficient("alt_route")
    valid = wald_estimate(valid_data, "maintenance", "alt_route", "latency")
    invalid = wald_estimate(invalid_data, "policy_change", "alt_route", "latency")

    return InstrumentStudyOutput(
        naive_ols=naive,
        valid_iv=valid.effect,
        invalid_iv=invalid.effect,
        valid_is_instrument=is_instrument(
            maintenance_dag(), "maintenance", "alt_route", "latency"
        ),
        invalid_is_instrument=is_instrument(
            policy_dag(), "policy_change", "alt_route", "latency"
        ),
        true_effect=TRUE_ROUTE_EFFECT,
        explanations={
            "maintenance": explain_instrument(
                maintenance_dag(), "maintenance", "alt_route", "latency"
            ),
            "policy_change": explain_instrument(
                policy_dag(), "policy_change", "alt_route", "latency"
            ),
        },
    )


def run_platform_knob_experiment(
    n_tests: int = 2_000,
    seed: int = 0,
) -> dict[str, float]:
    """The §4.3 version: a platform route-toggle as a built-in instrument.

    Uses :class:`repro.mplatform.RouteToggle` on the Table-1 world: the
    knob randomly forces AS3741 off its IXP peering session (post-join),
    and 2SLS on the toggle recovers the IXP-vs-transit RTT difference.
    Returns the estimate alongside the simulator's expected contrast.
    """
    from repro.mplatform.knobs import RouteToggle
    from repro.netsim.scenario import build_table1_scenario

    scenario = build_table1_scenario(
        n_donor_ases=8, duration_days=10, join_day=3, seed=seed
    )
    asn = 3741
    hour = scenario.join_hours[asn] + 24.0
    toggle = RouteToggle(
        scenario,
        client_asn=asn,
        disable_link=(asn, scenario.content_asn),
        hour=hour,
    )
    tests = toggle.run_experiment(n_tests, rng=seed)
    est = two_stage_least_squares(tests, "z", "on_alt_route", "rtt_ms")
    state = scenario.timeline.state_at(hour)
    expected = scenario.latency.expected_rtt(
        toggle.arm_b.route, hour, topology=state.topology
    ) - scenario.latency.expected_rtt(
        toggle.arm_a.route, hour, topology=state.topology
    )
    return {
        "iv_estimate_ms": est.effect,
        "expected_contrast_ms": expected,
        "first_stage_f": float(est.details["first_stage_f"]),
    }


def observational_frame(n_samples: int = 20_000, seed: int = 0) -> Frame:
    """Sampled data from the valid-instrument world (helper for examples)."""
    return maintenance_model().sample(n_samples, rng=seed)
