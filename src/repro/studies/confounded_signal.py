"""E1 — the confounding box: cellular reliability (SIGCOMM'21 critique).

The paper's first boxed example: a study found *higher* failure rates at
the *strongest* signal levels; the anomaly traces to deployment density
(transit hubs pack cells densely, raising both signal strength and
interference-driven failures).  We encode exactly that structure as an
SCM — density -> signal, density -> failure, signal -> failure (weakly
protective) — and show the naive association flips the sign of the true
effect, while backdoor adjustment for density recovers it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.estimators.adjustment import regression_adjustment
from repro.estimators.base import EffectEstimate, naive_difference
from repro.frames.frame import Frame
from repro.graph.dag import CausalDag
from repro.scm.mechanisms import BernoulliMechanism, GaussianNoise, LinearMechanism, UniformNoise
from repro.scm.model import StructuralCausalModel


@dataclass(frozen=True)
class ConfoundingStudyOutput:
    """The experiment's contrast: naive vs adjusted vs truth.

    Attributes
    ----------
    naive:
        Unadjusted signal-failure association (confounded; wrong sign).
    adjusted:
        Backdoor-adjusted estimate (sign-correct).
    true_effect:
        The structural coefficient of signal on failure propensity.
    data:
        The generated sample.
    """

    naive: EffectEstimate
    adjusted: EffectEstimate
    true_effect: float
    data: Frame

    @property
    def naive_sign_wrong(self) -> bool:
        """Whether confounding flipped the sign (the box's anomaly)."""
        return (self.naive.effect > 0) != (self.true_effect > 0)

    def format_report(self) -> str:
        """Three-line summary of the contrast."""
        return "\n".join(
            [
                f"true structural effect of strong signal on failure: {self.true_effect:+.3f}",
                f"naive association:   {self.naive.effect:+.3f} "
                f"({'SIGN FLIPPED by confounding' if self.naive_sign_wrong else 'same sign'})",
                f"density-adjusted:    {self.adjusted.effect:+.3f} "
                f"(backdoor adjustment for deployment density)",
            ]
        )


#: Structural coefficient of strong signal on failure (protective).
TRUE_SIGNAL_EFFECT = -0.08


def cellular_dag() -> CausalDag:
    """The box's causal structure."""
    return CausalDag(
        edges=[
            ("density", "strong_signal"),
            ("density", "failure"),
            ("strong_signal", "failure"),
        ]
    )


def cellular_model(
    density_to_signal: float = 2.0,
    density_to_failure: float = 0.25,
    signal_effect: float = TRUE_SIGNAL_EFFECT,
) -> StructuralCausalModel:
    """The SCM behind the box.

    ``density`` (standardised deployment density) raises the odds of a
    strong signal *and* directly raises failure probability
    (interference, handover overhead); strong signal itself is mildly
    protective.  Failure is linear-probability so the structural
    coefficient is directly comparable to the estimators' output.
    """
    return StructuralCausalModel(
        {
            "density": (LinearMechanism({}), GaussianNoise(1.0)),
            "strong_signal": (
                BernoulliMechanism({"density": density_to_signal}),
                UniformNoise(),
            ),
            "failure": (
                LinearMechanism(
                    {"density": density_to_failure, "strong_signal": signal_effect},
                    intercept=0.3,
                ),
                GaussianNoise(0.05),
            ),
        },
        dag=cellular_dag(),
    )


def run_confounding_experiment(
    n_samples: int = 20_000,
    seed: int = 0,
) -> ConfoundingStudyOutput:
    """Generate the box's data and contrast naive vs adjusted estimates."""
    model = cellular_model()
    data = model.sample(n_samples, rng=seed)
    naive = naive_difference(data, "strong_signal", "failure")
    adjusted = regression_adjustment(
        data,
        "strong_signal",
        "failure",
        dag=cellular_dag(),  # resolves the adjustment set {density} itself
    )
    return ConfoundingStudyOutput(
        naive=naive,
        adjusted=adjusted,
        true_effect=TRUE_SIGNAL_EFFECT,
        data=data,
    )
