"""E5 — randomization as the gold standard: the M-Lab load balancer.

§3 holds up M-Lab's random site assignment as "effectively a randomized
experiment".  This study makes that quantitative: the same two-site
metro generates tests under random assignment (the real M-Lab
mechanism) and under self-selection (the counterfactual world where
clients pick sites); the randomized contrast recovers the true routing
penalty while the self-selected one is biased.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.estimators.adjustment import regression_adjustment
from repro.mplatform.loadbalancer import (
    LoadBalancerWorld,
    default_world,
    generate_tests,
    site_contrast,
)


@dataclass(frozen=True)
class RandomizationStudyOutput:
    """Contrasts under the two assignment policies.

    Attributes
    ----------
    randomized_contrast:
        Site-B-minus-site-A mean RTT under random assignment.
    self_selected_contrast:
        The same contrast when clients self-select (biased).
    adjusted_self_selected:
        Self-selected data after regression adjustment for the observed
        congestion covariate (recovers truth *only because* the
        confounder happens to be fully observed here).
    true_effect:
        Ground-truth causal site difference.
    """

    randomized_contrast: float
    self_selected_contrast: float
    adjusted_self_selected: float
    true_effect: float

    @property
    def selection_bias(self) -> float:
        """Bias the self-selection introduced."""
        return self.self_selected_contrast - self.true_effect

    def format_report(self) -> str:
        """Summary of the randomization demonstration."""
        return "\n".join(
            [
                f"true causal site difference (B - A):    {self.true_effect:+.2f} ms",
                f"randomized assignment (M-Lab policy):   {self.randomized_contrast:+.2f} ms",
                f"self-selected assignment:               {self.self_selected_contrast:+.2f} ms"
                f"   (bias {self.selection_bias:+.2f})",
                f"self-selected + congestion adjustment:  {self.adjusted_self_selected:+.2f} ms",
            ]
        )


def run_randomization_experiment(
    n_tests: int = 30_000,
    seed: int = 0,
    world: LoadBalancerWorld | None = None,
) -> RandomizationStudyOutput:
    """Run both assignment policies over the same metro world."""
    world = world or default_world()
    randomized = generate_tests(world, n_tests, policy="randomized", rng=seed)
    selected = generate_tests(world, n_tests, policy="self_selected", rng=seed + 1)
    adjusted = regression_adjustment(
        selected, "site", "rtt_ms", adjustment=["congestion"]
    )
    return RandomizationStudyOutput(
        randomized_contrast=site_contrast(randomized),
        self_selected_contrast=site_contrast(selected),
        adjusted_self_selected=adjusted.effect,
        true_effect=world.true_site_effect,
    )
