"""E6 — PoiRoot-style root-cause attribution via BGP poisoning.

§2 of the paper points to PoiRoot as an existence proof that causal
inference already works on the Internet: BGP poisoning is an
intervention whose timing the experimenter controls, so it can isolate
*which* AS caused an observed path change.  This study stages a route
change in the simulator (an AS silently loses the destination's route),
observes only the before/after paths — what a passive measurement
study would see — and shows that:

- **passive observation alone** cannot distinguish the true cause from
  other on-path candidates (several hypotheses fit the same evidence);
- **active poisoning probes** identify the responsible AS exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.netsim.bgp import compute_routes
from repro.netsim.poisoning import PoisoningExperiment, RootCauseVerdict
from repro.netsim.scenario import Scenario, build_table1_scenario


@dataclass(frozen=True)
class RootCauseStudyOutput:
    """The staged change and both diagnoses.

    Attributes
    ----------
    source_asn, destination_asn:
        The measured path's endpoints.
    old_path, new_path:
        AS paths before and after the staged event.
    true_cause_asn:
        The AS we actually made lose the route (ground truth).
    passive_candidates:
        Every on-path AS a passive observer cannot rule out.
    verdict:
        The active poisoning experiment's attribution.
    """

    source_asn: int
    destination_asn: int
    old_path: tuple[int, ...]
    new_path: tuple[int, ...]
    true_cause_asn: int
    passive_candidates: tuple[int, ...]
    verdict: RootCauseVerdict

    @property
    def attribution_correct(self) -> bool:
        """Whether active probing named the true cause."""
        return self.verdict.suspect_asn == self.true_cause_asn

    def format_report(self) -> str:
        """Passive-vs-active contrast."""
        return "\n".join(
            [
                f"observed: AS{self.source_asn}'s path to AS{self.destination_asn} "
                f"changed from {self.old_path} to {self.new_path}",
                f"passive analysis: any of {list(self.passive_candidates)} could "
                "be responsible (the data cannot distinguish them)",
                f"active poisoning: suspect = AS{self.verdict.suspect_asn} "
                f"({'CORRECT' if self.attribution_correct else 'WRONG'}; "
                f"true cause was AS{self.true_cause_asn})",
                "",
                self.verdict.explanation,
            ]
        )


def run_root_cause_experiment(
    scenario: Scenario | None = None,
    hour: float = 0.0,
) -> RootCauseStudyOutput:
    """Stage a route change and attribute it with poisoning probes.

    Uses a dual-homed access network from the Table-1 world; the staged
    event is its primary upstream losing the route to the CDN.
    """
    if scenario is None:
        scenario = build_table1_scenario(
            n_donor_ases=20, duration_days=4, join_day=2, seed=0
        )
    state = scenario.timeline.state_at(hour)
    topo = state.topology
    destination = scenario.content_asn

    # Prefer a source whose path has >= 2 intermediate ASes, so passive
    # observation genuinely cannot pin down the culprit.
    before = compute_routes(topo, destination, set(state.dead_links))
    source = None
    for asn, asys in sorted(topo.ases.items()):
        if asys.kind.value != "access":
            continue
        route = before.get(asn)
        if route is not None and len(route.path) >= 4:
            source = asn
            break
    if source is None:  # fall back to any routed access AS
        for asn, asys in sorted(topo.ases.items()):
            if asys.kind.value == "access" and asn in before:
                source = asn
                break
    if source is None:
        raise SimulationError("scenario has no routed access AS")

    old_path = before[source].path
    # Staged event: the AS adjacent to the destination silently loses
    # its session to it (a withdrawal upstream of the source).
    true_cause = old_path[-2]
    dead = set(state.dead_links)
    key = (min(true_cause, destination), max(true_cause, destination))
    if key not in topo.links:
        raise SimulationError("staged session does not exist")
    dead.add(key)
    after = compute_routes(topo, destination, dead)
    if source not in after:
        raise SimulationError("staged event disconnected the source entirely")
    new_path = after[source].path
    if new_path == old_path:
        raise SimulationError("staged event did not change the route")

    # A passive observer sees the two paths and can only enumerate
    # hypotheses: any AS on the old path (or its sessions) might have
    # caused the withdrawal.
    passive = tuple(old_path[1:-1])

    experiment = PoisoningExperiment(topo, scenario.latency, hour=hour)
    verdict = experiment.attribute_change(source, destination, old_path, new_path)
    return RootCauseStudyOutput(
        source_asn=source,
        destination_asn=destination,
        old_path=old_path,
        new_path=new_path,
        true_cause_asn=true_cause,
        passive_candidates=passive,
        verdict=verdict,
    )
