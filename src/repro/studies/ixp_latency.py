"""The Table-1 case study, end to end: does joining an IXP reduce latency?

Builds the South-Africa-like world, generates user-initiated speed tests
with post-test traceroutes, detects first NAPAfrica-JNB crossings,
applies robust synthetic control per treated ⟨ASN, city⟩, and returns
the paper's table — plus simulator ground truth, which the paper could
never have and which lets tests assert the estimator is honest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.frames.frame import Frame
from repro.mplatform.speedtest import measurements_frame
from repro.netsim.scenario import Scenario, build_table1_scenario
from repro.obs import span
from repro.pipeline.executor import RetryPolicy
from repro.pipeline.study import StudyResult, run_ixp_study


def scenario_truth(scenario: Scenario) -> dict[str, float]:
    """Simulator ground truth per treated unit, keyed by unit label.

    The label format (``AS{asn}/{city}``) matches
    :func:`repro.pipeline.study.parse_unit_label`, so the dict joins
    directly against estimated rows — used by both the Table-1
    experiment and the campaign verdict table.
    """
    return {
        f"AS{asn}/{city}": scenario.true_effect(asn, city)
        for asn, city in scenario.treated_units
    }


@dataclass(frozen=True)
class IxpStudyOutput:
    """Everything the Table-1 experiment produced.

    Attributes
    ----------
    result:
        The estimated table (one row per treated unit).
    truth:
        ``{unit_label: true_effect_ms}`` from the simulator.
    measurements:
        The raw measurement frame (for downstream diagnostics).
    scenario:
        The world it all ran in.
    """

    result: StudyResult
    truth: dict[str, float]
    measurements: Frame
    scenario: Scenario

    def comparison_rows(self) -> list[dict[str, float | str]]:
        """Estimated vs true effect per unit (for reports and tests)."""
        rows = []
        for row in self.result.rows:
            rows.append(
                {
                    "unit": row.unit,
                    "estimated_ms": row.rtt_delta_ms,
                    "true_ms": self.truth.get(row.unit, float("nan")),
                    "p_value": row.p_value,
                    "rmse_ratio": row.rmse_ratio,
                }
            )
        return rows

    def format_report(self) -> str:
        """The table plus the truth column and headline verdict."""
        lines = [self.result.format_table(), ""]
        lines.append(f"{'unit':<28}  {'estimated':>9}  {'true':>7}")
        for row in self.comparison_rows():
            lines.append(
                f"{row['unit']:<28}  {row['estimated_ms']:>+9.2f}  {row['true_ms']:>+7.2f}"
            )
        verdict = (
            "effect is consistent and robust"
            if self.result.consistent_effect
            else "effect is neither consistent nor robust (the paper's finding)"
        )
        lines.append("")
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


def run_table1_experiment(
    n_donor_ases: int = 25,
    duration_days: int = 40,
    join_day: int = 20,
    seed: int = 2,
    measurement_seed: int = 1,
    method: str = "robust",
    n_jobs: int | None = 1,
    retry: RetryPolicy | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    batch_fits: bool = True,
    share_frames: bool = False,
) -> IxpStudyOutput:
    """Run the full case study at the given scale.

    The defaults reproduce the Table-1 *shape* in a few seconds; the
    benchmark runs the paper-scale 60-day window.  *n_jobs* fans the
    per-unit fits out over worker processes without changing any
    number in the table; *retry*, *checkpoint*, and *resume* pass
    through to :func:`run_ixp_study` (the world and measurements are
    regenerated on resume — only the per-unit fits are journaled).
    *batch_fits* (default on) batches donor-matrix SVDs across treated
    units; *share_frames* generates the measurement frame straight into
    a shared-memory :class:`~repro.pipeline.shm.SharedFrameArena` —
    numbers are bit-identical either way.
    """
    from repro.pipeline.shm import SharedFrameArena

    arena = SharedFrameArena(tag="table1") if share_frames else None
    try:
        with span(
            "experiment.table1", donors=n_donor_ases, days=duration_days, seed=seed
        ):
            t0 = time.perf_counter()
            scenario = build_table1_scenario(
                n_donor_ases=n_donor_ases,
                duration_days=duration_days,
                join_day=join_day,
                seed=seed,
            )
            measurements = measurements_frame(
                scenario, rng=measurement_seed, arena=arena
            )
            generation_seconds = time.perf_counter() - t0
            result = run_ixp_study(
                measurements,
                scenario.ixp_name,
                method=method,
                n_jobs=n_jobs,
                generation_seconds=generation_seconds,
                retry=retry,
                checkpoint=checkpoint,
                resume=resume,
                batch_fits=batch_fits,
            )
            truth = scenario_truth(scenario)
    finally:
        if arena is not None:
            arena.close()
    return IxpStudyOutput(
        result=result,
        truth=truth,
        measurements=measurements,
        scenario=scenario,
    )
