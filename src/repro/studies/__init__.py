"""Executable case studies: the paper's table and its four boxed examples.

- :func:`run_table1_experiment` — the IXP/latency case study (Table 1);
- :func:`run_confounding_experiment` — E1, the cellular-reliability
  confounding box;
- :func:`run_collider_experiment` — E2, the speed-test collider;
- :func:`run_instrument_experiment` — E3, valid vs invalid natural
  experiments;
- :func:`run_reroute_experiment` /
  :func:`would_quality_have_been_better` — E4, exposure vs impact and
  the video-call counterfactual;
- :func:`run_randomization_experiment` — E5, the M-Lab load balancer.
"""

from repro.studies.collider_speedtest import (
    ColliderStudyOutput,
    run_collider_experiment,
    speedtest_dag,
    speedtest_model,
    tag_based_correction,
)
from repro.studies.confounded_signal import (
    ConfoundingStudyOutput,
    TRUE_SIGNAL_EFFECT,
    cellular_dag,
    cellular_model,
    run_confounding_experiment,
)
from repro.studies.counterfactual_reroute import (
    RerouteImpact,
    TRUE_REROUTE_EFFECT,
    run_reroute_experiment,
    video_call_model,
    would_quality_have_been_better,
)
from repro.studies.edge_selection import (
    EdgeSelectionOutput,
    run_edge_selection_experiment,
)
from repro.studies.interference import (
    InterferenceRow,
    InterferenceStudyOutput,
    run_interference_experiment,
)
from repro.studies.ixp_latency import (
    IxpStudyOutput,
    run_table1_experiment,
    scenario_truth,
)
from repro.studies.natural_experiment import (
    InstrumentStudyOutput,
    TRUE_ROUTE_EFFECT,
    maintenance_dag,
    maintenance_model,
    policy_dag,
    policy_model,
    run_instrument_experiment,
    run_platform_knob_experiment,
)
from repro.studies.randomized_mlab import (
    RandomizationStudyOutput,
    run_randomization_experiment,
)
from repro.studies.root_cause import (
    RootCauseStudyOutput,
    run_root_cause_experiment,
)

__all__ = [
    "ColliderStudyOutput",
    "ConfoundingStudyOutput",
    "EdgeSelectionOutput",
    "InterferenceRow",
    "InterferenceStudyOutput",
    "InstrumentStudyOutput",
    "IxpStudyOutput",
    "RandomizationStudyOutput",
    "RerouteImpact",
    "RootCauseStudyOutput",
    "TRUE_REROUTE_EFFECT",
    "TRUE_ROUTE_EFFECT",
    "TRUE_SIGNAL_EFFECT",
    "cellular_dag",
    "cellular_model",
    "maintenance_dag",
    "maintenance_model",
    "policy_dag",
    "policy_model",
    "run_collider_experiment",
    "run_confounding_experiment",
    "run_edge_selection_experiment",
    "run_instrument_experiment",
    "run_interference_experiment",
    "run_platform_knob_experiment",
    "run_randomization_experiment",
    "run_reroute_experiment",
    "run_root_cause_experiment",
    "run_table1_experiment",
    "scenario_truth",
    "speedtest_dag",
    "speedtest_model",
    "tag_based_correction",
    "video_call_model",
    "would_quality_have_been_better",
]
