"""E2 — the collider box: speed tests as conditioned-on outcomes.

§3's selection-bias example: a route change and poor performance each
independently prompt users to run speed tests, so analysing only the
tests that happened conditions on a collider and manufactures an
association between route changes and degradation even when none
exists.

Two complementary demonstrations:

- :func:`run_collider_experiment` — a minimal SCM where the route-change
  -> latency effect is exactly zero, yet the association among
  collected tests is non-zero (and the full population shows none);
- :func:`tag_based_correction` — the §4.2 fix on platform data: using
  intent tags to keep only baseline-triggered tests removes the bias.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError
from repro.frames.frame import Frame
from repro.graph.colliders import selection_bias_warning
from repro.graph.dag import CausalDag
from repro.scm.mechanisms import BernoulliMechanism, GaussianNoise, LinearMechanism, UniformNoise
from repro.scm.model import StructuralCausalModel


@dataclass(frozen=True)
class ColliderStudyOutput:
    """Contrast of the route-change/latency association across samples.

    Attributes
    ----------
    full_population_assoc:
        Mean latency difference (changed vs not) over *all* user-hours.
    collected_tests_assoc:
        The same contrast among rows where a test was actually run —
        the quantity a naive speed-test analysis computes.
    true_effect:
        The structural effect of a route change on latency (zero here).
    dag_warning:
        The structural explanation from
        :func:`repro.graph.selection_bias_warning`.
    """

    full_population_assoc: float
    collected_tests_assoc: float
    true_effect: float
    dag_warning: str

    @property
    def bias(self) -> float:
        """How much association the collider manufactured."""
        return self.collected_tests_assoc - self.true_effect

    def format_report(self) -> str:
        """Summary of the collider demonstration."""
        return "\n".join(
            [
                f"true effect of route change on latency: {self.true_effect:+.3f}",
                f"association over the full population:   {self.full_population_assoc:+.3f}",
                f"association among collected tests:      {self.collected_tests_assoc:+.3f}"
                f"   <- collider bias = {self.bias:+.3f}",
                "",
                "graphical diagnosis: " + self.dag_warning,
            ]
        )


def speedtest_dag() -> CausalDag:
    """route_change -> test_run <- bad_latency (no route->latency edge)."""
    return CausalDag(
        edges=[
            ("route_change", "test_run"),
            ("latency", "test_run"),
        ]
    )


def speedtest_model(
    change_to_test: float = 2.0,
    latency_to_test: float = 1.5,
) -> StructuralCausalModel:
    """The collider SCM: the route-change -> latency effect is ZERO."""
    return StructuralCausalModel(
        {
            "route_change": (BernoulliMechanism({}, intercept=-1.5), UniformNoise()),
            "latency": (LinearMechanism({}), GaussianNoise(1.0)),
            "test_run": (
                BernoulliMechanism(
                    {
                        "route_change": change_to_test,
                        "latency": latency_to_test,
                    },
                    intercept=-2.0,
                ),
                UniformNoise(),
            ),
        },
        dag=speedtest_dag(),
    )


def _contrast(latency: np.ndarray, changed: np.ndarray) -> float:
    changed = changed.astype(bool)
    if changed.sum() == 0 or (~changed).sum() == 0:
        raise EstimationError("need both changed and unchanged rows")
    return float(latency[changed].mean() - latency[~changed].mean())


def run_collider_experiment(
    n_samples: int = 40_000,
    seed: int = 0,
) -> ColliderStudyOutput:
    """Generate the collider world and measure the manufactured bias."""
    model = speedtest_model()
    data = model.sample(n_samples, rng=seed)
    latency = data["latency"]
    changed = data["route_change"]
    ran = data["test_run"].astype(bool)
    full = _contrast(latency, changed)
    collected = _contrast(latency[ran], changed[ran])
    warning = selection_bias_warning(
        speedtest_dag(), "route_change", "latency", {"test_run"}
    ) or "no collider path opened (unexpected)"
    return ColliderStudyOutput(
        full_population_assoc=full,
        collected_tests_assoc=collected,
        true_effect=0.0,
        dag_warning=warning,
    )


def tag_based_correction(measurements: Frame, ixp_name: str) -> dict[str, float]:
    """The §4.2 fix on real platform data: condition on intent tags.

    Computes the crossing-vs-not RTT contrast three ways on a tagged
    measurement frame: pooled (collider-conditioned), baseline-only
    (reaction-triggered tests dropped), and reactive-only (the bias
    concentrated).  Returns the three contrasts.
    """
    from repro.pipeline.crossing import crossing_mask

    crosses = crossing_mask(measurements, ixp_name)
    rtt = measurements.numeric("rtt_ms")
    triggers = np.array([str(v) for v in measurements.column("trigger").values])

    def contrast(mask: np.ndarray) -> float:
        c = crosses[mask]
        r = rtt[mask]
        if c.sum() == 0 or (~c).sum() == 0:
            return float("nan")
        return float(r[c].mean() - r[~c].mean())

    return {
        "pooled": contrast(np.ones(len(rtt), dtype=bool)),
        "baseline_only": contrast(triggers == "baseline"),
        "reactive_only": contrast(
            (triggers == "performance") | (triggers == "route_change")
        ),
    }
