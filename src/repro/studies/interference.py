"""A6 — interference: when the treatment leaks into the donor pool.

The paper's own caveat about its case study: "the 'no interference'
assumption may not hold perfectly: adding an IXP not only introduces a
new path but also reshapes the local routing topology.  Traffic shifts
toward the new link can alter path preferences and congestion for
neighboring networks."  This study makes that caveat quantitative.

With load-coupled congestion (:mod:`repro.netsim.traffic`), treated
ASes moving onto the IXP relieve the transit links donors still use,
so donors' RTT *improves at the treatment time* — a spillover.  The
synthetic control's counterfactual is built from those donors, so the
spillover leaks into the estimate in proportion to the donor-weight
mass:

    estimate  ≈  true own-unit effect  −  (spillover picked up by the
                                           synthetic combination).

The experiment runs the same world at several coupling strengths and
reports true effect, donor spillover, estimated effect, and bias —
showing SUTVA's role not as a formality but as an error term you can
measure when you own the data-generating process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.frames.frame import Frame
from repro.netsim.scenario import Scenario, build_table1_scenario
from repro.netsim.traffic import apply_traffic_loads
from repro.pipeline.study import run_ixp_study
from repro.mplatform.records import Measurement, Trigger, measurements_to_frame


@dataclass(frozen=True)
class InterferenceRow:
    """Results for one coupling strength.

    Attributes
    ----------
    coupling:
        Load-to-utilization coupling (0 = SUTVA holds).
    true_effect:
        Mean own-unit effect over treated units (total change each
        treated unit experiences, world as it actually evolved).
    donor_spillover:
        Mean RTT change donors experience at the treatment epoch —
        pure interference (0 when coupling is 0).
    estimated_effect:
        Mean synthetic-control estimate over treated units.
    """

    coupling: float
    true_effect: float
    donor_spillover: float
    estimated_effect: float

    @property
    def bias(self) -> float:
        """Estimated minus true effect."""
        return self.estimated_effect - self.true_effect


@dataclass(frozen=True)
class InterferenceStudyOutput:
    """The coupling sweep."""

    rows: tuple[InterferenceRow, ...]

    def format_report(self) -> str:
        """Aligned sweep table plus the headline relationship."""
        lines = [
            f"{'coupling':>8}  {'true':>7}  {'spillover':>9}  {'estimate':>9}  {'bias':>7}"
        ]
        for r in self.rows:
            lines.append(
                f"{r.coupling:>8.2f}  {r.true_effect:>+7.2f}  "
                f"{r.donor_spillover:>+9.2f}  {r.estimated_effect:>+9.2f}  "
                f"{r.bias:>+7.2f}"
            )
        lines.append("")
        lines.append(
            "interference enters the estimate in proportion to the synthetic "
            "control's donor-weight mass: spillover onto donors shifts the "
            "counterfactual and biases the effect estimate away from the "
            "unit's own change. The 'no interference' condition is an error "
            "term you can measure, not a formality."
        )
        return "\n".join(lines)


def _simulate_measurements(
    scenario: Scenario,
    coupling: float,
    samples_per_hour: int = 3,
    seed: int = 0,
) -> tuple[Frame, dict[str, float], float]:
    """Generate hourly measurements under load-coupled congestion.

    Returns ``(frame, unit -> own-change, donor spillover)`` where the
    own-change and spillover are computed from noise-free RTTs around
    the (single shared) join epoch.
    """
    rng = np.random.default_rng(seed)
    demands = {g.asn: float(g.n_users) for g in scenario.user_groups}
    hours = int(scenario.duration_hours)
    records: list[Measurement] = []

    epoch_cache: dict[int, None] = {}

    def refresh_loads(hour: float) -> None:
        state = scenario.timeline.state_at(hour)
        if state.epoch in epoch_cache and len(epoch_cache) == 1:
            return
        routes = scenario.timeline.routes_at(hour, scenario.content_asn)
        apply_traffic_loads(
            scenario.latency, routes, demands, coupling, reference_share=0.0
        )
        epoch_cache.clear()
        epoch_cache[state.epoch] = None

    for hour in range(hours):
        t = float(hour)
        refresh_loads(t)
        routes = scenario.timeline.routes_at(t, scenario.content_asn)
        state = scenario.timeline.state_at(t)
        for group in scenario.user_groups:
            route = routes.get(group.asn)
            if route is None:
                continue
            crossings = (
                (scenario.ixp_name,)
                if any(
                    state.topology.link_between(route.path[i], route.path[i + 1]).ixp
                    for i in range(len(route.path) - 1)
                )
                else ()
            )
            for _ in range(samples_per_hour):
                sample = scenario.latency.sample_rtt(
                    route, t + float(rng.uniform(0, 1)), rng, topology=state.topology
                )
                records.append(
                    Measurement(
                        asn=group.asn,
                        city=group.city,
                        time_hour=t + float(rng.uniform(0, 1)),
                        rtt_ms=sample.total_ms,
                        as_path=route.path,
                        ixps_crossed=crossings,
                        trigger=Trigger.BASELINE,
                    )
                )

    # Ground truth around the joins (all joins share join_day +- 4 days).
    join = min(scenario.join_hours.values())
    last_join = max(scenario.join_hours.values())

    def expected(asn: int, hour: float) -> float:
        refresh_loads(hour)
        routes = scenario.timeline.routes_at(hour, scenario.content_asn)
        state = scenario.timeline.state_at(hour)
        return scenario.latency.expected_rtt(
            routes[asn], hour, topology=state.topology
        )

    def daily_median(asn: int, start: float) -> float:
        return float(np.median([expected(asn, start + h) for h in range(24)]))

    truths: dict[str, float] = {}
    for asn, city in scenario.treated_units:
        pre = daily_median(asn, join - 24.0)
        post = daily_median(asn, last_join + 24.0)
        truths[f"AS{asn}/{city}"] = post - pre
    donor_changes = []
    for group in scenario.user_groups:
        if group.asn in scenario.join_hours:
            continue
        pre = daily_median(group.asn, join - 24.0)
        post = daily_median(group.asn, last_join + 24.0)
        donor_changes.append(post - pre)
    spillover = float(np.mean(donor_changes)) if donor_changes else 0.0
    return measurements_to_frame(records), truths, spillover


def run_interference_experiment(
    couplings: tuple[float, ...] = (0.0, 0.3, 0.6),
    duration_days: int = 20,
    seed: int = 0,
) -> InterferenceStudyOutput:
    """Sweep load-coupling strengths and measure the SUTVA bias."""
    rows: list[InterferenceRow] = []
    for coupling in couplings:
        scenario = build_table1_scenario(
            n_donor_ases=14,
            duration_days=duration_days,
            join_day=duration_days // 2,
            seed=3,
            with_regional_shock=False,
            churn_probability=0.0,
        )
        frame, truths, spillover = _simulate_measurements(
            scenario, coupling, seed=seed
        )
        result = run_ixp_study(frame, scenario.ixp_name, max_placebos=8)
        estimates = [r.rtt_delta_ms for r in result.rows]
        matched_truths = [truths[r.unit] for r in result.rows]
        rows.append(
            InterferenceRow(
                coupling=coupling,
                true_effect=float(np.mean(matched_truths)),
                donor_spillover=spillover,
                estimated_effect=float(np.mean(estimates)),
            )
        )
    return InterferenceStudyOutput(rows=tuple(rows))
