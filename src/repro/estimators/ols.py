"""Ordinary least squares with classical inference.

A small, dependency-light linear-model core used by the adjustment, IV,
and difference-in-differences estimators.  Fits via ``numpy.linalg.lstsq``
and reports coefficient standard errors, t statistics, and p-values under
homoskedastic classical assumptions (plus optional HC1 robust errors).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from repro.errors import InsufficientDataError


@dataclass(frozen=True)
class OlsFit:
    """A fitted linear model ``y = X b + e``.

    Attributes
    ----------
    names:
        Regressor names, aligned with :attr:`coefficients`.
    coefficients, standard_errors, t_values, p_values:
        Per-regressor inference arrays.
    residuals:
        ``y - X b``.
    r_squared:
        Coefficient of determination.
    nobs, dof:
        Row count and residual degrees of freedom.
    """

    names: tuple[str, ...]
    coefficients: np.ndarray
    standard_errors: np.ndarray
    t_values: np.ndarray
    p_values: np.ndarray
    residuals: np.ndarray = field(repr=False)
    r_squared: float
    nobs: int
    dof: int

    def coefficient(self, name: str) -> float:
        """The fitted coefficient for regressor *name*."""
        return float(self.coefficients[self.names.index(name)])

    def standard_error(self, name: str) -> float:
        """The standard error for regressor *name*."""
        return float(self.standard_errors[self.names.index(name)])

    def p_value(self, name: str) -> float:
        """The two-sided p-value for regressor *name*."""
        return float(self.p_values[self.names.index(name)])

    def confidence_interval(self, name: str, level: float = 0.95) -> tuple[float, float]:
        """Classical symmetric CI for one coefficient."""
        i = self.names.index(name)
        t_crit = float(stats.t.ppf(0.5 + level / 2, self.dof))
        half = t_crit * float(self.standard_errors[i])
        centre = float(self.coefficients[i])
        return centre - half, centre + half

    def summary(self) -> str:
        """A compact regression table."""
        lines = [f"OLS: n={self.nobs}, R^2={self.r_squared:.4f}"]
        width = max(len(n) for n in self.names)
        lines.append(
            f"{'term'.ljust(width)}  {'coef':>10}  {'se':>9}  {'t':>8}  {'p':>8}"
        )
        for i, n in enumerate(self.names):
            lines.append(
                f"{n.ljust(width)}  {self.coefficients[i]:>10.4f}  "
                f"{self.standard_errors[i]:>9.4f}  {self.t_values[i]:>8.3f}  "
                f"{self.p_values[i]:>8.4f}"
            )
        return "\n".join(lines)


def fit_ols(
    y: np.ndarray,
    regressors: dict[str, np.ndarray],
    add_intercept: bool = True,
    robust: bool = False,
) -> OlsFit:
    """Fit OLS of *y* on the named regressor arrays.

    Parameters
    ----------
    y:
        Outcome vector.
    regressors:
        Ordered mapping of name to regressor vector.
    add_intercept:
        Prepend a constant term named ``_intercept``.
    robust:
        Use HC1 heteroskedasticity-robust standard errors instead of the
        classical homoskedastic formula.
    """
    y = np.asarray(y, dtype=float)
    n = len(y)
    names: list[str] = []
    cols: list[np.ndarray] = []
    if add_intercept:
        names.append("_intercept")
        cols.append(np.ones(n))
    for name, vec in regressors.items():
        v = np.asarray(vec, dtype=float)
        if len(v) != n:
            raise InsufficientDataError(
                f"regressor {name!r} has length {len(v)}, outcome has {n}"
            )
        names.append(name)
        cols.append(v)
    x = np.column_stack(cols)
    k = x.shape[1]
    if n <= k:
        raise InsufficientDataError(f"need more than {k} rows to fit {k} terms, have {n}")

    beta, _, rank, _ = np.linalg.lstsq(x, y, rcond=None)
    residuals = y - x @ beta
    dof = n - k
    sigma2 = float(residuals @ residuals) / dof
    xtx_inv = np.linalg.pinv(x.T @ x)
    if robust:
        meat = x.T @ (x * (residuals**2)[:, None])
        cov = xtx_inv @ meat @ xtx_inv * (n / dof)
    else:
        cov = sigma2 * xtx_inv
    se = np.sqrt(np.clip(np.diag(cov), 0.0, None))
    with np.errstate(divide="ignore", invalid="ignore"):
        t_vals = np.where(se > 0, beta / se, np.inf * np.sign(beta))
    p_vals = 2 * stats.t.sf(np.abs(t_vals), dof)
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - float(residuals @ residuals) / ss_tot if ss_tot > 0 else 0.0
    return OlsFit(
        names=tuple(names),
        coefficients=beta,
        standard_errors=se,
        t_values=t_vals,
        p_values=p_vals,
        residuals=residuals,
        r_squared=r2,
        nobs=n,
        dof=dof,
    )
