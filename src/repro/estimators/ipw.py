"""Inverse-probability weighting.

Reweights each unit by the inverse of its propensity — the probability
of receiving the treatment it actually received given the adjustment
covariates — so that the reweighted treated and control groups are
exchangeable.  Propensities come from an in-house logistic regression
fit by Newton-Raphson (no sklearn offline), with optional clipping to
tame extreme weights.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import EstimationError, InsufficientDataError
from repro.frames.frame import Frame
from repro.graph.dag import CausalDag
from repro.estimators.adjustment import resolve_adjustment_set
from repro.estimators.base import EffectEstimate, require_binary


def fit_logistic(
    x: np.ndarray, y: np.ndarray, max_iter: int = 100, tol: float = 1e-8,
    ridge: float = 1e-6,
) -> np.ndarray:
    """Fit logistic regression by Newton-Raphson; returns coefficients.

    *x* must already include any intercept column.  A tiny ridge keeps
    the Hessian invertible under separation.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    n, k = x.shape
    if n < k + 1:
        raise InsufficientDataError(f"need > {k} rows for {k} logistic terms, have {n}")
    beta = np.zeros(k)
    for _ in range(max_iter):
        eta = np.clip(x @ beta, -30, 30)
        p = 1.0 / (1.0 + np.exp(-eta))
        w = p * (1 - p)
        grad = x.T @ (y - p) - ridge * beta
        hess = x.T @ (x * w[:, None]) + ridge * np.eye(k)
        try:
            step = np.linalg.solve(hess, grad)
        except np.linalg.LinAlgError:
            raise EstimationError("logistic Hessian is singular") from None
        beta = beta + step
        if float(np.abs(step).max()) < tol:
            break
    return beta


def propensity_scores(
    data: Frame,
    treatment: str,
    covariates: Sequence[str],
) -> np.ndarray:
    """Estimated P(T=1 | covariates) per row (logistic model)."""
    sub = data.drop_missing([treatment, *covariates])
    t = require_binary(sub.numeric(treatment), treatment).astype(float)
    cols = [np.ones(sub.num_rows)]
    cols.extend(sub.numeric(c) for c in covariates)
    x = np.column_stack(cols)
    beta = fit_logistic(x, t)
    eta = np.clip(x @ beta, -30, 30)
    return 1.0 / (1.0 + np.exp(-eta))


def ipw_estimate(
    data: Frame,
    treatment: str,
    outcome: str,
    adjustment: Sequence[str] | None = None,
    dag: CausalDag | None = None,
    clip: float = 0.01,
) -> EffectEstimate:
    """Hajek (self-normalised) IPW estimate of the ATE.

    Propensities are clipped into ``[clip, 1-clip]``; the effective
    sample size of each arm is reported in ``details`` as an overlap
    diagnostic.
    """
    if not 0 <= clip < 0.5:
        raise EstimationError(f"clip must be in [0, 0.5), got {clip}")
    adj = resolve_adjustment_set(dag, treatment, outcome, adjustment)
    sub = data.drop_missing([treatment, outcome, *adj])
    t = require_binary(sub.numeric(treatment), treatment)
    y = sub.numeric(outcome)
    if not adj:
        p = np.full(sub.num_rows, float(t.mean()))
    else:
        p = propensity_scores(sub, treatment, adj)
    p = np.clip(p, clip, 1.0 - clip)

    w1 = t / p
    w0 = (~t) / (1.0 - p)
    if w1.sum() == 0 or w0.sum() == 0:
        raise InsufficientDataError("need both treated and control rows")
    mu1 = float(np.sum(w1 * y) / np.sum(w1))
    mu0 = float(np.sum(w0 * y) / np.sum(w0))
    ate = mu1 - mu0

    # Linearised (influence-function) variance for the Hajek estimator.
    n = sub.num_rows
    inf1 = w1 * (y - mu1) / (np.sum(w1) / n)
    inf0 = w0 * (y - mu0) / (np.sum(w0) / n)
    se = float(np.std(inf1 - inf0, ddof=1) / np.sqrt(n))
    ess1 = float(np.sum(w1) ** 2 / np.sum(w1**2)) if np.any(w1 > 0) else 0.0
    ess0 = float(np.sum(w0) ** 2 / np.sum(w0**2)) if np.any(w0 > 0) else 0.0
    return EffectEstimate(
        effect=ate,
        standard_error=se,
        ci_low=ate - 1.96 * se,
        ci_high=ate + 1.96 * se,
        method="backdoor.ipw",
        n_treated=int(t.sum()),
        n_control=int((~t).sum()),
        details={
            "adjustment_set": adj,
            "effective_n_treated": ess1,
            "effective_n_control": ess0,
            "propensity_range": (float(p.min()), float(p.max())),
        },
    )
