"""Panel estimators: two-way fixed effects and event studies.

Complements :mod:`repro.estimators.did` and the synthetic-control stack
for long-format unit x time data:

- :func:`fixed_effects_estimate` — the two-way-fixed-effects (TWFE)
  within estimator: demean outcome and treatment by unit and by period,
  regress the residuals.  Absorbs *any* time-constant unit heterogeneity
  and *any* common shock (e.g. the scenario's regional congestion shock).
- :func:`event_study` — per-relative-period effects around each unit's
  own treatment time, the standard "is there a pre-trend?" picture: the
  paper's parallel-pre-fit requirement, estimated rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError, InsufficientDataError
from repro.frames.frame import Frame
from repro.estimators.base import EffectEstimate
from repro.estimators.ols import fit_ols


def _group_demean(values: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Subtract each group's mean from its members."""
    out = values.astype(float).copy()
    for key in np.unique(keys):
        mask = keys == key
        out[mask] -= out[mask].mean()
    return out


def fixed_effects_estimate(
    data: Frame,
    unit: str,
    time: str,
    treatment: str,
    outcome: str,
) -> EffectEstimate:
    """Two-way-fixed-effects estimate of a binary (or continuous) treatment.

    Demeans outcome and treatment within unit and within period
    (one sweep each — exact for balanced panels, the standard
    approximation otherwise) and regresses residual on residual.
    """
    sub = data.drop_missing([unit, time, treatment, outcome])
    if sub.num_rows < 8:
        raise InsufficientDataError(f"only {sub.num_rows} complete panel rows")
    units = np.array([str(v) for v in sub.column(unit).values])
    times = np.array([str(v) for v in sub.column(time).values])
    if len(np.unique(units)) < 2 or len(np.unique(times)) < 2:
        raise InsufficientDataError("need >= 2 units and >= 2 periods")
    y = sub.numeric(outcome)
    t = sub.numeric(treatment)

    y_dm = _group_demean(_group_demean(y, units), times)
    t_dm = _group_demean(_group_demean(t, units), times)
    if float(np.std(t_dm)) < 1e-12:
        raise EstimationError(
            "treatment has no within-unit-within-period variation; "
            "fixed effects absorb it entirely"
        )
    fit = fit_ols(y_dm, {"treatment": t_dm}, add_intercept=False, robust=True)
    effect = fit.coefficient("treatment")
    se = fit.standard_error("treatment")
    return EffectEstimate(
        effect=effect,
        standard_error=se,
        ci_low=effect - 1.96 * se,
        ci_high=effect + 1.96 * se,
        method="panel.two_way_fixed_effects",
        n_treated=int((t > 0).sum()),
        n_control=int((t == 0).sum()),
        details={
            "n_units": int(len(np.unique(units))),
            "n_periods": int(len(np.unique(times))),
        },
    )


@dataclass(frozen=True)
class EventStudyResult:
    """Per-relative-period effects around the treatment event.

    Attributes
    ----------
    relative_periods:
        Sorted offsets from each unit's treatment time (0 = first
        treated period; negative = leads, positive = lags).
    effects, standard_errors:
        Estimated effect and SE per offset, relative to the baseline
        period (-1), which is normalised to zero.
    """

    relative_periods: tuple[int, ...]
    effects: tuple[float, ...]
    standard_errors: tuple[float, ...]

    def effect_at(self, offset: int) -> float:
        """The estimated effect at a relative period."""
        return self.effects[self.relative_periods.index(offset)]

    def pre_trend_flat(self, z_bar: float = 2.5) -> bool:
        """Whether every lead (offset < -1) is statistically null."""
        for offset, eff, se in zip(
            self.relative_periods, self.effects, self.standard_errors
        ):
            if offset < -1 and se > 0 and abs(eff) / se > z_bar:
                return False
        return True

    def average_post_effect(self) -> float:
        """Mean effect over offsets >= 0."""
        post = [
            e for o, e in zip(self.relative_periods, self.effects) if o >= 0
        ]
        if not post:
            raise EstimationError("no post-treatment periods in the event study")
        return float(np.mean(post))

    def format_table(self) -> str:
        """Aligned offset/effect/se table."""
        lines = [f"{'offset':>6}  {'effect':>9}  {'se':>8}"]
        for o, e, s in zip(
            self.relative_periods, self.effects, self.standard_errors
        ):
            lines.append(f"{o:>+6d}  {e:>+9.3f}  {s:>8.3f}")
        return "\n".join(lines)


def event_study(
    data: Frame,
    unit: str,
    time: str,
    outcome: str,
    treatment_time: dict[str, float],
    max_lead: int = 5,
    max_lag: int = 10,
) -> EventStudyResult:
    """Estimate dynamic effects around each unit's treatment time.

    Parameters
    ----------
    data:
        Long panel with *unit*, *time* (numeric), *outcome* columns.
    treatment_time:
        ``{unit_label: first treated period}``; units absent from the
        mapping are never-treated controls (they anchor period effects).
    max_lead, max_lag:
        Window of relative periods to estimate; observations outside it
        are binned into the window's endpoints.

    Implements the standard TWFE event-study regression: outcome on
    unit dummies, period dummies, and relative-period indicators with
    offset -1 omitted as the baseline.
    """
    sub = data.drop_missing([unit, time, outcome])
    units = np.array([str(v) for v in sub.column(unit).values])
    times = sub.numeric(time)
    y = sub.numeric(outcome)
    if len(np.unique(units)) < 2:
        raise InsufficientDataError("need >= 2 units")
    if not treatment_time:
        raise EstimationError("treatment_time is empty: nothing to study")

    # Relative period per row (None for never-treated rows).
    offsets = np.full(len(y), np.nan)
    for i in range(len(y)):
        t0 = treatment_time.get(units[i])
        if t0 is not None:
            rel = int(np.floor(times[i] - t0))
            rel = max(-max_lead, min(max_lag, rel))
            offsets[i] = rel

    present = sorted(
        {int(o) for o in offsets[np.isfinite(offsets)]} - {-1}
    )
    if not present:
        raise InsufficientDataError("no relative periods other than the baseline")

    # Demean by unit and period (absorbing both fixed effects), then
    # regress on the relative-period indicators.
    y_dm = _group_demean(_group_demean(y, units), times.astype(np.int64))
    regs: dict[str, np.ndarray] = {}
    for o in present:
        indicator = (offsets == o).astype(float)
        regs[f"rel_{o}"] = _group_demean(
            _group_demean(indicator, units), times.astype(np.int64)
        )
    fit = fit_ols(y_dm, regs, add_intercept=False, robust=True)

    rel_periods = [-1] + present
    effects = [0.0] + [fit.coefficient(f"rel_{o}") for o in present]
    ses = [0.0] + [fit.standard_error(f"rel_{o}") for o in present]
    order = np.argsort(rel_periods)
    return EventStudyResult(
        relative_periods=tuple(int(rel_periods[i]) for i in order),
        effects=tuple(float(effects[i]) for i in order),
        standard_errors=tuple(float(ses[i]) for i in order),
    )
