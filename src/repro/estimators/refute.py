"""Refutation tests for causal estimates (DoWhy-style, cited in §4).

An estimate that survives estimation is not yet trustworthy; the paper
asks studies to "validate assumptions and report uncertainty".  Each
refuter here perturbs the analysis in a way that *should* have a known
consequence, and flags the estimate when it does not:

- :func:`placebo_treatment_refuter` — replace the treatment with random
  noise; the effect must collapse to ~0.
- :func:`random_common_cause_refuter` — add an irrelevant random
  covariate to the adjustment set; the estimate must not move.
- :func:`subset_refuter` — re-estimate on random row subsets; the
  estimate must be stable beyond sampling noise.
- :func:`dummy_outcome_refuter` — replace the outcome with noise; the
  effect must collapse to ~0.

Each returns a :class:`RefutationResult` with a pass/fail verdict and
the refutation distribution, and :func:`refute_all` runs the battery.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError
from repro.frames.frame import Frame
from repro.estimators.base import EffectEstimate

#: An estimator callable: (data, treatment, outcome, adjustment) -> estimate.
EstimatorFn = Callable[[Frame, str, str, Sequence[str]], EffectEstimate]


@dataclass(frozen=True)
class RefutationResult:
    """Outcome of one refutation test.

    Attributes
    ----------
    name:
        Refuter name.
    original_effect:
        The estimate under scrutiny.
    refuted_effects:
        Effects measured under the perturbations.
    passed:
        True when the estimate behaved as a causal effect should.
    detail:
        Human-readable explanation of the verdict.
    """

    name: str
    original_effect: float
    refuted_effects: tuple[float, ...]
    passed: bool
    detail: str

    def __str__(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return f"[{verdict}] {self.name}: {self.detail}"


def _rng(seed: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def placebo_treatment_refuter(
    data: Frame,
    treatment: str,
    outcome: str,
    adjustment: Sequence[str],
    estimator: EstimatorFn,
    n_trials: int = 10,
    rng: np.random.Generator | int | None = 0,
) -> RefutationResult:
    """Shuffle the treatment column; effects must collapse toward zero.

    The pass bar: the original effect's absolute value must exceed the
    95th percentile of |placebo effects| (otherwise the 'effect' is
    indistinguishable from what a random treatment produces).
    """
    generator = _rng(rng)
    original = estimator(data, treatment, outcome, adjustment)
    t = data.numeric(treatment)
    effects = []
    for _ in range(n_trials):
        shuffled = generator.permutation(t)
        placebo = data.with_column(treatment, shuffled)
        effects.append(estimator(placebo, treatment, outcome, adjustment).effect)
    bar = float(np.quantile(np.abs(effects), 0.95))
    passed = abs(original.effect) > bar
    return RefutationResult(
        name="placebo_treatment",
        original_effect=original.effect,
        refuted_effects=tuple(effects),
        passed=passed,
        detail=(
            f"original {original.effect:+.4g} vs placebo 95th pct {bar:.4g} "
            f"({'clears' if passed else 'does NOT clear'} the placebo bar)"
        ),
    )


def random_common_cause_refuter(
    data: Frame,
    treatment: str,
    outcome: str,
    adjustment: Sequence[str],
    estimator: EstimatorFn,
    n_trials: int = 10,
    tolerance: float = 0.2,
    rng: np.random.Generator | int | None = 0,
) -> RefutationResult:
    """Add a pure-noise covariate to the adjustment; estimate must not move.

    *tolerance* is the allowed relative drift of the mean perturbed
    estimate (absolute drift of 10% of a standard error is also
    accepted for near-zero effects).
    """
    generator = _rng(rng)
    original = estimator(data, treatment, outcome, adjustment)
    effects = []
    for i in range(n_trials):
        noise = generator.normal(0, 1, data.num_rows)
        augmented = data.with_column("_random_cause", noise)
        effects.append(
            estimator(
                augmented, treatment, outcome, [*adjustment, "_random_cause"]
            ).effect
        )
    mean_shift = abs(float(np.mean(effects)) - original.effect)
    scale = max(abs(original.effect), original.standard_error, 1e-12)
    passed = mean_shift <= tolerance * scale
    return RefutationResult(
        name="random_common_cause",
        original_effect=original.effect,
        refuted_effects=tuple(effects),
        passed=passed,
        detail=(
            f"mean shift {mean_shift:.4g} vs tolerance {tolerance * scale:.4g} "
            f"({'stable' if passed else 'UNSTABLE'} under an irrelevant covariate)"
        ),
    )


def subset_refuter(
    data: Frame,
    treatment: str,
    outcome: str,
    adjustment: Sequence[str],
    estimator: EstimatorFn,
    n_trials: int = 10,
    fraction: float = 0.7,
    z_bar: float = 3.0,
    rng: np.random.Generator | int | None = 0,
) -> RefutationResult:
    """Re-estimate on random subsets; drift beyond sampling noise fails.

    The pass bar: |original - mean(subset estimates)| within *z_bar*
    subset standard deviations.
    """
    if not 0 < fraction < 1:
        raise EstimationError("fraction must be in (0, 1)")
    generator = _rng(rng)
    original = estimator(data, treatment, outcome, adjustment)
    n = data.num_rows
    k = max(int(n * fraction), 10)
    effects = []
    for _ in range(n_trials):
        idx = generator.choice(n, size=k, replace=False)
        effects.append(
            estimator(data.take(idx), treatment, outcome, adjustment).effect
        )
    spread = float(np.std(effects, ddof=1)) if len(effects) > 1 else float("inf")
    drift = abs(float(np.mean(effects)) - original.effect)
    passed = drift <= z_bar * max(spread, 1e-12)
    return RefutationResult(
        name="subset",
        original_effect=original.effect,
        refuted_effects=tuple(effects),
        passed=passed,
        detail=(
            f"drift {drift:.4g} vs {z_bar} x subset sd {spread:.4g} "
            f"({'stable' if passed else 'UNSTABLE'} across subsets)"
        ),
    )


def dummy_outcome_refuter(
    data: Frame,
    treatment: str,
    outcome: str,
    adjustment: Sequence[str],
    estimator: EstimatorFn,
    n_trials: int = 10,
    rng: np.random.Generator | int | None = 0,
) -> RefutationResult:
    """Replace the outcome with noise; any recovered 'effect' is spurious.

    Pass bar: every dummy-outcome effect must be statistically null —
    we use |effect| < 4 x the dummy fits' own spread as a generous bar.
    """
    generator = _rng(rng)
    original = estimator(data, treatment, outcome, adjustment)
    effects = []
    for _ in range(n_trials):
        noise = generator.normal(0, 1, data.num_rows)
        dummy = data.with_column(outcome, noise)
        effects.append(estimator(dummy, treatment, outcome, adjustment).effect)
    spread = float(np.std(effects, ddof=1)) if len(effects) > 1 else 0.0
    worst = float(np.max(np.abs(effects)))
    passed = worst <= max(4 * spread, 1e-6)
    return RefutationResult(
        name="dummy_outcome",
        original_effect=original.effect,
        refuted_effects=tuple(effects),
        passed=passed,
        detail=(
            f"max |dummy effect| {worst:.4g} "
            f"({'consistent with zero' if passed else 'NOT consistent with zero: estimator is biased'})"
        ),
    )


def refute_all(
    data: Frame,
    treatment: str,
    outcome: str,
    adjustment: Sequence[str],
    estimator: EstimatorFn,
    n_trials: int = 10,
    rng: np.random.Generator | int | None = 0,
) -> list[RefutationResult]:
    """Run the full refutation battery, deterministically seeded."""
    generator = _rng(rng)
    seeds = generator.integers(0, 2**31, size=4)
    return [
        placebo_treatment_refuter(
            data, treatment, outcome, adjustment, estimator, n_trials, int(seeds[0])
        ),
        random_common_cause_refuter(
            data, treatment, outcome, adjustment, estimator, n_trials, rng=int(seeds[1])
        ),
        subset_refuter(
            data, treatment, outcome, adjustment, estimator, n_trials, rng=int(seeds[2])
        ),
        dummy_outcome_refuter(
            data, treatment, outcome, adjustment, estimator, n_trials, int(seeds[3])
        ),
    ]
