"""Frontdoor estimation.

When every backdoor path is latent but an observed mediator chain
carries the whole effect (see :mod:`repro.graph.frontdoor`), the effect
is still estimable.  For the linear SCMs this library targets, the
frontdoor estimand factorises into two regressions:

    effect(X -> Y)  =  effect(X -> M)  *  effect(M -> Y | X)

- the first stage ``M ~ X`` is unconfounded by assumption (condition 2
  of the criterion);
- the second stage ``Y ~ M + X`` blocks the mediator's backdoor through
  the treatment (condition 3).

:func:`frontdoor_estimate` implements the product-of-coefficients
estimator with a delta-method standard error, validating the mediator
graphically when a DAG is supplied.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import EstimationError
from repro.frames.frame import Frame
from repro.graph.dag import CausalDag
from repro.graph.frontdoor import satisfies_frontdoor
from repro.estimators.base import EffectEstimate
from repro.estimators.ols import fit_ols


def frontdoor_estimate(
    data: Frame,
    treatment: str,
    mediator: str,
    outcome: str,
    dag: CausalDag | None = None,
    robust: bool = True,
) -> EffectEstimate:
    """Product-of-coefficients frontdoor estimate for a single mediator.

    Parameters
    ----------
    data:
        Observations of treatment, mediator, and outcome.
    treatment, mediator, outcome:
        Column names; the mediator must satisfy the frontdoor criterion
        (checked against *dag* when given).
    """
    if dag is not None and not satisfies_frontdoor(
        dag, treatment, outcome, {mediator}
    ):
        raise EstimationError(
            f"{mediator!r} does not satisfy the frontdoor criterion for "
            f"{treatment!r} -> {outcome!r} in the given DAG"
        )
    sub = data.drop_missing([treatment, mediator, outcome])
    x = sub.numeric(treatment)
    m = sub.numeric(mediator)
    y = sub.numeric(outcome)

    first = fit_ols(m, {treatment: x}, robust=robust)
    second = fit_ols(y, {mediator: m, treatment: x}, robust=robust)
    a = first.coefficient(treatment)  # X -> M
    b = second.coefficient(mediator)  # M -> Y (holding X)
    se_a = first.standard_error(treatment)
    se_b = second.standard_error(mediator)
    effect = a * b
    # Delta method for a product of (approximately) independent estimates.
    se = float(np.sqrt(b * b * se_a * se_a + a * a * se_b * se_b))
    return EffectEstimate(
        effect=effect,
        standard_error=se,
        ci_low=effect - 1.96 * se,
        ci_high=effect + 1.96 * se,
        method="frontdoor.product_of_coefficients",
        n_treated=sub.num_rows,
        n_control=0,
        details={
            "first_stage": a,
            "second_stage": b,
            "mediator": mediator,
        },
    )


def frontdoor_estimate_multi(
    data: Frame,
    treatment: str,
    mediators: Sequence[str],
    outcome: str,
    robust: bool = True,
) -> EffectEstimate:
    """Frontdoor estimate through a set of parallel mediators.

    Sums the product-of-coefficient paths: ``sum_i a_i * b_i`` with
    ``a_i`` from ``M_i ~ X`` and ``b_i`` from ``Y ~ M_1..M_k + X``.
    """
    if not mediators:
        raise EstimationError("need at least one mediator")
    sub = data.drop_missing([treatment, *mediators, outcome])
    x = sub.numeric(treatment)
    y = sub.numeric(outcome)
    med_values = {m: sub.numeric(m) for m in mediators}

    second = fit_ols(
        y, {**med_values, treatment: x}, robust=robust
    )
    effect = 0.0
    var = 0.0
    details: dict[str, object] = {}
    for m in mediators:
        first = fit_ols(med_values[m], {treatment: x}, robust=robust)
        a = first.coefficient(treatment)
        b = second.coefficient(m)
        se_a = first.standard_error(treatment)
        se_b = second.standard_error(m)
        effect += a * b
        var += b * b * se_a * se_a + a * a * se_b * se_b
        details[f"path_{m}"] = a * b
    se = float(np.sqrt(var))
    return EffectEstimate(
        effect=effect,
        standard_error=se,
        ci_low=effect - 1.96 * se,
        ci_high=effect + 1.96 * se,
        method="frontdoor.multi_mediator",
        n_treated=sub.num_rows,
        n_control=0,
        details=details,
    )
