"""Instrumental-variable estimators: Wald ratio and two-stage least squares.

When treatment assignment is endogenous but an instrument Z satisfies
relevance and exclusion (see :mod:`repro.graph.instruments`), the local
average treatment effect is identified:

- :func:`wald_estimate` — for a binary instrument,
  ``(E[Y|Z=1] - E[Y|Z=0]) / (E[X|Z=1] - E[X|Z=0])``;
- :func:`two_stage_least_squares` — regress X on Z (+ exogenous
  controls), then Y on the fitted X̂; standard errors use the proper
  2SLS residuals (based on actual X, not X̂).

Both report the first-stage F statistic: the weak-instrument diagnostic
the paper's "healthy dose of skepticism" calls for (F < 10 is flagged).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import stats

from repro.errors import EstimationError, InsufficientDataError
from repro.frames.frame import Frame
from repro.graph.dag import CausalDag
from repro.graph.instruments import is_instrument
from repro.estimators.base import EffectEstimate, require_binary
from repro.estimators.ols import fit_ols

WEAK_INSTRUMENT_F = 10.0


def first_stage_f(z: np.ndarray, x: np.ndarray, controls: np.ndarray | None = None) -> float:
    """F statistic for the instrument's explanatory power over treatment."""
    regs = {"z": z}
    if controls is not None:
        for j in range(controls.shape[1]):
            regs[f"w{j}"] = controls[:, j]
    fit = fit_ols(x, regs)
    t_val = float(fit.t_values[fit.names.index("z")])
    return t_val**2


def wald_estimate(
    data: Frame,
    instrument: str,
    treatment: str,
    outcome: str,
    dag: CausalDag | None = None,
) -> EffectEstimate:
    """Wald/IV ratio estimate for a binary instrument.

    With *dag* given, the instrument is first validated graphically and
    an :class:`EstimationError` explains a rejection.
    """
    if dag is not None and not is_instrument(dag, instrument, treatment, outcome):
        raise EstimationError(
            f"{instrument!r} is not a valid instrument for "
            f"{treatment!r} -> {outcome!r} in the given DAG"
        )
    sub = data.drop_missing([instrument, treatment, outcome])
    z = require_binary(sub.numeric(instrument), instrument)
    x = sub.numeric(treatment)
    y = sub.numeric(outcome)
    n1 = int(z.sum())
    n0 = int((~z).sum())
    if n1 < 2 or n0 < 2:
        raise InsufficientDataError("need >= 2 rows in each instrument arm")
    dx = float(x[z].mean() - x[~z].mean())
    dy = float(y[z].mean() - y[~z].mean())
    if abs(dx) < 1e-12:
        raise EstimationError(
            f"instrument {instrument!r} does not move the treatment (first stage = 0)"
        )
    late = dy / dx
    f_stat = first_stage_f(z.astype(float), x)

    # Delta-method standard error for the ratio of two mean differences.
    var_dy = y[z].var(ddof=1) / n1 + y[~z].var(ddof=1) / n0
    var_dx = x[z].var(ddof=1) / n1 + x[~z].var(ddof=1) / n0
    cov_xy = (
        np.cov(x[z], y[z], ddof=1)[0, 1] / n1
        + np.cov(x[~z], y[~z], ddof=1)[0, 1] / n0
    )
    var = (var_dy + late**2 * var_dx - 2 * late * cov_xy) / dx**2
    se = float(np.sqrt(max(var, 0.0)))
    return EffectEstimate(
        effect=late,
        standard_error=se,
        ci_low=late - 1.96 * se,
        ci_high=late + 1.96 * se,
        method="iv.wald",
        n_treated=n1,
        n_control=n0,
        details={
            "first_stage": dx,
            "reduced_form": dy,
            "first_stage_f": f_stat,
            "weak_instrument": f_stat < WEAK_INSTRUMENT_F,
        },
    )


def two_stage_least_squares(
    data: Frame,
    instrument: str,
    treatment: str,
    outcome: str,
    controls: Sequence[str] = (),
    dag: CausalDag | None = None,
) -> EffectEstimate:
    """2SLS estimate with optional exogenous controls.

    Standard errors follow the textbook 2SLS formula: residuals are
    computed with the *actual* treatment, while the bread uses the
    projected design matrix.
    """
    if dag is not None and not is_instrument(
        dag, instrument, treatment, outcome, set(controls)
    ):
        raise EstimationError(
            f"{instrument!r} is not a valid instrument for "
            f"{treatment!r} -> {outcome!r} given {sorted(controls)} in the DAG"
        )
    sub = data.drop_missing([instrument, treatment, outcome, *controls])
    n = sub.num_rows
    z = sub.numeric(instrument)
    x = sub.numeric(treatment)
    y = sub.numeric(outcome)
    w = (
        np.column_stack([sub.numeric(c) for c in controls])
        if controls
        else np.empty((n, 0))
    )
    k = 2 + w.shape[1]  # intercept + treatment + controls
    if n <= k:
        raise InsufficientDataError(f"need > {k} rows, have {n}")

    # First stage: X on [1, Z, W]; keep fitted values.
    z_design = np.column_stack([np.ones(n), z, w])
    gamma, *_ = np.linalg.lstsq(z_design, x, rcond=None)
    x_hat = z_design @ gamma
    f_stat = first_stage_f(z, x, w if controls else None)
    if abs(float(np.std(x_hat))) < 1e-12:
        raise EstimationError("first stage is degenerate (instrument irrelevant)")

    # Second stage: Y on [1, X_hat, W].
    design_hat = np.column_stack([np.ones(n), x_hat, w])
    beta, *_ = np.linalg.lstsq(design_hat, y, rcond=None)
    # 2SLS residuals use the actual X.
    design_actual = np.column_stack([np.ones(n), x, w])
    resid = y - design_actual @ beta
    dof = n - k
    sigma2 = float(resid @ resid) / dof
    bread = np.linalg.pinv(design_hat.T @ design_hat)
    cov = sigma2 * bread
    se = float(np.sqrt(max(cov[1, 1], 0.0)))
    effect = float(beta[1])
    t_crit = float(stats.t.ppf(0.975, dof))
    return EffectEstimate(
        effect=effect,
        standard_error=se,
        ci_low=effect - t_crit * se,
        ci_high=effect + t_crit * se,
        method="iv.2sls",
        n_treated=n,
        n_control=0,
        details={
            "controls": list(controls),
            "first_stage_f": f_stat,
            "weak_instrument": f_stat < WEAK_INSTRUMENT_F,
        },
    )
