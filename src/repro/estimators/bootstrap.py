"""Nonparametric bootstrap for estimator uncertainty.

Resamples rows of a frame with replacement, re-runs an arbitrary
estimator callable, and summarizes the resulting distribution with
percentile confidence intervals.  Used where analytic standard errors
are awkward (matching, synthetic-control summaries) and in tests as an
independent check on closed-form CIs.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError
from repro.frames.frame import Frame


@dataclass(frozen=True)
class BootstrapResult:
    """Summary of a bootstrap distribution."""

    estimate: float
    standard_error: float
    ci_low: float
    ci_high: float
    n_resamples: int
    n_failed: int

    def __str__(self) -> str:
        return (
            f"bootstrap: {self.estimate:+.4g} (se={self.standard_error:.4g}) "
            f"[95% CI {self.ci_low:+.4g}, {self.ci_high:+.4g}] "
            f"({self.n_resamples} resamples, {self.n_failed} failed)"
        )


def bootstrap(
    data: Frame,
    statistic: Callable[[Frame], float],
    n_resamples: int = 500,
    rng: np.random.Generator | int | None = 0,
    ci_level: float = 0.95,
    max_failure_fraction: float = 0.2,
) -> BootstrapResult:
    """Percentile bootstrap of ``statistic(data)``.

    Resamples raising any exception count as failures; more than
    *max_failure_fraction* failing aborts with an
    :class:`EstimationError` (a statistic that usually breaks on
    resampled data is not trustworthy).
    """
    if n_resamples < 2:
        raise EstimationError("n_resamples must be >= 2")
    if data.num_rows == 0:
        raise EstimationError("cannot bootstrap an empty frame")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    point = float(statistic(data))
    values: list[float] = []
    failed = 0
    n = data.num_rows
    for _ in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        try:
            values.append(float(statistic(data.take(idx))))
        except Exception:
            failed += 1
    if failed > max_failure_fraction * n_resamples:
        raise EstimationError(
            f"{failed}/{n_resamples} bootstrap resamples failed; statistic is unstable"
        )
    arr = np.asarray(values)
    alpha = (1.0 - ci_level) / 2
    return BootstrapResult(
        estimate=point,
        standard_error=float(arr.std(ddof=1)),
        ci_low=float(np.quantile(arr, alpha)),
        ci_high=float(np.quantile(arr, 1 - alpha)),
        n_resamples=len(values),
        n_failed=failed,
    )


def permutation_p_value(
    observed: float,
    null_values: np.ndarray | list[float],
    alternative: str = "two-sided",
) -> float:
    """Permutation/placebo p-value of *observed* against a null sample.

    Uses the add-one convention ``(1 + #{null >= obs}) / (1 + n)`` so the
    p-value is never exactly zero.  This is the machinery behind the
    paper's placebo-based p column in Table 1.
    """
    null = np.asarray(null_values, dtype=float)
    null = null[np.isfinite(null)]
    if null.size == 0:
        raise EstimationError("empty null distribution")
    if alternative == "greater":
        extreme = int(np.sum(null >= observed))
    elif alternative == "less":
        extreme = int(np.sum(null <= observed))
    elif alternative == "two-sided":
        extreme = int(np.sum(np.abs(null) >= abs(observed)))
    else:
        raise EstimationError(f"unknown alternative {alternative!r}")
    return (1 + extreme) / (1 + null.size)
