"""Nearest-neighbour covariate matching.

For each treated unit, find the control unit(s) closest in standardized
covariate space (Mahalanobis-lite: per-dimension z-scoring, Euclidean
distance via a scipy KD-tree) and contrast outcomes.  Reports the ATT —
the effect on the treated — plus match-quality diagnostics.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import EstimationError, InsufficientDataError
from repro.frames.frame import Frame
from repro.graph.dag import CausalDag
from repro.estimators.adjustment import resolve_adjustment_set
from repro.estimators.base import EffectEstimate, require_binary


def matching_estimate(
    data: Frame,
    treatment: str,
    outcome: str,
    adjustment: Sequence[str] | None = None,
    dag: CausalDag | None = None,
    n_neighbors: int = 1,
    caliper: float | None = None,
) -> EffectEstimate:
    """ATT by k-nearest-neighbour matching on the adjustment covariates.

    Parameters
    ----------
    n_neighbors:
        Controls averaged per treated unit (with replacement).
    caliper:
        Optional maximum standardized distance; treated units with no
        control within the caliper are dropped (count reported in
        ``details``).
    """
    adj = resolve_adjustment_set(dag, treatment, outcome, adjustment)
    if not adj:
        raise EstimationError("matching needs a non-empty adjustment set")
    if n_neighbors < 1:
        raise EstimationError("n_neighbors must be >= 1")
    sub = data.drop_missing([treatment, outcome, *adj])
    t = require_binary(sub.numeric(treatment), treatment)
    y = sub.numeric(outcome)
    x = np.column_stack([sub.numeric(c) for c in adj])
    if int(t.sum()) == 0 or int((~t).sum()) < n_neighbors:
        raise InsufficientDataError(
            f"need >= 1 treated and >= {n_neighbors} control rows"
        )

    scale = x.std(axis=0, ddof=1)
    scale[scale == 0] = 1.0
    xz = (x - x.mean(axis=0)) / scale

    controls = xz[~t]
    control_y = y[~t]
    tree = cKDTree(controls)
    dists, idx = tree.query(xz[t], k=n_neighbors)
    dists = np.atleast_2d(dists.reshape(int(t.sum()), n_neighbors))
    idx = np.atleast_2d(idx.reshape(int(t.sum()), n_neighbors))

    effects: list[float] = []
    match_dists: list[float] = []
    dropped = 0
    treated_y = y[t]
    for i in range(idx.shape[0]):
        d = dists[i]
        if caliper is not None and float(d.min()) > caliper:
            dropped += 1
            continue
        matched = control_y[idx[i]]
        effects.append(float(treated_y[i] - matched.mean()))
        match_dists.append(float(d.mean()))
    if not effects:
        raise InsufficientDataError("caliper dropped every treated unit")
    att = float(np.mean(effects))
    se = (
        float(np.std(effects, ddof=1) / np.sqrt(len(effects)))
        if len(effects) > 1
        else float("nan")
    )
    return EffectEstimate(
        effect=att,
        standard_error=se,
        ci_low=att - 1.96 * se,
        ci_high=att + 1.96 * se,
        method="backdoor.matching",
        n_treated=len(effects),
        n_control=int((~t).sum()),
        details={
            "adjustment_set": adj,
            "n_neighbors": n_neighbors,
            "mean_match_distance": float(np.mean(match_dists)),
            "dropped_treated": dropped,
        },
    )
