"""Sensitivity to unobserved confounding (Cinelli & Hazlett style).

Backdoor adjustment is only as good as the adjustment set; the paper's
§4 asks studies to "report uncertainty in causal estimates", which for
observational designs means quantifying how strong an *unmeasured*
confounder would have to be to overturn the conclusion.  This module
implements the partial-R² sensitivity framework:

- :func:`robustness_value` — the share of residual variance an omitted
  confounder must explain of **both** treatment and outcome to drive
  the estimate to zero (RV ≈ 0 means fragile, RV ≈ 1 means unassailable);
- :func:`partial_r2` — the treatment's own partial R², an upper bound
  benchmark for "could a confounder plausibly be this strong?";
- :func:`bias_bound` — the maximum bias a hypothesised confounder with
  given partial-R² strengths could induce (the adjusted-estimate bound);
- :func:`sensitivity_report` — everything above in one readable object.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError
from repro.frames.frame import Frame
from repro.estimators.ols import OlsFit, fit_ols


def _fit_for(
    data: Frame, treatment: str, outcome: str, adjustment: Sequence[str]
) -> OlsFit:
    sub = data.drop_missing([treatment, outcome, *adjustment])
    regs = {treatment: sub.numeric(treatment)}
    for name in adjustment:
        regs[name] = sub.numeric(name)
    return fit_ols(sub.numeric(outcome), regs)


def partial_r2(fit: OlsFit, term: str) -> float:
    """Partial R² of one regressor, from its t statistic.

    ``R²_partial = t² / (t² + dof)`` — the share of residual outcome
    variance that regressor uniquely explains.
    """
    t = float(fit.t_values[fit.names.index(term)])
    return t * t / (t * t + fit.dof)


def robustness_value(
    fit: OlsFit, term: str, q: float = 1.0, alpha: float | None = None
) -> float:
    """The Cinelli-Hazlett robustness value RV_q.

    The minimum partial R² an unobserved confounder needs **with both**
    the treatment and the outcome to reduce the estimate by a fraction
    *q* (q=1: to zero).  With *alpha* set, computes RV_{q,alpha}: the
    strength needed to make the estimate statistically insignificant at
    that level rather than zero.
    """
    if q <= 0:
        raise EstimationError("q must be positive")
    t = float(fit.t_values[fit.names.index(term)])
    dof = fit.dof
    if alpha is not None:
        from scipy import stats

        t_crit = float(stats.t.ppf(1 - alpha / 2, dof - 1))
        f = max(abs(t) / math.sqrt(dof) * q - t_crit / math.sqrt(dof - 1), 0.0)
    else:
        f = abs(t) / math.sqrt(dof) * q
    if f == 0.0:
        return 0.0
    rv = 0.5 * (math.sqrt(f**4 + 4 * f * f) - f * f)
    return float(min(max(rv, 0.0), 1.0))


def bias_bound(
    fit: OlsFit,
    term: str,
    r2_confounder_treatment: float,
    r2_confounder_outcome: float,
) -> float:
    """Maximum |bias| a confounder of given strength could induce.

    ``|bias| <= se * sqrt(R²_yu * R²_tu / (1 - R²_tu)) * sqrt(dof)``
    where the R² are the confounder's partial R² with outcome and
    treatment respectively.
    """
    for name, value in (
        ("r2_confounder_treatment", r2_confounder_treatment),
        ("r2_confounder_outcome", r2_confounder_outcome),
    ):
        if not 0 <= value < 1:
            raise EstimationError(f"{name} must be in [0, 1), got {value}")
    se = float(fit.standard_errors[fit.names.index(term)])
    return float(
        se
        * math.sqrt(
            r2_confounder_outcome
            * r2_confounder_treatment
            / (1 - r2_confounder_treatment)
        )
        * math.sqrt(fit.dof)
    )


@dataclass(frozen=True)
class SensitivityReport:
    """Sensitivity summary for one adjusted estimate.

    Attributes
    ----------
    effect, standard_error:
        The adjusted point estimate under scrutiny.
    rv:
        Robustness value for driving the effect to zero.
    rv_significant:
        Robustness value for merely destroying 5% significance.
    treatment_partial_r2:
        The treatment's own explanatory strength (a plausibility
        yardstick for hypothetical confounders).
    benchmark_bounds:
        ``{covariate: bias if a confounder were as strong as it}`` for
        each observed adjustment covariate.
    """

    effect: float
    standard_error: float
    rv: float
    rv_significant: float
    treatment_partial_r2: float
    benchmark_bounds: dict[str, float]

    def verdict(self) -> str:
        """Prose robustness verdict."""
        if self.rv >= 0.2:
            strength = "strong"
        elif self.rv >= 0.05:
            strength = "moderate"
        else:
            strength = "fragile"
        return (
            f"estimate {self.effect:+.4g}: a confounder explaining "
            f"{self.rv:.1%} of residual variance in both treatment and "
            f"outcome would drive it to zero ({strength}); "
            f"{self.rv_significant:.1%} would already destroy 5% significance"
        )

    def format_report(self) -> str:
        """Multi-line report including observed-covariate benchmarks."""
        lines = [self.verdict()]
        if self.benchmark_bounds:
            lines.append("bias if a hidden confounder matched an observed one:")
            for name, bound in sorted(self.benchmark_bounds.items()):
                lines.append(
                    f"  as strong as {name!r}: |bias| <= {bound:.4g} "
                    f"({'could' if bound >= abs(self.effect) else 'could NOT'} "
                    "explain the whole effect)"
                )
        return "\n".join(lines)


def sensitivity_report(
    data: Frame,
    treatment: str,
    outcome: str,
    adjustment: Sequence[str],
) -> SensitivityReport:
    """Full sensitivity analysis of a regression-adjusted estimate.

    Benchmarks: for each observed adjustment covariate, the bias an
    unobserved confounder *as strong as that covariate* (in partial-R²
    terms, on both equations) could induce.
    """
    fit = _fit_for(data, treatment, outcome, adjustment)
    sub = data.drop_missing([treatment, outcome, *adjustment])

    benchmarks: dict[str, float] = {}
    for name in adjustment:
        r2_yu = partial_r2(fit, name)
        # Strength with the treatment: partial R2 of the covariate in a
        # regression of the treatment on the full adjustment set.
        t_regs = {c: sub.numeric(c) for c in adjustment}
        t_fit = fit_ols(sub.numeric(treatment), t_regs)
        r2_tu = partial_r2(t_fit, name)
        r2_tu = min(r2_tu, 0.99)
        benchmarks[name] = bias_bound(fit, treatment, r2_tu, r2_yu)

    return SensitivityReport(
        effect=fit.coefficient(treatment),
        standard_error=fit.standard_error(treatment),
        rv=robustness_value(fit, treatment),
        rv_significant=robustness_value(fit, treatment, alpha=0.05),
        treatment_partial_r2=partial_r2(fit, treatment),
        benchmark_bounds=benchmarks,
    )
