"""Backdoor adjustment estimators: stratification and regression.

Both implement the adjustment formula licensed by a valid backdoor set Z:

    ATE = E_z[ E[Y | X=1, Z=z] - E[Y | X=0, Z=z] ].

- :func:`stratified_adjustment` bins Z and averages within-stratum
  contrasts weighted by stratum frequency — the paper's "compare
  latencies across routes only when C is similar, e.g. at comparable
  load levels".
- :func:`regression_adjustment` fits ``Y ~ X + Z`` and reads the
  coefficient on X (exact when effects are linear and homogeneous).

Pass a :class:`~repro.graph.CausalDag` via *dag* to have the adjustment
set validated (or discovered) graphically before estimating.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import EstimationError, InsufficientDataError
from repro.frames.frame import Frame
from repro.graph.backdoor import find_adjustment_set, satisfies_backdoor
from repro.graph.dag import CausalDag
from repro.estimators.base import EffectEstimate, require_binary
from repro.estimators.ols import fit_ols


def resolve_adjustment_set(
    dag: CausalDag | None,
    treatment: str,
    outcome: str,
    adjustment: Sequence[str] | None,
) -> list[str]:
    """Validate a user-supplied adjustment set against the DAG, or find one.

    Without a DAG the user-supplied set is taken on faith (None means
    empty).  With a DAG, a supplied set must satisfy the backdoor
    criterion; a missing one is searched for.
    """
    if dag is None:
        return list(adjustment or ())
    if adjustment is None:
        return sorted(find_adjustment_set(dag, treatment, outcome))
    if not satisfies_backdoor(dag, treatment, outcome, set(adjustment)):
        raise EstimationError(
            f"adjustment set {sorted(adjustment)} does not satisfy the backdoor "
            f"criterion for {treatment!r} -> {outcome!r} in the given DAG"
        )
    return list(adjustment)


def stratified_adjustment(
    data: Frame,
    treatment: str,
    outcome: str,
    adjustment: Sequence[str] | None = None,
    dag: CausalDag | None = None,
    n_bins: int = 5,
    min_stratum_size: int = 2,
) -> EffectEstimate:
    """Estimate the ATE by coarsened stratification on the adjustment set.

    Continuous adjustment variables are quantile-binned into *n_bins*
    levels; strata lacking both a treated and a control unit (or smaller
    than *min_stratum_size*) are dropped, and the share of dropped rows
    is reported in ``details["dropped_fraction"]``.
    """
    adj = resolve_adjustment_set(dag, treatment, outcome, adjustment)
    sub = data.drop_missing([treatment, outcome, *adj])
    if sub.num_rows < 2 * min_stratum_size:
        raise InsufficientDataError(f"only {sub.num_rows} complete rows")
    t = require_binary(sub.numeric(treatment), treatment)
    y = sub.numeric(outcome)

    if not adj:
        keys = np.zeros(sub.num_rows, dtype=np.int64)
    else:
        digit_cols = []
        for name in adj:
            v = sub.numeric(name)
            uniq = np.unique(v)
            if len(uniq) <= n_bins:
                codes = np.searchsorted(uniq, v)
            else:
                edges = np.quantile(v, np.linspace(0, 1, n_bins + 1)[1:-1])
                codes = np.searchsorted(edges, v)
            digit_cols.append(codes)
        keys = np.zeros(sub.num_rows, dtype=np.int64)
        for codes in digit_cols:
            keys = keys * (int(codes.max()) + 1) + codes

    effects: list[float] = []
    weights: list[int] = []
    variances: list[float] = []
    used = 0
    for key in np.unique(keys):
        mask = keys == key
        ts = t[mask]
        ys = y[mask]
        n1 = int(ts.sum())
        n0 = int((~ts).sum())
        if n1 == 0 or n0 == 0 or (n1 + n0) < min_stratum_size:
            continue
        y1 = ys[ts]
        y0 = ys[~ts]
        effects.append(float(y1.mean() - y0.mean()))
        weights.append(n1 + n0)
        v1 = y1.var(ddof=1) / n1 if n1 > 1 else 0.0
        v0 = y0.var(ddof=1) / n0 if n0 > 1 else 0.0
        variances.append(v1 + v0)
        used += n1 + n0
    if not effects:
        raise InsufficientDataError(
            "no stratum contained both treated and control units; "
            "reduce n_bins or provide more data"
        )
    w = np.asarray(weights, dtype=float)
    w /= w.sum()
    ate = float(np.dot(w, effects))
    se = float(np.sqrt(np.dot(w**2, variances)))
    return EffectEstimate(
        effect=ate,
        standard_error=se,
        ci_low=ate - 1.96 * se,
        ci_high=ate + 1.96 * se,
        method="backdoor.stratification",
        n_treated=int(t.sum()),
        n_control=int((~t).sum()),
        details={
            "adjustment_set": adj,
            "n_strata_used": len(effects),
            "dropped_fraction": 1.0 - used / sub.num_rows,
        },
    )


def regression_adjustment(
    data: Frame,
    treatment: str,
    outcome: str,
    adjustment: Sequence[str] | None = None,
    dag: CausalDag | None = None,
    robust: bool = True,
) -> EffectEstimate:
    """Estimate the ATE as the treatment coefficient of ``Y ~ X + Z``."""
    adj = resolve_adjustment_set(dag, treatment, outcome, adjustment)
    sub = data.drop_missing([treatment, outcome, *adj])
    t = sub.numeric(treatment)
    y = sub.numeric(outcome)
    regs = {treatment: t}
    for name in adj:
        regs[name] = sub.numeric(name)
    fit = fit_ols(y, regs, robust=robust)
    effect = fit.coefficient(treatment)
    se = fit.standard_error(treatment)
    lo, hi = fit.confidence_interval(treatment)
    binary = set(np.unique(t).tolist()) <= {0.0, 1.0}
    n_treated = int(t.sum()) if binary else sub.num_rows
    n_control = int((t == 0).sum()) if binary else 0
    return EffectEstimate(
        effect=effect,
        standard_error=se,
        ci_low=lo,
        ci_high=hi,
        method="backdoor.regression",
        n_treated=n_treated,
        n_control=n_control,
        details={"adjustment_set": adj, "r_squared": fit.r_squared},
    )
