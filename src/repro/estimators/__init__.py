"""Treatment-effect estimators.

Rung-1 baselines and rung-2 estimators usable once identification has
been established graphically (:mod:`repro.graph`):

- :func:`naive_difference` — the unadjusted contrast (for comparison);
- :func:`stratified_adjustment`, :func:`regression_adjustment`,
  :func:`ipw_estimate`, :func:`matching_estimate` — backdoor adjustment;
- :func:`wald_estimate`, :func:`two_stage_least_squares` — instrumental
  variables with weak-instrument diagnostics;
- :func:`did_estimate` — difference-in-differences with a
  parallel-trends check;
- :func:`bootstrap` / :func:`permutation_p_value` — resampling inference.
"""

from repro.estimators.adjustment import (
    regression_adjustment,
    resolve_adjustment_set,
    stratified_adjustment,
)
from repro.estimators.base import (
    EffectEstimate,
    naive_difference,
    require_binary,
)
from repro.estimators.bootstrap import (
    BootstrapResult,
    bootstrap,
    permutation_p_value,
)
from repro.estimators.did import did_estimate, parallel_trends_check
from repro.estimators.frontdoor import frontdoor_estimate, frontdoor_estimate_multi
from repro.estimators.ipw import fit_logistic, ipw_estimate, propensity_scores
from repro.estimators.matching import matching_estimate
from repro.estimators.iv import (
    WEAK_INSTRUMENT_F,
    first_stage_f,
    two_stage_least_squares,
    wald_estimate,
)
from repro.estimators.ols import OlsFit, fit_ols
from repro.estimators.panel import (
    EventStudyResult,
    event_study,
    fixed_effects_estimate,
)
from repro.estimators.sensitivity import (
    SensitivityReport,
    bias_bound,
    partial_r2,
    robustness_value,
    sensitivity_report,
)
from repro.estimators.refute import (
    RefutationResult,
    dummy_outcome_refuter,
    placebo_treatment_refuter,
    random_common_cause_refuter,
    refute_all,
    subset_refuter,
)

__all__ = [
    "BootstrapResult",
    "EffectEstimate",
    "EventStudyResult",
    "OlsFit",
    "RefutationResult",
    "SensitivityReport",
    "WEAK_INSTRUMENT_F",
    "bias_bound",
    "bootstrap",
    "did_estimate",
    "dummy_outcome_refuter",
    "event_study",
    "first_stage_f",
    "fixed_effects_estimate",
    "fit_logistic",
    "fit_ols",
    "frontdoor_estimate",
    "frontdoor_estimate_multi",
    "ipw_estimate",
    "matching_estimate",
    "naive_difference",
    "parallel_trends_check",
    "partial_r2",
    "permutation_p_value",
    "placebo_treatment_refuter",
    "propensity_scores",
    "random_common_cause_refuter",
    "refute_all",
    "regression_adjustment",
    "robustness_value",
    "require_binary",
    "resolve_adjustment_set",
    "sensitivity_report",
    "stratified_adjustment",
    "subset_refuter",
    "two_stage_least_squares",
    "wald_estimate",
]
