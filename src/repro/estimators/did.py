"""Difference-in-differences.

For panel settings with a treated group and a never-treated comparison
group observed before and after an event, DiD identifies the ATT under
the parallel-trends assumption:

    ATT = (E[Y_treated,post] - E[Y_treated,pre])
        - (E[Y_control,post] - E[Y_control,pre]).

Implemented as the interaction coefficient of
``Y ~ treated + post + treated*post`` so standard errors come along, and
with a :func:`parallel_trends_check` on the pre-period as the paper's
"validate assumptions" step.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InsufficientDataError
from repro.frames.frame import Frame
from repro.estimators.base import EffectEstimate, require_binary
from repro.estimators.ols import fit_ols


def did_estimate(
    data: Frame,
    group: str,
    period: str,
    outcome: str,
    robust: bool = True,
) -> EffectEstimate:
    """DiD from long-format data with binary *group* and *period* columns."""
    sub = data.drop_missing([group, period, outcome])
    g = require_binary(sub.numeric(group), group).astype(float)
    p = require_binary(sub.numeric(period), period).astype(float)
    y = sub.numeric(outcome)
    for name, arr in ((group, g), (period, p)):
        if len(np.unique(arr)) < 2:
            raise InsufficientDataError(f"column {name!r} has a single level")
    cells = {(gv, pv) for gv, pv in zip(g, p)}
    if len(cells) < 4:
        raise InsufficientDataError(
            f"need all four group x period cells, have {sorted(cells)}"
        )
    interaction = g * p
    fit = fit_ols(
        y,
        {"treated": g, "post": p, "treated_post": interaction},
        robust=robust,
    )
    effect = fit.coefficient("treated_post")
    se = fit.standard_error("treated_post")
    lo, hi = fit.confidence_interval("treated_post")
    return EffectEstimate(
        effect=effect,
        standard_error=se,
        ci_low=lo,
        ci_high=hi,
        method="did.interaction",
        n_treated=int(g.sum()),
        n_control=int((1 - g).sum()),
        details={"p_value": fit.p_value("treated_post")},
    )


def parallel_trends_check(
    data: Frame,
    group: str,
    time: str,
    outcome: str,
    pre_cutoff: float,
) -> dict[str, float]:
    """Test whether pre-period trends differ between groups.

    Fits ``Y ~ group + time + group*time`` on rows with ``time <
    pre_cutoff`` and reports the interaction slope and its p-value.  A
    small p-value is evidence *against* parallel trends, i.e. against the
    DiD identifying assumption.
    """
    sub = data.drop_missing([group, time, outcome])
    mask = sub.numeric(time) < pre_cutoff
    pre = sub.filter(mask)
    if pre.num_rows < 8:
        raise InsufficientDataError(
            f"only {pre.num_rows} pre-period rows; need >= 8"
        )
    g = require_binary(pre.numeric(group), group).astype(float)
    t = pre.numeric(time)
    fit = fit_ols(
        pre.numeric(outcome),
        {"group": g, "time": t, "group_time": g * t},
        robust=True,
    )
    return {
        "trend_difference": fit.coefficient("group_time"),
        "p_value": fit.p_value("group_time"),
        "n_pre_rows": float(pre.num_rows),
    }
