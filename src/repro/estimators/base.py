"""Shared result type and helpers for treatment-effect estimators."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError, InsufficientDataError
from repro.frames.frame import Frame


@dataclass(frozen=True)
class EffectEstimate:
    """A point estimate of a (usually average) treatment effect.

    Attributes
    ----------
    effect:
        The point estimate.
    standard_error:
        Estimated standard error (NaN when the method provides none).
    ci_low, ci_high:
        95% confidence bounds (NaN when unavailable).
    method:
        Human-readable estimator name (e.g. ``"backdoor.regression"``).
    n_treated, n_control:
        Sample sizes entering the comparison.
    details:
        Free-form extras (first-stage F, weights, strata counts, ...).
    """

    effect: float
    standard_error: float
    ci_low: float
    ci_high: float
    method: str
    n_treated: int
    n_control: int
    details: dict[str, object] | None = None

    def __str__(self) -> str:
        ci = (
            f" [95% CI {self.ci_low:+.4g}, {self.ci_high:+.4g}]"
            if np.isfinite(self.ci_low)
            else ""
        )
        return (
            f"{self.method}: effect={self.effect:+.4g}"
            f" (se={self.standard_error:.4g}){ci}"
            f" n_treated={self.n_treated} n_control={self.n_control}"
        )

    @property
    def significant(self) -> bool:
        """Whether the 95% CI excludes zero (False when CI unavailable)."""
        if not (np.isfinite(self.ci_low) and np.isfinite(self.ci_high)):
            return False
        return self.ci_low > 0 or self.ci_high < 0


def extract_treatment_outcome(
    data: Frame, treatment: str, outcome: str
) -> tuple[np.ndarray, np.ndarray]:
    """Pull (treatment, outcome) as float arrays, dropping missing rows."""
    sub = data.drop_missing([treatment, outcome])
    if sub.num_rows == 0:
        raise InsufficientDataError("no complete rows for treatment/outcome")
    return sub.numeric(treatment), sub.numeric(outcome)


def require_binary(values: np.ndarray, name: str) -> np.ndarray:
    """Validate that an array is 0/1-coded and return it as booleans."""
    uniq = set(np.unique(values).tolist())
    if not uniq <= {0.0, 1.0}:
        raise EstimationError(
            f"{name} must be binary 0/1 for this estimator, saw values {sorted(uniq)[:6]}"
        )
    return values.astype(bool)


def naive_difference(data: Frame, treatment: str, outcome: str) -> EffectEstimate:
    """The unadjusted difference in means — the rung-1 contrast.

    Deliberately exposed so studies can report "what a naive analysis
    would have concluded" next to the adjusted estimate.
    """
    t, y = extract_treatment_outcome(data, treatment, outcome)
    mask = require_binary(t, treatment)
    treated = y[mask]
    control = y[~mask]
    if len(treated) == 0 or len(control) == 0:
        raise InsufficientDataError("need both treated and control rows")
    diff = float(treated.mean() - control.mean())
    var = treated.var(ddof=1) / len(treated) + control.var(ddof=1) / len(control)
    se = float(np.sqrt(var)) if len(treated) > 1 and len(control) > 1 else float("nan")
    return EffectEstimate(
        effect=diff,
        standard_error=se,
        ci_low=diff - 1.96 * se,
        ci_high=diff + 1.96 * se,
        method="naive.difference_in_means",
        n_treated=int(mask.sum()),
        n_control=int((~mask).sum()),
    )
