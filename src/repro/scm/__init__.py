"""Structural causal models: mechanisms, sampling, do(), counterfactuals.

The executable form of the paper's §3 primer: define structural
equations, sample the observational world, simulate interventions with
:meth:`StructuralCausalModel.do`, and answer unit-level "would it have
happened anyway?" questions with :func:`counterfactual`.  The
:class:`Ladder` wrapper exposes the three rungs as methods.
"""

from repro.scm.counterfactual import (
    CounterfactualResult,
    counterfactual,
    effect_of_treatment_on_treated,
)
from repro.scm.ladder import Ladder
from repro.scm.mechanisms import (
    AdditiveMechanism,
    BernoulliMechanism,
    ConstantMechanism,
    ExponentialNoise,
    GaussianNoise,
    LinearMechanism,
    Mechanism,
    Noise,
    UniformNoise,
    as_mechanism,
)
from repro.scm.model import StructuralCausalModel

__all__ = [
    "AdditiveMechanism",
    "BernoulliMechanism",
    "ConstantMechanism",
    "CounterfactualResult",
    "ExponentialNoise",
    "GaussianNoise",
    "Ladder",
    "LinearMechanism",
    "Mechanism",
    "Noise",
    "StructuralCausalModel",
    "UniformNoise",
    "as_mechanism",
    "counterfactual",
    "effect_of_treatment_on_treated",
]
