"""Structural mechanisms: how each SCM variable is computed from parents.

A mechanism maps a dict of parent values plus an exogenous noise draw to
the variable's value.  *Additive-noise* mechanisms (``value = f(parents)
+ noise``) additionally support abduction — recovering the noise from an
observed value — which is what makes unit-level counterfactuals
computable (§3 "Building counterfactuals").
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping
from typing import Any

import numpy as np

from repro.errors import SimulationError


class Mechanism:
    """Base class for structural mechanisms.

    Subclasses implement :meth:`evaluate`.  Additive-noise subclasses
    also implement :meth:`abduct` so counterfactual inference can recover
    the exogenous noise consistent with an observation.
    """

    def evaluate(self, parents: Mapping[str, float], noise: float) -> float:
        """Compute the variable's value from parent values and noise."""
        raise NotImplementedError

    def abduct(self, parents: Mapping[str, float], value: float) -> float:
        """Recover the noise that produced *value* given *parents*.

        Raises :class:`SimulationError` for mechanisms where the noise is
        not identifiable from a single observation.
        """
        raise SimulationError(
            f"{type(self).__name__} does not support abduction; "
            "counterfactuals need additive-noise (or otherwise invertible) mechanisms"
        )

    @property
    def supports_abduction(self) -> bool:
        """Whether :meth:`abduct` is implemented."""
        return False


class LinearMechanism(Mechanism):
    """``value = intercept + sum_i coef_i * parent_i + noise``."""

    def __init__(self, coefficients: Mapping[str, float], intercept: float = 0.0) -> None:
        self.coefficients = dict(coefficients)
        self.intercept = float(intercept)

    def _mean(self, parents: Mapping[str, float]) -> float:
        total = self.intercept
        for name, coef in self.coefficients.items():
            if name not in parents:
                raise SimulationError(f"mechanism needs parent {name!r}, got {sorted(parents)}")
            total += coef * float(parents[name])
        return total

    def evaluate(self, parents: Mapping[str, float], noise: float) -> float:
        return self._mean(parents) + noise

    def abduct(self, parents: Mapping[str, float], value: float) -> float:
        return float(value) - self._mean(parents)

    @property
    def supports_abduction(self) -> bool:
        return True

    def __repr__(self) -> str:
        terms = " + ".join(f"{c:g}*{p}" for p, c in sorted(self.coefficients.items()))
        return f"LinearMechanism({self.intercept:g} + {terms} + noise)"


class AdditiveMechanism(Mechanism):
    """``value = f(parents) + noise`` for an arbitrary deterministic f."""

    def __init__(self, fn: Callable[[Mapping[str, float]], float], label: str = "f") -> None:
        self.fn = fn
        self.label = label

    def evaluate(self, parents: Mapping[str, float], noise: float) -> float:
        return float(self.fn(parents)) + noise

    def abduct(self, parents: Mapping[str, float], value: float) -> float:
        return float(value) - float(self.fn(parents))

    @property
    def supports_abduction(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"AdditiveMechanism({self.label} + noise)"


class BernoulliMechanism(Mechanism):
    """A 0/1 variable with logistic probability in its parents.

    ``P(value=1) = sigmoid(intercept + sum coef_i * parent_i)``; the noise
    draw is a uniform threshold in [0, 1).  Not abducible from a single
    observation (the uniform is only set-identified), so counterfactuals
    over Bernoulli nodes require the intervention to fix them directly.
    """

    def __init__(self, coefficients: Mapping[str, float], intercept: float = 0.0) -> None:
        self.coefficients = dict(coefficients)
        self.intercept = float(intercept)

    def probability(self, parents: Mapping[str, float]) -> float:
        """P(value = 1 | parents)."""
        logit = self.intercept
        for name, coef in self.coefficients.items():
            if name not in parents:
                raise SimulationError(f"mechanism needs parent {name!r}")
            logit += coef * float(parents[name])
        return 1.0 / (1.0 + math.exp(-logit))

    def evaluate(self, parents: Mapping[str, float], noise: float) -> float:
        return 1.0 if noise < self.probability(parents) else 0.0

    def __repr__(self) -> str:
        terms = " + ".join(f"{c:g}*{p}" for p, c in sorted(self.coefficients.items()))
        return f"BernoulliMechanism(sigmoid({self.intercept:g} + {terms}))"


class ConstantMechanism(Mechanism):
    """A variable pinned to a constant — the result of a do() intervention."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def evaluate(self, parents: Mapping[str, float], noise: float) -> float:
        return self.value

    def abduct(self, parents: Mapping[str, float], value: float) -> float:
        return 0.0

    @property
    def supports_abduction(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"ConstantMechanism({self.value:g})"


class Noise:
    """An exogenous noise distribution, drawn via a numpy Generator."""

    def draw(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw *size* i.i.d. noise values."""
        raise NotImplementedError


class GaussianNoise(Noise):
    """N(mean, std^2) noise (the additive-model default)."""

    def __init__(self, std: float = 1.0, mean: float = 0.0) -> None:
        if std < 0:
            raise SimulationError(f"noise std must be >= 0, got {std}")
        self.std = float(std)
        self.mean = float(mean)

    def draw(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.normal(self.mean, self.std, size)

    def __repr__(self) -> str:
        return f"GaussianNoise(std={self.std:g}, mean={self.mean:g})"


class UniformNoise(Noise):
    """Uniform[low, high) noise (used as Bernoulli thresholds)."""

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        if high <= low:
            raise SimulationError(f"need high > low, got [{low}, {high})")
        self.low = float(low)
        self.high = float(high)

    def draw(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size)

    def __repr__(self) -> str:
        return f"UniformNoise([{self.low:g}, {self.high:g}))"


class ExponentialNoise(Noise):
    """Exponential(scale) noise — heavy-ish one-sided delays."""

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise SimulationError(f"scale must be > 0, got {scale}")
        self.scale = float(scale)

    def draw(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(self.scale, size)

    def __repr__(self) -> str:
        return f"ExponentialNoise(scale={self.scale:g})"


def as_mechanism(spec: Any) -> Mechanism:
    """Coerce a spec into a mechanism.

    Accepts a :class:`Mechanism`, a number (constant), or a callable
    treated as an additive deterministic function of the parents.
    """
    if isinstance(spec, Mechanism):
        return spec
    if isinstance(spec, (int, float)):
        return ConstantMechanism(float(spec))
    if callable(spec):
        return AdditiveMechanism(spec)
    raise SimulationError(f"cannot interpret {spec!r} as a mechanism")
