"""Pearl's ladder of causation as an executable API.

:class:`Ladder` wraps an SCM and exposes one method per rung, mirroring
§3 of the paper:

- rung 1, :meth:`associate` — E[Y | X = x] from observational samples;
- rung 2, :meth:`intervene` — E[Y | do(X = x)] by simulating the
  surgically modified model;
- rung 3, :meth:`counterfact` — the unit-level counterfactual for an
  observed row.

The gap between :meth:`associate` and :meth:`intervene` *is* confounding
bias, and :meth:`confounding_gap` reports it directly.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import EstimationError
from repro.scm.counterfactual import CounterfactualResult, counterfactual
from repro.scm.model import StructuralCausalModel


class Ladder:
    """Association / intervention / counterfactual queries over one SCM.

    Queries are *repeatable*: every call draws from a fresh generator
    seeded with the ladder's seed, so e.g. :meth:`confounding_gap` is
    exactly the difference of its two component queries.
    """

    def __init__(
        self,
        model: StructuralCausalModel,
        n_samples: int = 20_000,
        seed: int = 0,
        rng: int | None = None,
    ) -> None:
        if n_samples <= 0:
            raise EstimationError("n_samples must be positive")
        self.model = model
        self.n_samples = n_samples
        self.seed = int(rng) if rng is not None else int(seed)

    def _fresh_rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def associate(
        self,
        outcome: str,
        given: Mapping[str, float],
        tolerance: float = 0.25,
    ) -> float:
        """Estimate E[outcome | given ≈ values] from observational samples.

        Conditioning is by window: rows where every conditioned variable
        lies within *tolerance* of its target value.  For binary
        variables a tolerance below 0.5 selects exact matches.
        """
        data = self.model.sample(self.n_samples, self._fresh_rng())
        mask = np.ones(data.num_rows, dtype=bool)
        for name, value in given.items():
            mask &= np.abs(data[name] - float(value)) <= tolerance
        selected = data[outcome][mask]
        if len(selected) == 0:
            raise EstimationError(
                f"no samples matched the conditioning window {dict(given)!r}; "
                "raise tolerance or n_samples"
            )
        return float(np.mean(selected))

    def intervene(self, outcome: str, do: Mapping[str, float]) -> float:
        """Estimate E[outcome | do(...)] by simulating the modified model."""
        modified = self.model.do(dict(do))
        data = modified.sample(self.n_samples, self._fresh_rng())
        return float(np.mean(data[outcome]))

    def counterfact(
        self,
        observation: Mapping[str, float],
        intervention: Mapping[str, float],
    ) -> CounterfactualResult:
        """Unit-level counterfactual via abduction-action-prediction."""
        return counterfactual(self.model, observation, intervention)

    def association_difference(
        self, outcome: str, treatment: str, treated: float = 1.0, control: float = 0.0,
        tolerance: float = 0.25,
    ) -> float:
        """Rung-1 contrast E[Y|X=treated] - E[Y|X=control] (confounded in general)."""
        return self.associate(outcome, {treatment: treated}, tolerance) - self.associate(
            outcome, {treatment: control}, tolerance
        )

    def interventional_difference(
        self, outcome: str, treatment: str, treated: float = 1.0, control: float = 0.0
    ) -> float:
        """Rung-2 contrast E[Y|do(X=treated)] - E[Y|do(X=control)] (the ATE)."""
        return self.intervene(outcome, {treatment: treated}) - self.intervene(
            outcome, {treatment: control}
        )

    def confounding_gap(
        self, outcome: str, treatment: str, treated: float = 1.0, control: float = 0.0,
        tolerance: float = 0.25,
    ) -> float:
        """Association-minus-intervention contrast: the bias confounding adds."""
        return self.association_difference(
            outcome, treatment, treated, control, tolerance
        ) - self.interventional_difference(outcome, treatment, treated, control)
