"""Structural causal models.

A :class:`StructuralCausalModel` binds a :class:`~repro.graph.CausalDag`
to a mechanism and a noise distribution per variable.  It supports:

- ancestral **sampling** (rung 1: what the observational world produces);
- **do-interventions** via :meth:`do` (rung 2: graph surgery plus a
  constant mechanism);
- **abduction** of exogenous noise from an observed row, enabling the
  counterfactual machinery in :mod:`repro.scm.counterfactual` (rung 3).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

import numpy as np

from repro.errors import SimulationError
from repro.frames.frame import Frame
from repro.graph.dag import CausalDag
from repro.scm.mechanisms import (
    ConstantMechanism,
    GaussianNoise,
    Mechanism,
    Noise,
    as_mechanism,
)


class StructuralCausalModel:
    """A set of structural equations over a causal DAG.

    Parameters
    ----------
    equations:
        ``{variable: (mechanism, noise)}`` or ``{variable: mechanism}``
        (Gaussian unit noise assumed).  Mechanisms may be
        :class:`Mechanism` objects, numbers (constants), or callables on
        the parent dict.
    dag:
        The causal graph.  When omitted, it is derived from linear and
        Bernoulli mechanism coefficient names; mechanisms given as bare
        callables then raise, because their parent set is not inferable.
    """

    def __init__(
        self,
        equations: Mapping[str, Any],
        dag: CausalDag | None = None,
    ) -> None:
        self._mechanisms: dict[str, Mechanism] = {}
        self._noises: dict[str, Noise] = {}
        for name, spec in equations.items():
            if isinstance(spec, tuple):
                mech_spec, noise = spec
            else:
                mech_spec, noise = spec, GaussianNoise(1.0)
            mech = as_mechanism(mech_spec)
            if not isinstance(noise, Noise):
                raise SimulationError(
                    f"noise for {name!r} must be a Noise instance, got {noise!r}"
                )
            self._mechanisms[name] = mech
            self._noises[name] = noise

        if dag is None:
            dag = self._derive_dag()
        self.dag = dag
        self._validate_dag()
        self._order = self.dag.topological_order()

    def _derive_dag(self) -> CausalDag:
        dag = CausalDag()
        for name, mech in self._mechanisms.items():
            dag.add_node(name)
            coeffs = getattr(mech, "coefficients", None)
            if coeffs is None:
                if not isinstance(mech, ConstantMechanism):
                    raise SimulationError(
                        f"variable {name!r} uses a mechanism whose parents cannot be "
                        "inferred; pass an explicit dag="
                    )
                continue
            for parent in coeffs:
                dag.add_edge(parent, name)
        return dag

    def _validate_dag(self) -> None:
        for name in self._mechanisms:
            if not self.dag.has_node(name):
                raise SimulationError(f"equation variable {name!r} missing from dag")
        for node in self.dag.nodes():
            if node not in self._mechanisms:
                raise SimulationError(
                    f"dag node {node!r} has no structural equation"
                )
            coeffs = getattr(self._mechanisms[node], "coefficients", None)
            if coeffs is not None:
                missing = set(coeffs) - self.dag.parents(node)
                if missing:
                    raise SimulationError(
                        f"mechanism for {node!r} references {sorted(missing)} "
                        "which are not dag parents"
                    )

    # -- introspection -----------------------------------------------------------

    @property
    def variables(self) -> list[str]:
        """Variables in topological order."""
        return list(self._order)

    def mechanism(self, name: str) -> Mechanism:
        """The structural mechanism of *name*."""
        try:
            return self._mechanisms[name]
        except KeyError:
            raise SimulationError(f"unknown variable {name!r}") from None

    def noise(self, name: str) -> Noise:
        """The exogenous noise distribution of *name*."""
        self.mechanism(name)
        return self._noises[name]

    def __repr__(self) -> str:
        return f"StructuralCausalModel({len(self._order)} variables: {self._order})"

    # -- sampling ----------------------------------------------------------------

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> Frame:
        """Draw *n* i.i.d. rows by ancestral sampling (observed world)."""
        frame, _ = self.sample_with_noise(n, rng)
        return frame

    def sample_with_noise(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> tuple[Frame, Frame]:
        """Sample rows and also return the exogenous noise draws.

        Returns ``(values, noises)``; the noise frame shares column names
        with the value frame and is what abduction would recover.
        """
        if n < 0:
            raise SimulationError(f"sample size must be >= 0, got {n}")
        rng = _as_rng(rng)
        noise_draws = {
            name: self._noises[name].draw(rng, n) for name in self._order
        }
        values = {name: np.empty(n, dtype=float) for name in self._order}
        for i in range(n):
            row: dict[str, float] = {}
            for name in self._order:
                parents = {p: row[p] for p in self.dag.parents(name)}
                row[name] = self._mechanisms[name].evaluate(
                    parents, float(noise_draws[name][i])
                )
            for name in self._order:
                values[name][i] = row[name]
        value_frame = Frame.from_dict({name: values[name] for name in self._order})
        noise_frame = Frame.from_dict({name: noise_draws[name] for name in self._order})
        return value_frame, noise_frame

    def evaluate_row(self, noises: Mapping[str, float]) -> dict[str, float]:
        """Deterministically evaluate all variables for given noise values.

        Variables pinned by a :class:`ConstantMechanism` (do-intervened)
        ignore their noise, so it may be omitted for them.
        """
        row: dict[str, float] = {}
        for name in self._order:
            parents = {p: row[p] for p in self.dag.parents(name)}
            mech = self._mechanisms[name]
            if name in noises:
                noise = float(noises[name])
            elif isinstance(mech, ConstantMechanism):
                noise = 0.0
            else:
                raise SimulationError(f"missing noise for variable {name!r}")
            row[name] = mech.evaluate(parents, noise)
        return row

    # -- interventions --------------------------------------------------------------

    def do(self, interventions: Mapping[str, float]) -> "StructuralCausalModel":
        """Return the post-intervention model (graph surgery + constants)."""
        for name in interventions:
            self.mechanism(name)
        new_eqs: dict[str, tuple[Mechanism, Noise]] = {}
        for name in self._order:
            if name in interventions:
                new_eqs[name] = (
                    ConstantMechanism(float(interventions[name])),
                    self._noises[name],
                )
            else:
                new_eqs[name] = (self._mechanisms[name], self._noises[name])
        return StructuralCausalModel(new_eqs, dag=self.dag.do(*interventions))

    # -- abduction --------------------------------------------------------------------

    def abduct_row(
        self,
        observation: Mapping[str, float],
        skip: set[str] | frozenset[str] = frozenset(),
    ) -> dict[str, float]:
        """Recover each variable's exogenous noise from a full observation.

        Requires every mechanism on the path to support abduction (i.e.
        additive noise).  Variables in *skip* — typically those about to
        be do-intervened, whose noise cannot influence the twin world —
        are left out of the result.  Raises :class:`SimulationError` for
        non-abducible mechanisms or incomplete observations.
        """
        noises: dict[str, float] = {}
        for name in self._order:
            if name in skip:
                continue
            if name not in observation:
                raise SimulationError(
                    f"observation is missing variable {name!r}; abduction needs all variables"
                )
            parents = {p: float(observation[p]) for p in self.dag.parents(name)}
            mech = self._mechanisms[name]
            if not mech.supports_abduction:
                raise SimulationError(
                    f"mechanism for {name!r} ({mech!r}) does not support abduction"
                )
            noises[name] = mech.abduct(parents, float(observation[name]))
        return noises


def _as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce None/int/Generator into a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
