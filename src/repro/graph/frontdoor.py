"""Frontdoor criterion.

When confounding between treatment X and outcome Y is latent (so no
observed backdoor set exists), a mediator set M satisfying the frontdoor
criterion still identifies the effect:

1. M intercepts every directed path from X to Y;
2. there is no unblocked backdoor path from X to M;
3. every backdoor path from M to Y is blocked by X.

The identification formula is then
``P(y | do(x)) = sum_m P(m | x) sum_x' P(y | x', m) P(x')``.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable

from repro.errors import GraphError, IdentificationError
from repro.graph.backdoor import satisfies_backdoor
from repro.graph.dag import CausalDag
from repro.graph.dsep import path_is_blocked


def intercepts_all_directed_paths(
    dag: CausalDag, treatment: str, outcome: str, mediators: Iterable[str]
) -> bool:
    """Whether every directed path X -> ... -> Y passes through *mediators*."""
    m = set(mediators)
    paths = dag.directed_paths(treatment, outcome)
    if not paths:
        return False
    return all(set(p[1:-1]) & m for p in paths)


def satisfies_frontdoor(
    dag: CausalDag, treatment: str, outcome: str, mediators: Iterable[str] | str
) -> bool:
    """Check the three frontdoor conditions for a candidate mediator set."""
    if isinstance(mediators, str):
        mediators = {mediators}
    m = set(mediators)
    for n in (treatment, outcome, *m):
        if not dag.has_node(n):
            raise GraphError(f"unknown node {n!r}")
    if treatment in m or outcome in m:
        return False
    if not all(dag.is_observed(v) for v in m):
        return False
    if not intercepts_all_directed_paths(dag, treatment, outcome, m):
        return False
    # (2) no unblocked backdoor path X -> any mediator.
    for med in m:
        if not satisfies_backdoor(dag, treatment, med, set()):
            return False
    # (3) X blocks every backdoor path from each mediator to Y.
    for med in m:
        for path in dag.all_paths(med, outcome):
            if len(path) >= 2 and dag.has_edge(path[1], path[0]):
                if not path_is_blocked(dag, path, {treatment}):
                    return False
    return True


def find_frontdoor_set(
    dag: CausalDag, treatment: str, outcome: str, max_size: int = 3
) -> set[str]:
    """Search for a smallest observed frontdoor mediator set.

    Raises :class:`IdentificationError` when none exists up to *max_size*.
    """
    pool = sorted(
        (dag.observed & dag.descendants(treatment)) - {outcome}
    )
    for size in range(1, min(max_size, len(pool)) + 1):
        for combo in combinations(pool, size):
            if satisfies_frontdoor(dag, treatment, outcome, set(combo)):
                return set(combo)
    raise IdentificationError(
        f"no frontdoor mediator set of size <= {max_size} "
        f"for {treatment!r} -> {outcome!r}"
    )
