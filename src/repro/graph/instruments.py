"""Instrumental-variable discovery on a causal DAG.

A variable I is an instrument for the effect of treatment X on outcome Y
(possibly conditional on an observed set W) when:

1. *relevance*: I is d-connected to X given W;
2. *exclusion*: I is d-separated from Y given W in the graph with the
   edge(s) X -> ... removed (i.e. I affects Y only through X);
3. W contains no descendant of X, and I is not a descendant of X.

This is the graphical (conditional) instrument criterion used by tools
like DAGitty.  The paper's §3 stresses that instruments "do not arrive
with clean labels"; :func:`explain_instrument` produces a human-readable
justification or refutation for a candidate.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable

from repro.errors import GraphError
from repro.graph.dag import CausalDag
from repro.graph.dsep import d_connected, d_separated


def _cut_treatment_outgoing(dag: CausalDag, treatment: str) -> CausalDag:
    pruned = dag.copy()
    for child in dag.children(treatment):
        pruned.remove_edge(treatment, child)
    return pruned


def is_instrument(
    dag: CausalDag,
    candidate: str,
    treatment: str,
    outcome: str,
    conditioning: Iterable[str] | str | None = None,
) -> bool:
    """Check the graphical instrument criterion for *candidate*."""
    if isinstance(conditioning, str):
        conditioning = {conditioning}
    w = set(conditioning or ())
    for n in (candidate, treatment, outcome, *w):
        if not dag.has_node(n):
            raise GraphError(f"unknown node {n!r}")
    if candidate in (treatment, outcome) or candidate in w:
        return False
    tx_desc = dag.descendants(treatment, include_self=True)
    if candidate in tx_desc or w & tx_desc:
        return False
    if not d_connected(dag, candidate, treatment, w):
        return False  # irrelevant instrument
    pruned = _cut_treatment_outgoing(dag, treatment)
    return d_separated(pruned, candidate, outcome, w)


def find_instruments(
    dag: CausalDag,
    treatment: str,
    outcome: str,
    max_conditioning: int = 2,
) -> list[tuple[str, set[str]]]:
    """Enumerate observed (instrument, conditioning-set) pairs.

    For each observed candidate, the smallest observed conditioning set
    (up to *max_conditioning*) making it a valid conditional instrument is
    reported.  Results are sorted by instrument name.
    """
    results: list[tuple[str, set[str]]] = []
    banned = dag.descendants(treatment, include_self=True) | {outcome}
    candidates = sorted(dag.observed - banned)
    pool = sorted(dag.observed - banned)
    for cand in candidates:
        others = [p for p in pool if p != cand]
        found: set[str] | None = None
        for size in range(0, min(max_conditioning, len(others)) + 1):
            for combo in combinations(others, size):
                if is_instrument(dag, cand, treatment, outcome, set(combo)):
                    found = set(combo)
                    break
            if found is not None:
                break
        if found is not None:
            results.append((cand, found))
    return results


def explain_instrument(
    dag: CausalDag,
    candidate: str,
    treatment: str,
    outcome: str,
    conditioning: Iterable[str] | str | None = None,
) -> str:
    """Return a prose explanation of why a candidate is or is not a valid IV."""
    if isinstance(conditioning, str):
        conditioning = {conditioning}
    w = set(conditioning or ())
    parts: list[str] = []
    tx_desc = dag.descendants(treatment, include_self=True)
    if candidate in tx_desc:
        parts.append(
            f"{candidate} is a descendant of the treatment {treatment}, so its "
            "variation is not exogenous to the treatment mechanism."
        )
    relevant = d_connected(dag, candidate, treatment, w)
    if relevant:
        parts.append(f"relevance holds: {candidate} is d-connected to {treatment}" +
                     (f" given {sorted(w)}" if w else "") + ".")
    else:
        parts.append(f"relevance FAILS: {candidate} is d-separated from {treatment}" +
                     (f" given {sorted(w)}" if w else "") + ".")
    pruned = _cut_treatment_outgoing(dag, treatment)
    excluded = d_separated(pruned, candidate, outcome, w)
    if excluded:
        parts.append(
            f"exclusion holds: with {treatment}'s causal edges cut, {candidate} is "
            f"d-separated from {outcome}; it affects the outcome only through the treatment."
        )
    else:
        parts.append(
            f"exclusion FAILS: {candidate} reaches {outcome} through a path that does "
            f"not pass through {treatment}'s causal effect (a violated exclusion restriction)."
        )
    verdict = is_instrument(dag, candidate, treatment, outcome, w)
    parts.insert(0, (
        f"{candidate} IS a valid instrument for {treatment} -> {outcome}"
        if verdict else
        f"{candidate} is NOT a valid instrument for {treatment} -> {outcome}"
    ) + (f" conditional on {sorted(w)}." if w else "."))
    return " ".join(parts)
