"""Optimal adjustment sets (Henckel, Perković & Maathuis 2022).

Among all valid backdoor adjustment sets, some yield lower-variance
estimates than others: conditioning on strong outcome predictors helps,
conditioning on strong treatment predictors (pure instruments) hurts.
The *O-set* is the asymptotically variance-optimal valid set for linear
models:

    cn(X, Y)  = nodes on proper causal paths from X to Y (minus X)
    forb      = descendants of cn, plus X
    O(X, Y)   = parents-of(cn)  \\  forb

This module computes the O-set, validates it, and provides the
empirical companion :func:`compare_adjustment_variance` so studies can
*see* the efficiency ordering on their own data — "what to measure" (§4)
includes which covariates to prefer, not only which suffice.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import IdentificationError
from repro.frames.frame import Frame
from repro.graph.backdoor import satisfies_backdoor
from repro.graph.dag import CausalDag
from repro.estimators.ols import fit_ols


def causal_nodes(dag: CausalDag, treatment: str, outcome: str) -> set[str]:
    """Nodes on proper causal paths from treatment to outcome (X excluded).

    A node is causal iff it is a descendant of X, an ancestor of Y (or Y
    itself), and lies on some directed X->...->Y path.
    """
    desc = dag.descendants(treatment)
    anc = dag.ancestors(outcome, include_self=True)
    return {n for n in desc & anc}


def optimal_adjustment_set(
    dag: CausalDag, treatment: str, outcome: str
) -> set[str]:
    """The O-set: the variance-optimal valid adjustment set.

    Raises :class:`IdentificationError` when the O-set is not a valid
    adjustment set (which happens exactly when no valid set exists among
    the observed variables, e.g. latent confounding of a mediator).
    """
    cn = causal_nodes(dag, treatment, outcome)
    if not cn:
        raise IdentificationError(
            f"no directed path from {treatment!r} to {outcome!r}: "
            "there is no effect to adjust for"
        )
    forbidden = set()
    for node in cn:
        forbidden |= dag.descendants(node, include_self=True)
    forbidden.add(treatment)
    o_set = set()
    for node in cn:
        o_set |= dag.parents(node)
    o_set -= forbidden
    o_set -= {treatment}
    latent = {v for v in o_set if not dag.is_observed(v)}
    if latent:
        raise IdentificationError(
            f"the O-set contains latent variables {sorted(latent)}; "
            "no observed optimal set exists"
        )
    if not satisfies_backdoor(dag, treatment, outcome, o_set):
        raise IdentificationError(
            f"the O-set {sorted(o_set)} is not a valid adjustment set here "
            "(latent confounding blocks optimal adjustment)"
        )
    return o_set


def compare_adjustment_variance(
    data_generator,
    treatment: str,
    outcome: str,
    adjustment_sets: Sequence[set[str]],
    n_replications: int = 40,
    n_samples: int = 1000,
    rng: np.random.Generator | int | None = 0,
) -> dict[str, float]:
    """Empirical sampling variance of the estimate per adjustment set.

    *data_generator* is called as ``data_generator(n_samples, seed)``
    and must return a frame (e.g. ``model.sample``).  Returns the
    variance of the treatment coefficient across replications, keyed by
    a sorted-set label — smaller is better, and the O-set should win.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    estimates: dict[str, list[float]] = {
        ",".join(sorted(s)) or "(empty)": [] for s in adjustment_sets
    }
    for _ in range(n_replications):
        seed = int(rng.integers(0, 2**31))
        data = data_generator(n_samples, seed)
        for s in adjustment_sets:
            label = ",".join(sorted(s)) or "(empty)"
            regs = {treatment: data.numeric(treatment)}
            for name in sorted(s):
                regs[name] = data.numeric(name)
            fit = fit_ols(data.numeric(outcome), regs)
            estimates[label].append(fit.coefficient(treatment))
    return {
        label: float(np.var(values, ddof=1))
        for label, values in estimates.items()
    }
