"""d-separation.

Two implementations are provided and cross-checked in the tests:

- :func:`d_separated` — the ancestral-moral-graph reduction (Lauritzen):
  restrict to ancestors of the query variables, moralize, delete the
  conditioning set, and test undirected connectivity.  O(V + E).
- :func:`path_is_blocked` / :func:`blocking_status` — the path-walking
  definition (a path is blocked by Z iff it contains a non-collider in Z
  or a collider whose descendants, itself included, avoid Z), useful for
  explaining *why* variables are or are not separated.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import GraphError
from repro.graph.dag import CausalDag


def _as_set(given: Iterable[str] | str | None) -> set[str]:
    if given is None:
        return set()
    if isinstance(given, str):
        return {given}
    return set(given)


def d_separated(
    dag: CausalDag,
    x: str,
    y: str,
    given: Iterable[str] | str | None = None,
) -> bool:
    """Whether ``x`` and ``y`` are d-separated by conditioning set *given*.

    Uses the ancestral-moral-graph criterion.  Conditioning on ``x`` or
    ``y`` themselves is rejected as ill-posed.
    """
    z = _as_set(given)
    if x == y:
        raise GraphError("d-separation of a node from itself is ill-posed")
    if x in z or y in z:
        raise GraphError("conditioning set must not contain the query nodes")
    for node in (x, y, *z):
        if not dag.has_node(node):
            raise GraphError(f"unknown node {node!r}")

    relevant = dag.ancestors_of_set({x, y} | z, include_self=True)
    sub = dag.subgraph(sorted(relevant))
    adj = sub.moralize()
    for node in z:
        for other in adj.pop(node, set()):
            adj[other].discard(node)
    # BFS from x avoiding removed nodes.
    if x not in adj or y not in adj:
        return True
    seen = {x}
    stack = [x]
    while stack:
        cur = stack.pop()
        if cur == y:
            return False
        for nxt in adj[cur]:
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return True


def d_connected(
    dag: CausalDag,
    x: str,
    y: str,
    given: Iterable[str] | str | None = None,
) -> bool:
    """Negation of :func:`d_separated`."""
    return not d_separated(dag, x, y, given)


def path_is_blocked(dag: CausalDag, path: Sequence[str], given: Iterable[str] | str | None = None) -> bool:
    """Whether a specific undirected *path* is blocked by *given*.

    The path is a node sequence as returned by
    :meth:`CausalDag.all_paths`.  A path of length < 3 has no interior
    node; it is blocked only if one of its endpoints' edge is missing
    (which would be a bug) — i.e. a direct edge is never blocked.
    """
    z = _as_set(given)
    for i in range(len(path) - 1):
        a, b = path[i], path[i + 1]
        if not (dag.has_edge(a, b) or dag.has_edge(b, a)):
            raise GraphError(f"path step {a!r}-{b!r} is not an edge")
    for i in range(1, len(path) - 1):
        prev_node, node, next_node = path[i - 1], path[i], path[i + 1]
        into_left = dag.has_edge(prev_node, node)
        into_right = dag.has_edge(next_node, node)
        is_collider = into_left and into_right
        if is_collider:
            opened = bool(dag.descendants(node, include_self=True) & z)
            if not opened:
                return True
        else:
            if node in z:
                return True
    return False


def blocking_status(
    dag: CausalDag,
    x: str,
    y: str,
    given: Iterable[str] | str | None = None,
    max_length: int | None = None,
) -> list[tuple[list[str], bool]]:
    """Enumerate all simple paths x--y with whether each is blocked.

    Handy for diagnostics: an analyst can see exactly which open path is
    leaking association.  Exponential in the worst case; intended for
    small expert-drawn DAGs.
    """
    paths = dag.all_paths(x, y, max_length=max_length)
    return [(p, path_is_blocked(dag, p, given)) for p in paths]


def open_paths(
    dag: CausalDag,
    x: str,
    y: str,
    given: Iterable[str] | str | None = None,
    max_length: int | None = None,
) -> list[list[str]]:
    """All simple paths between x and y left open by *given*."""
    return [p for p, blocked in blocking_status(dag, x, y, given, max_length) if not blocked]
