"""A dagitty-like textual format for causal DAGs.

Grammar (one statement per line or separated by ``;``)::

    dag {
        congestion -> route
        congestion -> latency
        route -> latency
        demand [unobserved]
        demand -> congestion
    }

- ``a -> b`` adds an edge; chains ``a -> b -> c`` are allowed.
- ``a <- b`` is the reversed edge; mixed chains work (``a <- b -> c``).
- ``name`` alone declares an isolated node.
- ``name [unobserved]`` (or ``[latent]``) declares a latent variable.
- ``#`` starts a comment.  The ``dag { ... }`` wrapper is optional.

Node names are ``[A-Za-z_][A-Za-z0-9_.]*``.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.graph.dag import CausalDag

_NAME = r"[A-Za-z_][A-Za-z0-9_.]*"
_NAME_RE = re.compile(rf"^{_NAME}$")
_TOKEN_RE = re.compile(
    rf"({_NAME}|->|<-|\[unobserved\]|\[latent\]|\[observed\])"
)


def parse_dag(text: str) -> CausalDag:
    """Parse the textual format into a :class:`CausalDag`."""
    body = text.strip()
    wrapper = re.match(r"^dag\s*\{(.*)\}\s*$", body, flags=re.S)
    if wrapper:
        body = wrapper.group(1)

    dag = CausalDag()
    statements: list[str] = []
    for raw_line in body.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        statements.extend(s.strip() for s in line.split(";") if s.strip())

    for stmt in statements:
        tokens = _TOKEN_RE.findall(stmt)
        consumed = "".join(tokens).replace(" ", "")
        if consumed != stmt.replace(" ", "").replace("\t", ""):
            raise ParseError(f"cannot parse statement: {stmt!r}")
        _apply_statement(dag, tokens, stmt)
    return dag


def _apply_statement(dag: CausalDag, tokens: list[str], stmt: str) -> None:
    if not tokens:
        return
    # Node declaration: NAME [modifier]*
    if len(tokens) >= 1 and _NAME_RE.match(tokens[0]) and all(
        t.startswith("[") for t in tokens[1:]
    ):
        name = tokens[0]
        unobserved = any(t in ("[unobserved]", "[latent]") for t in tokens[1:])
        dag.add_node(name, unobserved=unobserved)
        return
    # Edge chain: NAME (ARROW NAME)+
    if len(tokens) < 3 or len(tokens) % 2 == 0:
        raise ParseError(f"malformed statement: {stmt!r}")
    for i in range(0, len(tokens) - 2, 2):
        left, arrow, right = tokens[i], tokens[i + 1], tokens[i + 2]
        if not (_NAME_RE.match(left) and _NAME_RE.match(right)):
            raise ParseError(f"expected node names around {arrow!r} in {stmt!r}")
        if arrow == "->":
            dag.add_edge(left, right)
        elif arrow == "<-":
            dag.add_edge(right, left)
        else:
            raise ParseError(f"expected an arrow, got {arrow!r} in {stmt!r}")


def format_dag(dag: CausalDag) -> str:
    """Render a DAG back into the textual format (parse round-trips)."""
    lines = ["dag {"]
    edged = set()
    for cause, effect in dag.edges():
        lines.append(f"    {cause} -> {effect}")
        edged.add(cause)
        edged.add(effect)
    for node in dag.nodes():
        marker = " [unobserved]" if not dag.is_observed(node) else ""
        if node not in edged:
            lines.append(f"    {node}{marker}")
        elif marker:
            lines.append(f"    {node}{marker}")
    lines.append("}")
    return "\n".join(lines)
