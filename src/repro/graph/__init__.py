"""Causal graphical models: DAGs, d-separation, and identification criteria.

This package provides the formal language the paper recommends building
measurement studies around:

- :class:`CausalDag` plus :func:`parse_dag` for a dagitty-like text format;
- :func:`d_separated` and path-level blocking diagnostics;
- the backdoor criterion with adjustment-set search;
- the frontdoor criterion;
- graphical instrumental-variable discovery with prose explanations;
- collider enumeration and selection-bias warnings;
- testable implications (:func:`implied_independencies`) with
  data-validation via partial correlation.
"""

from repro.graph.backdoor import (
    backdoor_paths,
    find_adjustment_set,
    is_confounded,
    minimal_adjustment_sets,
    proper_causal_effect_exists,
    satisfies_backdoor,
)
from repro.graph.colliders import (
    collider_nodes,
    colliders,
    conditioning_opens_path,
    selection_bias_warning,
)
from repro.graph.dag import CausalDag
from repro.graph.discovery import (
    DiscoveryResult,
    PartiallyDirectedGraph,
    cpdag_consistent_with,
    pc_algorithm,
)
from repro.graph.dsep import (
    blocking_status,
    d_connected,
    d_separated,
    open_paths,
    path_is_blocked,
)
from repro.graph.frontdoor import find_frontdoor_set, satisfies_frontdoor
from repro.graph.independence import (
    Independence,
    IndependenceTestResult,
    implied_independencies,
    partial_correlation,
    validate_against_data,
)
from repro.graph.instruments import explain_instrument, find_instruments, is_instrument
from repro.graph.optimal import (
    causal_nodes,
    compare_adjustment_variance,
    optimal_adjustment_set,
)
from repro.graph.parse import format_dag, parse_dag
from repro.graph.render import cpdag_to_dot, to_ascii, to_dot

__all__ = [
    "CausalDag",
    "DiscoveryResult",
    "Independence",
    "IndependenceTestResult",
    "backdoor_paths",
    "blocking_status",
    "causal_nodes",
    "collider_nodes",
    "colliders",
    "compare_adjustment_variance",
    "conditioning_opens_path",
    "cpdag_to_dot",
    "d_connected",
    "d_separated",
    "explain_instrument",
    "find_adjustment_set",
    "find_frontdoor_set",
    "find_instruments",
    "format_dag",
    "implied_independencies",
    "is_confounded",
    "is_instrument",
    "minimal_adjustment_sets",
    "open_paths",
    "optimal_adjustment_set",
    "PartiallyDirectedGraph",
    "cpdag_consistent_with",
    "parse_dag",
    "partial_correlation",
    "pc_algorithm",
    "path_is_blocked",
    "proper_causal_effect_exists",
    "satisfies_backdoor",
    "satisfies_frontdoor",
    "selection_bias_warning",
    "to_ascii",
    "to_dot",
    "validate_against_data",
]
