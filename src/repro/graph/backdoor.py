"""Backdoor criterion and adjustment-set search.

A set Z satisfies the backdoor criterion relative to (treatment, outcome)
if no member of Z is a descendant of the treatment and Z blocks every
path from treatment to outcome that starts with an edge *into* the
treatment.  Valid sets license the adjustment formula

    P(Y | do(X)) = sum_z P(Y | X, Z=z) P(Z=z).

The search enumerates candidate subsets of observed variables, smallest
first, so :func:`minimal_adjustment_sets` returns all inclusion-minimal
valid sets and :func:`find_adjustment_set` a smallest one.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Iterable

from repro.errors import GraphError, IdentificationError
from repro.graph.dag import CausalDag
from repro.graph.dsep import d_separated


def backdoor_paths(dag: CausalDag, treatment: str, outcome: str) -> list[list[str]]:
    """All simple paths treatment--outcome beginning with an edge into treatment."""
    for n in (treatment, outcome):
        if not dag.has_node(n):
            raise GraphError(f"unknown node {n!r}")
    out = []
    for path in dag.all_paths(treatment, outcome):
        if len(path) >= 2 and dag.has_edge(path[1], path[0]):
            out.append(path)
    return out


def satisfies_backdoor(
    dag: CausalDag,
    treatment: str,
    outcome: str,
    adjustment: Iterable[str] | str | None = None,
) -> bool:
    """Check the backdoor criterion for a candidate adjustment set.

    Implemented via graph surgery: remove every edge out of the
    treatment, then Z must d-separate treatment from outcome in the
    resulting graph, and Z must contain no descendant of the treatment
    (in the original graph).
    """
    if isinstance(adjustment, str):
        adjustment = {adjustment}
    z = set(adjustment or ())
    if treatment in z or outcome in z:
        return False
    if z & dag.descendants(treatment):
        return False
    pruned = dag.copy()
    for child in dag.children(treatment):
        pruned.remove_edge(treatment, child)
    if outcome not in pruned.nodes():
        return True
    # With outgoing edges removed, any remaining open path is a backdoor path.
    return d_separated(pruned, treatment, outcome, z) if _connected(pruned, treatment, outcome) else True


def _connected(dag: CausalDag, a: str, b: str) -> bool:
    """Undirected reachability (cheap pre-check before d-separation)."""
    adj = {n: dag.children(n) | dag.parents(n) for n in dag.nodes()}
    seen = {a}
    stack = [a]
    while stack:
        cur = stack.pop()
        if cur == b:
            return True
        for nxt in adj[cur]:
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return False


def _candidates(dag: CausalDag, treatment: str, outcome: str) -> list[str]:
    """Observed variables eligible to appear in an adjustment set."""
    banned = dag.descendants(treatment, include_self=True) | {outcome}
    return sorted(dag.observed - banned)


def minimal_adjustment_sets(
    dag: CausalDag,
    treatment: str,
    outcome: str,
    max_size: int | None = None,
) -> list[set[str]]:
    """All inclusion-minimal observed backdoor adjustment sets.

    Exhaustive subset search, smallest first; suitable for the expert-sized
    DAGs this library targets (tens of nodes).
    """
    pool = _candidates(dag, treatment, outcome)
    limit = len(pool) if max_size is None else min(max_size, len(pool))
    found: list[set[str]] = []
    for size in range(limit + 1):
        for combo in combinations(pool, size):
            z = set(combo)
            if any(prev <= z for prev in found):
                continue
            if satisfies_backdoor(dag, treatment, outcome, z):
                found.append(z)
    return found


def find_adjustment_set(dag: CausalDag, treatment: str, outcome: str) -> set[str]:
    """Return a smallest valid observed adjustment set.

    Raises :class:`IdentificationError` when no observed set exists (e.g.
    the confounder is latent) — the caller should then consider
    instrumental variables or the frontdoor criterion.
    """
    sets = minimal_adjustment_sets(dag, treatment, outcome)
    if not sets:
        raise IdentificationError(
            f"no observed backdoor adjustment set for {treatment!r} -> {outcome!r}; "
            "consider an instrument or the frontdoor criterion"
        )
    return min(sets, key=lambda s: (len(s), sorted(s)))


def is_confounded(dag: CausalDag, treatment: str, outcome: str) -> bool:
    """Whether any backdoor path is open absent adjustment."""
    return not satisfies_backdoor(dag, treatment, outcome, set())


def proper_causal_effect_exists(dag: CausalDag, treatment: str, outcome: str) -> bool:
    """Whether there is any directed path treatment -> ... -> outcome."""
    return outcome in dag.descendants(treatment)
