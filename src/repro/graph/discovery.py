"""Constraint-based causal discovery (the PC algorithm).

The paper insists DAGs "are not learned from data alone; they require
domain insight".  This module makes that claim demonstrable rather than
rhetorical: :func:`pc_algorithm` recovers what *can* be learned from
observational data under faithfulness — the skeleton and the
v-structures — and returns a :class:`PartiallyDirectedGraph` (CPDAG)
whose remaining undirected edges are exactly the causal questions data
cannot settle.  Studies can run it as a sanity check ("is my
hand-drawn DAG in the data's equivalence class?") via
:func:`cpdag_consistent_with`.

Implementation: classic PC — adjacency search with partial-correlation
independence tests of increasing conditioning-set size, v-structure
orientation from separating sets, then Meek's rules R1-R4 to propagate
orientations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.errors import GraphError
from repro.frames.frame import Frame
from repro.graph.dag import CausalDag
from repro.graph.independence import partial_correlation


@dataclass
class PartiallyDirectedGraph:
    """A CPDAG: directed edges plus undirected (unresolved) edges.

    Attributes
    ----------
    nodes:
        All variable names.
    directed:
        Set of ``(a, b)`` meaning a -> b.
    undirected:
        Set of frozensets {a, b} whose orientation the data cannot
        determine.
    """

    nodes: tuple[str, ...]
    directed: set[tuple[str, str]] = field(default_factory=set)
    undirected: set[frozenset[str]] = field(default_factory=set)

    def has_any_edge(self, a: str, b: str) -> bool:
        """Whether a and b are adjacent (either kind of edge)."""
        return (
            (a, b) in self.directed
            or (b, a) in self.directed
            or frozenset((a, b)) in self.undirected
        )

    def orient(self, a: str, b: str) -> None:
        """Turn the undirected edge a - b into a -> b."""
        key = frozenset((a, b))
        if key not in self.undirected:
            raise GraphError(f"no undirected edge between {a!r} and {b!r}")
        self.undirected.discard(key)
        self.directed.add((a, b))

    def neighbours(self, node: str) -> set[str]:
        """All nodes adjacent to *node* (any edge kind)."""
        out = set()
        for a, b in self.directed:
            if a == node:
                out.add(b)
            elif b == node:
                out.add(a)
        for pair in self.undirected:
            if node in pair:
                out |= pair - {node}
        return out

    def parents(self, node: str) -> set[str]:
        """Nodes with a directed edge into *node*."""
        return {a for a, b in self.directed if b == node}

    def edge_summary(self) -> str:
        """Readable listing: directed first, then unresolved."""
        lines = [f"{a} -> {b}" for a, b in sorted(self.directed)]
        lines.extend(
            " - ".join(sorted(pair)) for pair in sorted(self.undirected, key=sorted)
        )
        return "\n".join(lines)

    def fully_directed(self) -> bool:
        """Whether every edge was orientable."""
        return not self.undirected


@dataclass(frozen=True)
class DiscoveryResult:
    """Everything the PC run learned.

    Attributes
    ----------
    cpdag:
        The recovered equivalence class.
    separating_sets:
        ``{frozenset({a, b}): conditioning set}`` that rendered each
        removed pair independent (evidence for each *missing* edge).
    n_tests:
        Number of independence tests performed.
    """

    cpdag: PartiallyDirectedGraph
    separating_sets: dict[frozenset, tuple[str, ...]]
    n_tests: int


def pc_algorithm(
    data: Frame,
    variables: list[str] | None = None,
    alpha: float = 0.01,
    max_conditioning: int = 3,
) -> DiscoveryResult:
    """Run the PC algorithm on numeric columns of *data*.

    Parameters
    ----------
    data:
        Observational sample.
    variables:
        Columns to include (default: every numeric column).
    alpha:
        Significance level of the partial-correlation tests; smaller
        keeps more edges.
    max_conditioning:
        Largest conditioning-set size tried during adjacency search.
    """
    if variables is None:
        variables = [
            name
            for name in data.column_names
            if data.column(name).kind in ("float", "int", "bool")
        ]
    if len(variables) < 2:
        raise GraphError("need at least two variables for discovery")
    for v in variables:
        data.column(v)

    # -- stage 1: adjacency search -------------------------------------------
    adjacent: dict[str, set[str]] = {
        v: set(variables) - {v} for v in variables
    }
    sepsets: dict[frozenset, tuple[str, ...]] = {}
    n_tests = 0
    for level in range(max_conditioning + 1):
        removed_any = False
        for x in variables:
            for y in sorted(adjacent[x]):
                if x >= y:
                    continue
                pool = sorted((adjacent[x] | adjacent[y]) - {x, y})
                if len(pool) < level:
                    continue
                for given in combinations(pool, level):
                    n_tests += 1
                    _, p = partial_correlation(data, x, y, given)
                    if p >= alpha:
                        adjacent[x].discard(y)
                        adjacent[y].discard(x)
                        sepsets[frozenset((x, y))] = given
                        removed_any = True
                        break
        if not removed_any and level > 0:
            break

    cpdag = PartiallyDirectedGraph(
        nodes=tuple(sorted(variables)),
        undirected={
            frozenset((x, y))
            for x in variables
            for y in adjacent[x]
            if x < y
        },
    )

    # -- stage 2: v-structure orientation --------------------------------------
    for z in variables:
        nbrs = sorted(cpdag.neighbours(z))
        for x, y in combinations(nbrs, 2):
            if cpdag.has_any_edge(x, y):
                continue
            sep = sepsets.get(frozenset((x, y)))
            if sep is not None and z not in sep:
                for tail in (x, y):
                    if frozenset((tail, z)) in cpdag.undirected:
                        cpdag.orient(tail, z)

    # -- stage 3: Meek rules ----------------------------------------------------
    _apply_meek_rules(cpdag)
    return DiscoveryResult(cpdag=cpdag, separating_sets=sepsets, n_tests=n_tests)


def _apply_meek_rules(g: PartiallyDirectedGraph) -> None:
    """Propagate forced orientations (Meek R1-R4) to a fixpoint."""
    changed = True
    while changed:
        changed = False
        for pair in sorted(g.undirected, key=sorted):
            a, b = sorted(pair)
            for x, y in ((a, b), (b, a)):
                if _meek_forces(g, x, y):
                    g.orient(x, y)
                    changed = True
                    break
            if changed:
                break


def _meek_forces(g: PartiallyDirectedGraph, x: str, y: str) -> bool:
    """Whether some Meek rule forces x -> y for the undirected pair."""
    # R1: z -> x, z not adjacent to y  =>  x -> y (avoid new v-structure).
    for z in g.parents(x):
        if z != y and not g.has_any_edge(z, y):
            return True
    # R2: x -> z -> y exists  =>  x -> y (avoid a cycle).
    for z in g.nodes:
        if (x, z) in g.directed and (z, y) in g.directed:
            return True
    # R3: x - z1 -> y and x - z2 -> y with z1, z2 non-adjacent  =>  x -> y.
    candidates = [
        z
        for z in g.nodes
        if frozenset((x, z)) in g.undirected and (z, y) in g.directed
    ]
    for z1, z2 in combinations(sorted(candidates), 2):
        if not g.has_any_edge(z1, z2):
            return True
    # R4: x - z, z -> w, w -> y, z,y non-adjacent... (rare; covered by
    # R1-R3 for graphs discovered from sepsets, included for completeness)
    for z in g.nodes:
        if frozenset((x, z)) not in g.undirected:
            continue
        for w in g.nodes:
            if (z, w) in g.directed and (w, y) in g.directed and not g.has_any_edge(z, y):
                return True
    return False


def cpdag_consistent_with(result: DiscoveryResult, dag: CausalDag) -> list[str]:
    """Check a hand-drawn DAG against a discovery result.

    Returns a list of human-readable conflicts (empty when the DAG lies
    inside the recovered equivalence class, restricted to the discovery's
    variables): missing adjacencies, extra adjacencies, and directed
    edges whose orientation contradicts the CPDAG.
    """
    conflicts: list[str] = []
    g = result.cpdag
    nodes = set(g.nodes)
    dag_edges = {
        (a, b) for a, b in dag.edges() if a in nodes and b in nodes
    }
    dag_adjacent = {frozenset(e) for e in dag_edges}
    cpdag_adjacent = {frozenset(e) for e in g.directed} | set(g.undirected)
    for pair in sorted(dag_adjacent - cpdag_adjacent, key=sorted):
        a, b = sorted(pair)
        sep = result.separating_sets.get(pair)
        conflicts.append(
            f"DAG asserts {a} and {b} are adjacent, but the data separates "
            f"them given {list(sep) if sep is not None else '?'}"
        )
    for pair in sorted(cpdag_adjacent - dag_adjacent, key=sorted):
        a, b = sorted(pair)
        conflicts.append(
            f"data shows a dependence between {a} and {b} that the DAG omits"
        )
    for a, b in sorted(g.directed):
        if (b, a) in dag_edges:
            conflicts.append(
                f"data orients {a} -> {b} (v-structure/Meek), DAG claims {b} -> {a}"
            )
    return conflicts
