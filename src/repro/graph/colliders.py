"""Collider enumeration and selection-bias warnings.

The paper's speed-test example: both a route change and poor performance
make a user more likely to run a test, so "test was run" is a collider;
analysing only collected tests conditions on it and manufactures a
spurious association.  These helpers find colliders structurally and
flag conditioning sets that open collider paths.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.dag import CausalDag
from repro.graph.dsep import path_is_blocked


def colliders(dag: CausalDag) -> list[tuple[str, str, str]]:
    """All collider triples ``(a, c, b)`` with a -> c <- b, a < b sorted."""
    out: list[tuple[str, str, str]] = []
    for node in dag.nodes():
        parents = sorted(dag.parents(node))
        for i, a in enumerate(parents):
            for b in parents[i + 1:]:
                out.append((a, node, b))
    return out


def collider_nodes(dag: CausalDag) -> list[str]:
    """Nodes with at least two parents, sorted."""
    return sorted({c for _, c, _ in colliders(dag)})


def conditioning_opens_path(
    dag: CausalDag,
    x: str,
    y: str,
    conditioning: Iterable[str] | str,
) -> list[list[str]]:
    """Paths x--y that conditioning *opens* (blocked empty, open given Z).

    These are exactly the selection-bias pathways: each returned path was
    inert until the analyst conditioned on a collider (or its
    descendant) lying on it.
    """
    if isinstance(conditioning, str):
        conditioning = {conditioning}
    z = set(conditioning)
    opened = []
    for path in dag.all_paths(x, y):
        if path_is_blocked(dag, path, set()) and not path_is_blocked(dag, path, z):
            opened.append(path)
    return opened


def selection_bias_warning(
    dag: CausalDag,
    treatment: str,
    outcome: str,
    conditioning: Iterable[str] | str,
) -> str | None:
    """Return a warning string if the conditioning set induces selection bias.

    None is returned when the conditioning opens no new treatment-outcome
    path.
    """
    opened = conditioning_opens_path(dag, treatment, outcome, conditioning)
    if not opened:
        return None
    if isinstance(conditioning, str):
        conditioning = {conditioning}
    pretty = ", ".join(" - ".join(p) for p in opened)
    return (
        f"conditioning on {sorted(set(conditioning))} opens "
        f"{len(opened)} collider path(s) between {treatment} and {outcome}: "
        f"{pretty}. Estimates computed on this selected subset are subject "
        "to selection (collider) bias."
    )
