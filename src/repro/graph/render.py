"""Rendering causal graphs: Graphviz DOT export and terminal sketches.

Covers both fully directed :class:`CausalDag` objects and the partially
directed CPDAGs produced by causal discovery (undirected edges render
without arrowheads).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.dag import CausalDag

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.graph.discovery import PartiallyDirectedGraph


def to_dot(dag: CausalDag, name: str = "causal", highlight: set[str] | None = None) -> str:
    """Render the DAG in Graphviz DOT.

    Latent variables are drawn dashed; nodes in *highlight* are filled.
    """
    highlight = highlight or set()
    lines = [f"digraph {name} {{", "    rankdir=LR;"]
    for node in dag.nodes():
        attrs = []
        if not dag.is_observed(node):
            attrs.append('style="dashed"')
        if node in highlight:
            attrs.append('style="filled"')
            attrs.append('fillcolor="lightgrey"')
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f'    "{node}"{attr_text};')
    for cause, effect in dag.edges():
        lines.append(f'    "{cause}" -> "{effect}";')
    lines.append("}")
    return "\n".join(lines)


def to_ascii(dag: CausalDag) -> str:
    """A one-edge-per-line terminal sketch in topological order."""
    order = {n: i for i, n in enumerate(dag.topological_order())}
    lines = []
    for cause, effect in sorted(dag.edges(), key=lambda e: (order[e[0]], order[e[1]])):
        latent = " (latent)" if not dag.is_observed(cause) else ""
        lines.append(f"{cause}{latent} --> {effect}")
    for node in dag.nodes():
        if not dag.parents(node) and not dag.children(node):
            latent = " (latent)" if not dag.is_observed(node) else ""
            lines.append(f"{node}{latent}")
    return "\n".join(lines)


def cpdag_to_dot(cpdag: "PartiallyDirectedGraph", name: str = "cpdag") -> str:
    """Render a discovery result's CPDAG in Graphviz DOT.

    Directed edges get arrowheads; unresolved (undirected) edges render
    with ``dir=none`` so the ambiguity is visible on the drawing.
    """
    lines = [f"digraph {name} {{", "    rankdir=LR;"]
    for node in cpdag.nodes:
        lines.append(f'    "{node}";')
    for a, b in sorted(cpdag.directed):
        lines.append(f'    "{a}" -> "{b}";')
    for pair in sorted(cpdag.undirected, key=sorted):
        a, b = sorted(pair)
        lines.append(f'    "{a}" -> "{b}" [dir=none, style=dashed];')
    lines.append("}")
    return "\n".join(lines)
