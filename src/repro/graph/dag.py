"""Causal directed acyclic graphs.

:class:`CausalDag` is the structural backbone of the library: nodes are
variable names, directed edges mean "directly causes".  Nodes may be
marked *unobserved* (latent), which matters for identification — backdoor
adjustment sets must consist of observed variables only.

The class is a plain adjacency-dict implementation with the reachability
queries causal inference needs (parents/children/ancestors/descendants,
topological order) and structural editing that preserves acyclicity.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import CycleError, GraphError

Edge = tuple[str, str]


class CausalDag:
    """A directed acyclic graph over named variables.

    Parameters
    ----------
    edges:
        Iterable of ``(cause, effect)`` pairs.
    nodes:
        Extra isolated nodes (optional; edge endpoints are added
        automatically).
    unobserved:
        Names of latent variables.  They participate in paths but are not
        eligible for adjustment.
    """

    def __init__(
        self,
        edges: Iterable[Edge] = (),
        nodes: Iterable[str] = (),
        unobserved: Iterable[str] = (),
    ) -> None:
        self._children: dict[str, set[str]] = {}
        self._parents: dict[str, set[str]] = {}
        for node in nodes:
            self._ensure_node(node)
        for cause, effect in edges:
            self.add_edge(cause, effect)
        self._unobserved: set[str] = set()
        for name in unobserved:
            if name not in self._children:
                raise GraphError(f"unobserved variable {name!r} is not in the graph")
            self._unobserved.add(name)

    # -- construction ----------------------------------------------------------

    def _ensure_node(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise GraphError(f"node name must be a non-empty string, got {name!r}")
        if name not in self._children:
            self._children[name] = set()
            self._parents[name] = set()

    def add_node(self, name: str, unobserved: bool = False) -> None:
        """Add an isolated node (no-op if present)."""
        self._ensure_node(name)
        if unobserved:
            self._unobserved.add(name)

    def add_edge(self, cause: str, effect: str) -> None:
        """Add ``cause -> effect``, refusing self-loops and cycles."""
        if cause == effect:
            raise CycleError(f"self-loop on {cause!r}")
        self._ensure_node(cause)
        self._ensure_node(effect)
        if cause in self._descendants_from(effect):
            raise CycleError(f"adding {cause!r} -> {effect!r} would create a cycle")
        self._children[cause].add(effect)
        self._parents[effect].add(cause)

    def remove_edge(self, cause: str, effect: str) -> None:
        """Remove ``cause -> effect`` (raising if absent)."""
        if effect not in self._children.get(cause, set()):
            raise GraphError(f"no edge {cause!r} -> {effect!r}")
        self._children[cause].discard(effect)
        self._parents[effect].discard(cause)

    def mark_unobserved(self, *names: str) -> None:
        """Mark variables as latent."""
        for name in names:
            if name not in self._children:
                raise GraphError(f"unknown node {name!r}")
            self._unobserved.add(name)

    def copy(self) -> "CausalDag":
        """Return an independent copy."""
        return CausalDag(self.edges(), nodes=self.nodes(), unobserved=self._unobserved)

    # -- basic queries -----------------------------------------------------------

    def nodes(self) -> list[str]:
        """All node names, sorted."""
        return sorted(self._children)

    def edges(self) -> list[Edge]:
        """All edges as sorted ``(cause, effect)`` pairs."""
        return sorted(
            (c, e) for c, kids in self._children.items() for e in kids
        )

    def has_node(self, name: str) -> bool:
        """Whether *name* is a node."""
        return name in self._children

    def has_edge(self, cause: str, effect: str) -> bool:
        """Whether ``cause -> effect`` exists."""
        return effect in self._children.get(cause, set())

    def is_observed(self, name: str) -> bool:
        """Whether *name* is an observed (non-latent) variable."""
        self._require(name)
        return name not in self._unobserved

    @property
    def unobserved(self) -> set[str]:
        """The set of latent variable names."""
        return set(self._unobserved)

    @property
    def observed(self) -> set[str]:
        """The set of observed variable names."""
        return {n for n in self._children if n not in self._unobserved}

    def _require(self, *names: str) -> None:
        for name in names:
            if name not in self._children:
                raise GraphError(f"unknown node {name!r}; nodes: {self.nodes()}")

    def parents(self, name: str) -> set[str]:
        """Direct causes of *name*."""
        self._require(name)
        return set(self._parents[name])

    def children(self, name: str) -> set[str]:
        """Direct effects of *name*."""
        self._require(name)
        return set(self._children[name])

    def _descendants_from(self, name: str) -> set[str]:
        out: set[str] = set()
        stack = [name]
        while stack:
            cur = stack.pop()
            for child in self._children.get(cur, ()):
                if child not in out:
                    out.add(child)
                    stack.append(child)
        return out

    def descendants(self, name: str, include_self: bool = False) -> set[str]:
        """All nodes reachable by directed paths from *name*."""
        self._require(name)
        out = self._descendants_from(name)
        if include_self:
            out.add(name)
        return out

    def ancestors(self, name: str, include_self: bool = False) -> set[str]:
        """All nodes with a directed path into *name*."""
        self._require(name)
        out: set[str] = set()
        stack = [name]
        while stack:
            cur = stack.pop()
            for parent in self._parents[cur]:
                if parent not in out:
                    out.add(parent)
                    stack.append(parent)
        if include_self:
            out.add(name)
        return out

    def ancestors_of_set(self, names: Iterable[str], include_self: bool = True) -> set[str]:
        """Union of ancestors over *names* (optionally including them)."""
        out: set[str] = set()
        for n in names:
            out |= self.ancestors(n, include_self=include_self)
        return out

    def roots(self) -> list[str]:
        """Nodes with no parents (exogenous variables), sorted."""
        return sorted(n for n in self._children if not self._parents[n])

    def leaves(self) -> list[str]:
        """Nodes with no children, sorted."""
        return sorted(n for n in self._children if not self._children[n])

    def topological_order(self) -> list[str]:
        """Nodes in an order where every cause precedes its effects.

        Deterministic: ties are broken alphabetically (Kahn's algorithm
        with a sorted frontier).
        """
        in_deg = {n: len(self._parents[n]) for n in self._children}
        frontier = sorted(n for n, d in in_deg.items() if d == 0)
        order: list[str] = []
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            changed = False
            for child in sorted(self._children[node]):
                in_deg[child] -= 1
                if in_deg[child] == 0:
                    frontier.append(child)
                    changed = True
            if changed:
                frontier.sort()
        if len(order) != len(self._children):
            raise CycleError("graph contains a cycle")  # defensive; add_edge prevents it
        return order

    # -- path enumeration ----------------------------------------------------------

    def all_paths(self, source: str, target: str, max_length: int | None = None) -> list[list[str]]:
        """All simple *undirected* paths between two nodes.

        Paths traverse edges in either direction (the relevant notion for
        d-separation and backdoor analysis).  Returned as node lists, in
        deterministic (lexicographic) order.  *max_length* bounds the
        number of edges in a path.
        """
        self._require(source, target)
        neighbours = {
            n: sorted(self._children[n] | self._parents[n]) for n in self._children
        }
        paths: list[list[str]] = []

        def walk(path: list[str], seen: set[str]) -> None:
            cur = path[-1]
            if cur == target:
                paths.append(list(path))
                return
            if max_length is not None and len(path) > max_length:
                return
            for nxt in neighbours[cur]:
                if nxt not in seen:
                    seen.add(nxt)
                    path.append(nxt)
                    walk(path, seen)
                    path.pop()
                    seen.discard(nxt)

        walk([source], {source})
        return paths

    def directed_paths(self, source: str, target: str) -> list[list[str]]:
        """All simple directed paths from *source* to *target*."""
        self._require(source, target)
        paths: list[list[str]] = []

        def walk(path: list[str], seen: set[str]) -> None:
            cur = path[-1]
            if cur == target:
                paths.append(list(path))
                return
            for nxt in sorted(self._children[cur]):
                if nxt not in seen:
                    seen.add(nxt)
                    path.append(nxt)
                    walk(path, seen)
                    path.pop()
                    seen.discard(nxt)

        walk([source], {source})
        return paths

    # -- surgery ---------------------------------------------------------------------

    def do(self, *interventions: str) -> "CausalDag":
        """Graph surgery for ``do(X)``: cut all edges into each intervened node."""
        out = self.copy()
        for name in interventions:
            out._require(name)
            for parent in list(out._parents[name]):
                out.remove_edge(parent, name)
        return out

    def subgraph(self, keep: Sequence[str]) -> "CausalDag":
        """Induced subgraph on *keep* (edges among kept nodes only)."""
        keep_set = set(keep)
        for n in keep_set:
            self._require(n)
        edges = [(c, e) for c, e in self.edges() if c in keep_set and e in keep_set]
        unobs = self._unobserved & keep_set
        return CausalDag(edges, nodes=keep_set, unobserved=unobs)

    def moralize(self) -> dict[str, set[str]]:
        """Return the moral graph as an undirected adjacency dict.

        Parents of a common child are married; edge directions dropped.
        Used by the ancestral-moral d-separation algorithm.
        """
        adj: dict[str, set[str]] = {n: set() for n in self._children}
        for cause, effect in self.edges():
            adj[cause].add(effect)
            adj[effect].add(cause)
        for node in self._children:
            parents = sorted(self._parents[node])
            for i, a in enumerate(parents):
                for b in parents[i + 1:]:
                    adj[a].add(b)
                    adj[b].add(a)
        return adj

    def __repr__(self) -> str:
        return (
            f"CausalDag({len(self._children)} nodes, {len(self.edges())} edges"
            + (f", latent={sorted(self._unobserved)}" if self._unobserved else "")
            + ")"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CausalDag):
            return NotImplemented
        return (
            self.nodes() == other.nodes()
            and self.edges() == other.edges()
            and self._unobserved == other._unobserved
        )

    def __hash__(self) -> int:
        raise TypeError("CausalDag is not hashable")
