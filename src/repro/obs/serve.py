"""A live telemetry endpoint for long-running (streaming) studies.

The paper's §4 wants measurement campaigns that are *inspectable while
they run* — context recorded at collection time, not reconstructed
afterwards.  This module is that surface for our own runs:

- :class:`TelemetryPublisher` — a small, thread-safe bounded ring
  buffer the :class:`~repro.stream.StreamStudy` publishes into: one
  entry per ingested batch (the :class:`~repro.stream.engine.BatchReport`,
  a metrics snapshot, and a ``live_result()`` summary) plus the final
  result when the stream finalizes.  It also derives the run's health
  (``ok`` / ``degraded`` / ``stalled``) from batch recency and the
  fault counters.
- :class:`TelemetryServer` — an opt-in stdlib ``http.server`` endpoint
  (``--serve-telemetry PORT``) over a publisher, serving

  - ``/metrics`` — Prometheus text via the registry's existing
    ``render()`` (rendered at request time, so mid-run scrapes see live
    counters),
  - ``/health``  — the JSON health verdict (HTTP 503 unless ``ok``, so
    load-balancer-style checks need no JSON parsing), and
  - ``/live``    — JSON: recent batch reports, warm/cold/placebo
    counters, and the current verdict rows.

Both are strictly read-only observers: publishing copies plain data
under a lock, request handling never touches study state, and rows are
bit-identical with the endpoint on or off (the P9 benchmark pins
this, polling all three routes mid-run).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from collections.abc import Callable
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs.metrics import get_metrics

#: Counters whose growth marks a run as fault-afflicted.  Injected
#: chaos faults, executor retries, pool rebuilds, and blown deadlines
#: all count — each is an event a serial healthy run would not produce.
FAULT_COUNTERS: tuple[str, ...] = (
    "faults_injected_total",
    "task_retries_total",
    "pool_rebuilds_total",
    "tasks_timed_out_total",
)


def fault_load() -> float:
    """The current sum of the fault counters in the active registry."""
    registry = get_metrics()
    return sum(registry.counter(name).value for name in FAULT_COUNTERS)


def _result_summary(result: Any) -> dict:
    """A JSON-ready summary of a (live or final) ``StudyResult``."""
    return {
        "rows": [asdict(row) for row in result.rows],
        "skipped": [
            {"unit": unit, "reason": reason} for unit, reason in result.skipped
        ],
    }


class TelemetryPublisher:
    """Bounded, thread-safe ring buffer of a stream's telemetry entries.

    *capacity* bounds the retained batch entries (a week-long stream
    must not accumulate per-batch summaries without bound); health and
    the final result are scalars, kept regardless.  *clock* is
    injectable for deterministic health tests.
    """

    def __init__(
        self, capacity: int = 64, clock: Callable[[], float] = time.time
    ) -> None:
        if capacity < 1:
            raise ValueError(f"publisher capacity must be >= 1, got {capacity}")
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=capacity)
        self.started_unix = clock()
        self._last_batch_unix: float | None = None
        self._faults_at_last_batch = fault_load()
        self._final: dict | None = None

    def publish_batch(self, report: Any, live_summary: dict | None = None) -> None:
        """Record one ingested batch (its report + optional live summary).

        Publishing a batch also re-baselines the fault counters: a
        batch that lands *after* a fault means the run recovered, so
        only faults *since* the newest batch mark it degraded.
        """
        entry = {
            "kind": "batch",
            "unix_time": self._clock(),
            "report": asdict(report),
        }
        if live_summary is not None:
            entry["live"] = live_summary
        with self._lock:
            self._entries.append(entry)
            self._last_batch_unix = entry["unix_time"]
            self._faults_at_last_batch = fault_load()

    def publish_final(self, result: Any) -> None:
        """Record the finalized study result (the stream is done)."""
        with self._lock:
            self._final = {
                "kind": "final",
                "unix_time": self._clock(),
                "result": _result_summary(result),
            }

    def entries(self) -> list[dict]:
        """The retained batch entries, oldest first (copies)."""
        with self._lock:
            return [dict(e) for e in self._entries]

    def health(self, stall_after_s: float = 300.0) -> dict:
        """The run's health verdict, derived — never self-reported.

        ``stalled``  — no batch for *stall_after_s* seconds (measured
        from the newest batch, or from publisher creation while the
        first batch is still pending) and the stream has not finalized;
        ``degraded`` — the fault counters grew since the newest batch;
        ``ok``       — otherwise.  Stalled outranks degraded: a wedged
        run is worse news than a recovering one.
        """
        with self._lock:
            last = self._last_batch_unix
            baseline = self._faults_at_last_batch
            final = self._final
            n_batches = len(self._entries)
        now = self._clock()
        since_last = now - (last if last is not None else self.started_unix)
        faults_total = fault_load()
        faults_since = max(0.0, faults_total - baseline)
        if final is not None:
            status = "ok"
        elif since_last > stall_after_s:
            status = "stalled"
        elif faults_since > 0:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "finalized": final is not None,
            "batches_seen": n_batches,
            "seconds_since_last_batch": since_last,
            "faults_total": faults_total,
            "faults_since_last_batch": faults_since,
        }

    def live_view(self, stall_after_s: float = 300.0) -> dict:
        """The ``/live`` payload: recent batches + current verdict rows."""
        entries = self.entries()
        with self._lock:
            final = None if self._final is None else dict(self._final)
        latest_live: dict | None = None
        for entry in reversed(entries):
            if "live" in entry:
                latest_live = entry["live"]
                break
        current = final["result"] if final is not None else latest_live
        # Non-stream publishers (the campaign mux's channels) publish
        # reports without the refit counters; they sum as zero rather
        # than constraining every report shape to the stream's.
        return {
            "ixp_batches": [e["report"] for e in entries],
            "warm_refits": sum(
                e["report"].get("warm_refits", 0) for e in entries
            ),
            "cold_refits": sum(
                e["report"].get("cold_refits", 0) for e in entries
            ),
            "placebo_refreshes": sum(
                e["report"].get("placebo_refreshes", 0) for e in entries
            ),
            "verdict": current,
            "finalized": final is not None,
            "health": self.health(stall_after_s),
        }


#: Health statuses from worst to best; a mux reports its worst channel.
_HEALTH_RANK = ("stalled", "degraded", "ok")


class TelemetryMux:
    """One endpoint multiplexing many per-scenario publishers.

    A campaign runs N scenarios but should expose *one* telemetry
    surface: the mux hands each scenario its own named
    :class:`TelemetryPublisher` (created on demand, so scenarios can
    register lazily) and aggregates them behind the same duck-typed
    ``health()`` / ``live_view()`` the :class:`TelemetryServer` handler
    calls — the server code does not know whether it serves one stream
    or a whole fleet.

    Aggregate health is the *worst* channel's status (``stalled`` >
    ``degraded`` > ``ok``): one wedged scenario means the campaign needs
    attention no matter how healthy its neighbours are.
    """

    def __init__(
        self, capacity: int = 64, clock: Callable[[], float] = time.time
    ) -> None:
        self._capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._publishers: dict[str, TelemetryPublisher] = {}

    def publisher(self, name: str) -> TelemetryPublisher:
        """The named channel's publisher (created on first use)."""
        with self._lock:
            pub = self._publishers.get(name)
            if pub is None:
                pub = TelemetryPublisher(
                    capacity=self._capacity, clock=self._clock
                )
                self._publishers[name] = pub
            return pub

    def channels(self) -> tuple[str, ...]:
        """Registered channel names, sorted."""
        with self._lock:
            return tuple(sorted(self._publishers))

    def health(self, stall_after_s: float = 300.0) -> dict:
        """Worst-of health across channels, with the per-channel detail."""
        per = {
            name: self.publisher(name).health(stall_after_s)
            for name in self.channels()
        }
        if not per:
            status = "ok"  # nothing registered yet: nothing is wedged
        else:
            status = min(
                (h["status"] for h in per.values()),
                key=_HEALTH_RANK.index,
            )
        return {
            "status": status,
            "n_channels": len(per),
            "channels": per,
        }

    def live_view(self, stall_after_s: float = 300.0) -> dict:
        """Per-channel live payloads under one JSON document."""
        return {
            "scenarios": {
                name: self.publisher(name).live_view(stall_after_s)
                for name in self.channels()
            },
            "health": self.health(stall_after_s),
        }


class _TelemetryHandler(BaseHTTPRequestHandler):
    """GET-only handler over the server's publisher; silent access log."""

    server: "_TelemetryHTTPServer"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging would interleave with study output

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        publisher = self.server.publisher
        stall = self.server.stall_after_s
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                self._send(
                    200,
                    "text/plain; version=0.0.4",
                    get_metrics().render().encode(),
                )
            elif path == "/health":
                health = publisher.health(stall)
                self._send(
                    200 if health["status"] == "ok" else 503,
                    "application/json",
                    json.dumps(health).encode(),
                )
            elif path == "/live":
                self._send(
                    200,
                    "application/json",
                    json.dumps(publisher.live_view(stall)).encode(),
                )
            else:
                self._send(
                    404,
                    "application/json",
                    json.dumps(
                        {"error": f"unknown path {path!r}",
                         "routes": ["/metrics", "/health", "/live"]}
                    ).encode(),
                )
        except BrokenPipeError:  # poller went away mid-response
            pass


class _TelemetryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    publisher: TelemetryPublisher
    stall_after_s: float


class TelemetryServer:
    """An opt-in HTTP endpoint serving a publisher's telemetry.

    Binds immediately (``port=0`` picks a free port — tests use this),
    serves from a daemon thread after :meth:`start`, and binds to
    loopback by default: this is an operator's local inspection hatch,
    not a public API.  Use as a context manager or ``start()``/``stop()``.
    """

    def __init__(
        self,
        publisher: TelemetryPublisher,
        host: str = "127.0.0.1",
        port: int = 0,
        stall_after_s: float = 300.0,
    ) -> None:
        self.publisher = publisher
        self._httpd = _TelemetryHTTPServer((host, port), _TelemetryHandler)
        self._httpd.publisher = publisher
        self._httpd.stall_after_s = float(stall_after_s)
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with 0)."""
        return self._httpd.server_address[1]

    def url(self, path: str = "") -> str:
        """The endpoint's base URL (plus *path*, if given)."""
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}{path}"

    def start(self) -> "TelemetryServer":
        """Start serving from a daemon thread (no-op if running)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self._httpd.shutdown()
            thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> bool:
        self.stop()
        return False
