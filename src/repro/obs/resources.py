"""Background resource sampling for long-running studies.

The paper's complaint is that repeated measurements arrive without the
runtime context needed to explain drift; a weeks-long streaming study
has the same problem in miniature — when batch 4 000 is suddenly slow,
nobody recorded whether the process was swapping, a worker had died, or
the checkpoint journal had grown into the gigabytes.  The
:class:`ResourceSampler` closes that gap: a daemon thread that
periodically snapshots

- process RSS (``/proc/self/statm``, with a ``getrusage`` fallback),
- ``/dev/shm`` bytes and block counts held by this process's live
  shared-memory blocks (the :func:`~repro.pipeline.shm.live_shm_bytes`
  leak-tracker view — byte-exact, no filesystem scan),
- checkpoint-journal bytes
  (:func:`~repro.pipeline.shm.live_shm_bytes`'s sibling,
  :func:`~repro.pipeline.checkpoint.live_checkpoint_bytes`),
- executor queue depth and worker liveness
  (:func:`~repro.pipeline.executor.live_executor_stats`), and
- GC pressure (generation counters, cumulative collections)

into timestamped :class:`~repro.obs.metrics.GaugeSeries` in the active
:class:`~repro.obs.metrics.MetricsRegistry`, where the telemetry
endpoint (:mod:`repro.obs.serve`) and ``--metrics`` exposition pick
them up.

The sampler is strictly an *observer*: it never touches study state, a
sampler that records zero samples leaves the registry untouched, and
study rows are bit-identical with it on or off (the P9 benchmark pins
this).  It is opt-in — nothing in the pipeline starts one — so tests
and deterministic runs see a no-op unless they enable it themselves.
"""

from __future__ import annotations

import gc
import os
import resource
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, get_metrics

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def read_rss_bytes() -> int:
    """This process's resident set size in bytes.

    Reads ``/proc/self/statm`` (resident pages x page size) where procfs
    exists; falls back to ``getrusage`` (``ru_maxrss`` is the peak, in
    KiB on Linux/BSD) elsewhere, preferring a slightly wrong number to a
    missing gauge.
    """
    try:
        with open("/proc/self/statm") as f:
            fields = f.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


@dataclass(frozen=True)
class ResourceSample:
    """One point-in-time reading of every sampled resource."""

    unix_time: float
    rss_bytes: int
    shm_bytes: int
    shm_blocks: int
    checkpoint_bytes: int
    queue_depth: int
    workers_alive: int
    gc_objects: int
    gc_collections: int


#: ``(series name, help text, ResourceSample attribute)`` for every gauge
#: series the sampler maintains.
SERIES: tuple[tuple[str, str, str], ...] = (
    ("process_rss_bytes", "resident set size of the study process", "rss_bytes"),
    ("shm_live_bytes", "bytes of live shared-memory blocks owned here", "shm_bytes"),
    ("shm_live_blocks", "count of live shared-memory blocks owned here", "shm_blocks"),
    (
        "checkpoint_journal_bytes",
        "on-disk bytes of open checkpoint journals",
        "checkpoint_bytes",
    ),
    ("executor_queue_depth", "submitted-but-unsettled pool tasks", "queue_depth"),
    ("executor_workers_alive", "live pool worker processes", "workers_alive"),
    (
        "gc_pending_objects",
        "sum of the cyclic GC's generation counters (allocation pressure)",
        "gc_objects",
    ),
    ("gc_collections", "cumulative GC collections, all generations", "gc_collections"),
)


def take_resource_sample(unix_time: float | None = None) -> ResourceSample:
    """Read every sampled resource once, right now.

    Pipeline modules are imported lazily so ``repro.obs`` stays
    importable (and cheap) without the pipeline stack.
    """
    from repro.pipeline.checkpoint import live_checkpoint_bytes
    from repro.pipeline.executor import live_executor_stats
    from repro.pipeline.shm import live_shm_blocks, live_shm_bytes

    executor = live_executor_stats()
    return ResourceSample(
        unix_time=time.time() if unix_time is None else float(unix_time),
        rss_bytes=read_rss_bytes(),
        shm_bytes=live_shm_bytes(),
        shm_blocks=live_shm_blocks(),
        checkpoint_bytes=live_checkpoint_bytes(),
        queue_depth=executor["queue_depth"],
        workers_alive=executor["workers_alive"],
        # get_count() reads three integers; never len(gc.get_objects()),
        # which materializes the whole heap and costs O(objects) per tick.
        gc_objects=sum(gc.get_count()),
        gc_collections=sum(s["collections"] for s in gc.get_stats()),
    )


class ResourceSampler:
    """A daemon thread recording :class:`ResourceSample`\\ s on an interval.

    Use as a context manager (or ``start()``/``stop()``, both
    idempotent).  Each tick lands one :class:`ResourceSample` in
    :attr:`samples` and one point in each of the :data:`SERIES` gauge
    series of *registry* (default: the process registry at sample
    time, so a CLI ``--metrics`` swap is respected).  *on_sample*, when
    given, is called with each sample — the telemetry endpoint's hook.

    ``stop()`` takes one final sample before joining, so even a
    sampler stopped before its first interval elapses documents the
    run's end state (the leak tests read that final sample's
    ``shm_bytes == 0``).
    """

    def __init__(
        self,
        interval_s: float = 0.5,
        registry: MetricsRegistry | None = None,
        on_sample: Callable[[ResourceSample], None] | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"sampler interval must be positive, got {interval_s}")
        self.interval_s = float(interval_s)
        self.registry = registry
        self.on_sample = on_sample
        self.samples: list[ResourceSample] = []
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def sample_once(self) -> ResourceSample:
        """Take and record one sample immediately (also used per tick)."""
        sample = take_resource_sample()
        registry = self.registry if self.registry is not None else get_metrics()
        for name, help_, attr in SERIES:
            registry.series(name, help_).record(
                getattr(sample, attr), unix_time=sample.unix_time
            )
        self.samples.append(sample)
        if self.on_sample is not None:
            self.on_sample(sample)
        return sample

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def start(self) -> "ResourceSampler":
        """Start the sampling thread (no-op if already running)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread, then take one final sample (no-op if stopped)."""
        thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=max(5.0, 4 * self.interval_s))
        self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info: object) -> bool:
        self.stop()
        return False
