"""Worker-side observability capture for the process-pool backend.

A process-pool worker cannot append to the parent's trace, so the
executor wraps every task in :func:`run_captured`: the task runs
against a fresh span buffer and a fresh metrics registry, and the
result ships home as a :class:`WorkerOutcome` carrying the value (or
the exception *with its formatted worker traceback*), the spans, a
metrics snapshot, and any chaos fault events the task fired.  The
parent calls :func:`absorb_outcome` on each outcome **in task order**,
which grafts the spans under its current span
(:func:`~repro.obs.trace.merge_worker_records`), folds the metrics and
fault log in, and re-raises failures with the worker stack chained on —
so a parallel run's trace, metrics, fault log, and error reports all
match the serial run's.

When the parent has a :class:`~repro.chaos.plan.FaultPlan` armed, the
executor ships it (plus the task's attempt number) into
:func:`run_captured`, which arms it in the worker for the task's
duration — fault injection follows the work wherever it runs.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ExecutionError
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.obs.trace import SpanRecord, get_tracer, merge_worker_records


class WorkerTraceback(ExecutionError):
    """Carries a worker's formatted stack; chained onto re-raised errors."""


@dataclass
class WorkerOutcome:
    """One task's result plus everything the worker observed producing it."""

    value: Any = None
    exception: BaseException | None = None
    traceback_text: str = ""
    spans: list[SpanRecord] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    faults: list = field(default_factory=list)


def run_captured(
    fn: Any, item: Any, plan: Any = None, attempt: int = 0
) -> WorkerOutcome:
    """Run ``fn(item)`` in a worker, capturing spans, metrics, and errors.

    The worker's tracer buffer, metrics registry, and chaos fault-event
    buffer are swapped out for the duration of the task, so each
    outcome ships a per-task delta — pooled workers running many tasks
    never double-count.  *plan* (a shipped ``FaultPlan``) is armed for
    the task with *attempt* as the chaos attempt number.
    """
    from repro.chaos.runtime import drain_events, worker_context

    tracer = get_tracer()
    saved_records, tracer.records = tracer.records, []
    saved_registry = set_metrics(MetricsRegistry())
    try:
        with worker_context(plan, attempt):
            try:
                value = fn(item)
                return WorkerOutcome(
                    value=value,
                    spans=tracer.records,
                    metrics=get_metrics().snapshot(),
                    faults=drain_events(),
                )
            except Exception as exc:
                return WorkerOutcome(
                    exception=exc,
                    traceback_text=traceback.format_exc(),
                    spans=tracer.records,
                    metrics=get_metrics().snapshot(),
                    faults=drain_events(),
                )
    finally:
        set_metrics(saved_registry)
        tracer.records = saved_records


def merge_outcome_observability(
    outcome: WorkerOutcome, task_order: tuple | None = None
) -> None:
    """Fold one outcome's spans, metrics, and fault events in — no raise.

    The executor uses this for the failed attempts of a retried task:
    their observations belong in the parent's trace (a serial run would
    have recorded them inline) even though their exceptions were
    swallowed by the retry.  *task_order* (``(epoch, index)`` from the
    executor) makes the gauge merge order-independent — see
    :meth:`~repro.obs.metrics.MetricsRegistry.merge`.
    """
    from repro.chaos.runtime import record_events

    merge_worker_records(outcome.spans)
    get_metrics().merge(outcome.metrics, task_order=task_order)
    if outcome.faults:
        record_events(outcome.faults)


def absorb_outcome(outcome: WorkerOutcome, task_order: tuple | None = None) -> Any:
    """Merge one worker outcome into this process; return its value.

    Spans land under the caller's current span in buffer order; metrics
    and fault events fold into the live registry and fault log.  A
    failed task re-raises the original exception with a
    :class:`WorkerTraceback` chained as its cause, so the worker-side
    stack survives the process boundary.
    """
    merge_outcome_observability(outcome, task_order=task_order)
    if outcome.exception is not None:
        raise outcome.exception from WorkerTraceback(
            "worker-side traceback:\n" + outcome.traceback_text
        )
    return outcome.value
