"""Worker-side observability capture for the process-pool backend.

A process-pool worker cannot append to the parent's trace, so the
executor wraps every task in :func:`run_captured`: the task runs
against a fresh span buffer and a fresh metrics registry, and the
result ships home as a :class:`WorkerOutcome` carrying the value (or
the exception *with its formatted worker traceback*), the spans, and a
metrics snapshot.  The parent calls :func:`absorb_outcome` on each
outcome **in task order**, which grafts the spans under its current
span (:func:`~repro.obs.trace.merge_worker_records`), folds the
metrics in, and re-raises failures with the worker stack chained on —
so a parallel run's trace, metrics, and error reports all match the
serial run's.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ExecutionError
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.obs.trace import SpanRecord, get_tracer, merge_worker_records


class WorkerTraceback(ExecutionError):
    """Carries a worker's formatted stack; chained onto re-raised errors."""


@dataclass
class WorkerOutcome:
    """One task's result plus everything the worker observed producing it."""

    value: Any = None
    exception: BaseException | None = None
    traceback_text: str = ""
    spans: list[SpanRecord] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)


def run_captured(fn: Any, item: Any) -> WorkerOutcome:
    """Run ``fn(item)`` in a worker, capturing spans, metrics, and errors.

    The worker's tracer buffer and metrics registry are swapped out for
    the duration of the task, so each outcome ships a per-task delta —
    pooled workers running many tasks never double-count.
    """
    tracer = get_tracer()
    saved_records, tracer.records = tracer.records, []
    saved_registry = set_metrics(MetricsRegistry())
    try:
        try:
            value = fn(item)
            return WorkerOutcome(
                value=value,
                spans=tracer.records,
                metrics=get_metrics().snapshot(),
            )
        except Exception as exc:
            return WorkerOutcome(
                exception=exc,
                traceback_text=traceback.format_exc(),
                spans=tracer.records,
                metrics=get_metrics().snapshot(),
            )
    finally:
        set_metrics(saved_registry)
        tracer.records = saved_records


def absorb_outcome(outcome: WorkerOutcome) -> Any:
    """Merge one worker outcome into this process; return its value.

    Spans land under the caller's current span in buffer order; metrics
    fold into the live registry.  A failed task re-raises the original
    exception with a :class:`WorkerTraceback` chained as its cause, so
    the worker-side stack survives the process boundary.
    """
    merge_worker_records(outcome.spans)
    get_metrics().merge(outcome.metrics)
    if outcome.exception is not None:
        raise outcome.exception from WorkerTraceback(
            "worker-side traceback:\n" + outcome.traceback_text
        )
    return outcome.value
