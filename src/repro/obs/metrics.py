"""A small metrics registry: counters, gauges, fixed-bucket histograms.

The pipeline's quantitative health signals (`placebos_skipped_total`,
`donor_pool_size`, `fit_seconds`, ...) are registered here by the code
that produces them and dumped as Prometheus-style exposition text by
the CLI's ``--metrics`` flag, so two runs can be diffed (or scraped)
without parsing logs.

Instruments are get-or-create by name through the process-wide
registry (:func:`get_metrics`); worker processes record into their own
registry per task, :meth:`MetricsRegistry.snapshot` makes the state
picklable, and :meth:`MetricsRegistry.merge` folds worker snapshots
back into the parent — counters and histograms add, gauges resolve by
**task order** — so serial and parallel runs report identical values.

Gauge merge determinism: a bare ``merge(snapshot)`` is last-write-wins
in *call* order, which is only deterministic if every caller merges in
task order.  The executor therefore passes ``task_order=(epoch, index)``
(one :func:`merge_epoch` per fan-out, the task index within it) and the
registry keeps, per gauge, the highest task order merged so far: a
snapshot merged late — because its task *completed* late, e.g. after
retries — can no longer clobber a logically-later task's value.  This
mirrors the span graft's task-order contract in
:mod:`repro.obs.capture`.

:class:`GaugeSeries` extends the gauge with a bounded, timestamped
sample history — what the resource sampler
(:mod:`repro.obs.resources`) records — rendered as a plain gauge (its
latest value) in the exposition text.

Deliberately not implemented: metric labels (beyond the histogram's
``le``) and exemplars.  Stage identity lives in the trace; metrics
stay cheap aggregates.
"""

from __future__ import annotations

import itertools
import threading
import time
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass

from repro.errors import ReproError

#: Default histogram buckets for wall-clock seconds (upper bounds; a
#: +Inf overflow bucket is always appended).
SECONDS_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Default buckets for small cardinalities (donor pools, placebo counts).
COUNT_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 20, 40, 80, 160)


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    help: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the total."""
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins).

    ``merge_order`` is the task order of the last *merged* write (see
    the module docstring); a direct :meth:`set` clears it, because a
    local write is by definition more recent than any shipped snapshot.
    """

    name: str
    help: str = ""
    value: float = 0.0
    touched: bool = False
    merge_order: tuple | None = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)
        self.touched = True
        self.merge_order = None


@dataclass(frozen=True)
class SeriesPoint:
    """One timestamped observation in a :class:`GaugeSeries`."""

    unix_time: float
    value: float


class GaugeSeries:
    """A gauge that also keeps a bounded, timestamped sample history.

    The resource sampler records into these; ``render()`` exposes only
    the latest value (as a plain gauge), while :meth:`points` hands the
    history to the telemetry endpoint and to tests.  The deque bound
    keeps week-long runs from accumulating unbounded sample memory.
    """

    def __init__(self, name: str, help: str = "", capacity: int = 4096) -> None:
        self.name = name
        self.help = help
        self._points: deque[SeriesPoint] = deque(maxlen=capacity)

    def record(self, value: float, unix_time: float | None = None) -> None:
        """Append one sample (stamped now unless *unix_time* is given)."""
        when = time.time() if unix_time is None else float(unix_time)
        self._points.append(SeriesPoint(when, float(value)))

    def points(self) -> tuple[SeriesPoint, ...]:
        """The retained samples, oldest first."""
        return tuple(self._points)

    @property
    def value(self) -> float:
        """The most recent sample (0.0 if none recorded yet)."""
        return self._points[-1].value if self._points else 0.0

    @property
    def touched(self) -> bool:
        return bool(self._points)


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    *buckets* are ascending upper bounds; an observation lands in the
    first bucket whose bound is >= the value (bounds are inclusive, as
    in Prometheus), or in the implicit +Inf overflow bucket.
    """

    def __init__(
        self, name: str, buckets: tuple[float, ...], help: str = ""
    ) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ReproError(
                f"histogram {name} needs strictly ascending buckets, got {buckets}"
            )
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1


class MetricsRegistry:
    """Get-or-create home for every instrument in one process/worker.

    A re-entrant lock guards instrument *creation* and whole-registry
    reads (``snapshot``/``render``/``merge``): the telemetry server and
    the resource sampler both touch the registry from their own threads
    while the study writes to it.  Individual ``inc``/``set``/``observe``
    calls stay lock-free — they mutate single floats/ints under the GIL
    and sit on hot paths.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, GaugeSeries] = {}
        self._lock = threading.RLock()

    def _families(self) -> tuple[dict, ...]:
        return (self._counters, self._gauges, self._histograms, self._series)

    def _claim(self, name: str, kind: dict) -> None:
        for family in self._families():
            if family is not kind and name in family:
                raise ReproError(f"metric {name!r} already registered as another type")

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter named *name* (created on first use)."""
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.get(name)
                if c is None:
                    self._claim(name, self._counters)
                    c = self._counters[name] = Counter(name, help)
        return c

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge named *name* (created on first use)."""
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.get(name)
                if g is None:
                    self._claim(name, self._gauges)
                    g = self._gauges[name] = Gauge(name, help)
        return g

    def series(
        self, name: str, help: str = "", capacity: int = 4096
    ) -> GaugeSeries:
        """The timestamped gauge series named *name* (created on first use)."""
        s = self._series.get(name)
        if s is None:
            with self._lock:
                s = self._series.get(name)
                if s is None:
                    self._claim(name, self._series)
                    s = self._series[name] = GaugeSeries(name, help, capacity)
        return s

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = SECONDS_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """The histogram named *name* (buckets fixed by the first call)."""
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.get(name)
                if h is None:
                    self._claim(name, self._histograms)
                    h = self._histograms[name] = Histogram(name, tuple(buckets), help)
                    return h
        if tuple(float(b) for b in buckets) != h.buckets:
            raise ReproError(
                f"histogram {name!r} re-registered with different buckets"
            )
        return h

    def reset(self) -> None:
        """Forget every instrument (tests)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._series.clear()

    # -- cross-process shipping ------------------------------------------------

    def snapshot(self) -> dict:
        """A picklable copy of the registry state (for worker results).

        Gauge series are deliberately absent: they are parent-process
        resource samples, never produced inside workers.
        """
        with self._lock:
            return {
                "counters": {
                    n: (c.help, c.value) for n, c in self._counters.items()
                },
                "gauges": {
                    n: (g.help, g.value)
                    for n, g in self._gauges.items()
                    if g.touched
                },
                "histograms": {
                    n: (h.help, h.buckets, tuple(h.counts), h.sum, h.count)
                    for n, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict, task_order: tuple | None = None) -> None:
        """Fold a worker snapshot in: counters/histograms add, gauges resolve.

        With *task_order* (any comparable tuple, e.g. ``(epoch, index)``)
        a gauge is overwritten only when this snapshot's order is >= the
        order that produced the gauge's current value, so the outcome is
        the task-order-maximal write no matter when each task finished.
        Without it, behaviour stays last-write-wins (callers merging in
        a known order).
        """
        with self._lock:
            for name, (help_, value) in snapshot.get("counters", {}).items():
                self.counter(name, help_).inc(value)
            for name, (help_, value) in snapshot.get("gauges", {}).items():
                g = self.gauge(name, help_)
                if task_order is None:
                    g.set(value)
                elif g.merge_order is None or task_order >= g.merge_order:
                    g.value = float(value)
                    g.touched = True
                    g.merge_order = task_order
            for name, (help_, buckets, counts, sum_, count) in snapshot.get(
                "histograms", {}
            ).items():
                h = self.histogram(name, buckets, help_)
                for i, c in enumerate(counts):
                    h.counts[i] += c
                h.sum += sum_
                h.count += count

    # -- exposition ------------------------------------------------------------

    def render(self) -> str:
        """Prometheus-style text exposition of every instrument, sorted.

        Gauge series appear as plain gauges carrying their latest
        sample; untouched series (zero samples) are omitted so enabling
        the sampler without it ever firing changes nothing.
        """
        with self._lock:
            return self._render_locked()

    def _render_locked(self) -> str:
        lines: list[str] = []
        for name in sorted(self._counters):
            c = self._counters[name]
            if c.help:
                lines.append(f"# HELP {name} {c.help}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_fmt(c.value)}")
        exposable_gauges = dict(self._gauges)
        for name, s in self._series.items():
            if s.touched and name not in exposable_gauges:
                exposable_gauges[name] = s
        for name in sorted(exposable_gauges):
            g = exposable_gauges[name]
            if g.help:
                lines.append(f"# HELP {name} {g.help}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(g.value)}")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            if h.help:
                lines.append(f"# HELP {name} {h.help}")
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(h.buckets, h.counts):
                cumulative += count
                lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
            cumulative += h.counts[-1]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {_fmt(h.sum)}")
            lines.append(f"{name}_count {h.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    """Integers without a trailing .0, floats with repr precision."""
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


_registry = MetricsRegistry()

_merge_epochs = itertools.count()


def merge_epoch() -> int:
    """The next merge-epoch number (process-wide, monotonically increasing).

    Each executor fan-out claims one epoch and merges its outcomes with
    ``task_order=(epoch, index)``, so gauges from a *later* map call
    always outrank gauges from an earlier one even though both use
    small task indices.
    """
    return next(_merge_epochs)


def get_metrics() -> MetricsRegistry:
    """The current process-wide registry."""
    return _registry


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    The executor uses this to give each worker task a fresh registry so
    snapshots ship per-task deltas, never double-counted totals.
    """
    global _registry
    previous = _registry
    _registry = registry
    return previous
