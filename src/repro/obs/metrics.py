"""A small metrics registry: counters, gauges, fixed-bucket histograms.

The pipeline's quantitative health signals (`placebos_skipped_total`,
`donor_pool_size`, `fit_seconds`, ...) are registered here by the code
that produces them and dumped as Prometheus-style exposition text by
the CLI's ``--metrics`` flag, so two runs can be diffed (or scraped)
without parsing logs.

Instruments are get-or-create by name through the process-wide
registry (:func:`get_metrics`); worker processes record into their own
registry per task, :meth:`MetricsRegistry.snapshot` makes the state
picklable, and :meth:`MetricsRegistry.merge` folds worker snapshots
back into the parent — counters and histograms add, gauges last-write-
win — so serial and parallel runs report identical totals.

Deliberately not implemented: metric labels (beyond the histogram's
``le``) and exemplars.  Stage identity lives in the trace; metrics
stay cheap aggregates.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from repro.errors import ReproError

#: Default histogram buckets for wall-clock seconds (upper bounds; a
#: +Inf overflow bucket is always appended).
SECONDS_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Default buckets for small cardinalities (donor pools, placebo counts).
COUNT_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 20, 40, 80, 160)


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    help: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the total."""
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    help: str = ""
    value: float = 0.0
    touched: bool = False

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)
        self.touched = True


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    *buckets* are ascending upper bounds; an observation lands in the
    first bucket whose bound is >= the value (bounds are inclusive, as
    in Prometheus), or in the implicit +Inf overflow bucket.
    """

    def __init__(
        self, name: str, buckets: tuple[float, ...], help: str = ""
    ) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ReproError(
                f"histogram {name} needs strictly ascending buckets, got {buckets}"
            )
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1


class MetricsRegistry:
    """Get-or-create home for every instrument in one process/worker."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _claim(self, name: str, kind: dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not kind and name in family:
                raise ReproError(f"metric {name!r} already registered as another type")

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter named *name* (created on first use)."""
        c = self._counters.get(name)
        if c is None:
            self._claim(name, self._counters)
            c = self._counters[name] = Counter(name, help)
        return c

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge named *name* (created on first use)."""
        g = self._gauges.get(name)
        if g is None:
            self._claim(name, self._gauges)
            g = self._gauges[name] = Gauge(name, help)
        return g

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = SECONDS_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """The histogram named *name* (buckets fixed by the first call)."""
        h = self._histograms.get(name)
        if h is None:
            self._claim(name, self._histograms)
            h = self._histograms[name] = Histogram(name, tuple(buckets), help)
        elif tuple(float(b) for b in buckets) != h.buckets:
            raise ReproError(
                f"histogram {name!r} re-registered with different buckets"
            )
        return h

    def reset(self) -> None:
        """Forget every instrument (tests)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- cross-process shipping ------------------------------------------------

    def snapshot(self) -> dict:
        """A picklable copy of the registry state (for worker results)."""
        return {
            "counters": {
                n: (c.help, c.value) for n, c in self._counters.items()
            },
            "gauges": {
                n: (g.help, g.value)
                for n, g in self._gauges.items()
                if g.touched
            },
            "histograms": {
                n: (h.help, h.buckets, tuple(h.counts), h.sum, h.count)
                for n, h in self._histograms.items()
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a worker snapshot in: counters/histograms add, gauges overwrite."""
        for name, (help_, value) in snapshot.get("counters", {}).items():
            self.counter(name, help_).inc(value)
        for name, (help_, value) in snapshot.get("gauges", {}).items():
            self.gauge(name, help_).set(value)
        for name, (help_, buckets, counts, sum_, count) in snapshot.get(
            "histograms", {}
        ).items():
            h = self.histogram(name, buckets, help_)
            for i, c in enumerate(counts):
                h.counts[i] += c
            h.sum += sum_
            h.count += count

    # -- exposition ------------------------------------------------------------

    def render(self) -> str:
        """Prometheus-style text exposition of every instrument, sorted."""
        lines: list[str] = []
        for name in sorted(self._counters):
            c = self._counters[name]
            if c.help:
                lines.append(f"# HELP {name} {c.help}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_fmt(c.value)}")
        for name in sorted(self._gauges):
            g = self._gauges[name]
            if g.help:
                lines.append(f"# HELP {name} {g.help}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(g.value)}")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            if h.help:
                lines.append(f"# HELP {name} {h.help}")
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(h.buckets, h.counts):
                cumulative += count
                lines.append(f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
            cumulative += h.counts[-1]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {_fmt(h.sum)}")
            lines.append(f"{name}_count {h.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    """Integers without a trailing .0, floats with repr precision."""
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The current process-wide registry."""
    return _registry


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    The executor uses this to give each worker task a fresh registry so
    snapshots ship per-task deltas, never double-counted totals.
    """
    global _registry
    previous = _registry
    _registry = registry
    return previous
