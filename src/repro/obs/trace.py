"""Hierarchical wall-clock tracing for the study pipeline.

The paper's §4 asks measurement platforms to record *why* every
measurement was taken; this module makes the reproduction hold itself
to the same standard.  Each pipeline stage opens a :func:`span` — a
context manager (or :func:`traced` decorator) that records its name,
wall-clock duration, and free-form attributes — and nesting follows the
call structure through a context variable, so the finished trace is a
tree: a study contains an assignment span, a panel span, and a fits
span; the fits span contains one ``fits.unit`` span per treated unit;
each unit contains its donor screen, its treated fit, and one
``placebo`` span per placebo refit.

Spans are recorded *flat* (one :class:`SpanRecord` per finished span,
appended at exit in post-order) and the tree is rebuilt from parent
pointers by :mod:`repro.obs.report` or any JSONL consumer.  Worker
processes record into their own buffer; the executor ships those
buffers back with each result and :func:`merge_worker_records` grafts
them — ids remapped, order preserved — under the parent's current
span, so a parallel run yields the same tree shape as a serial one.

Tracing is on by default and deliberately cheap (no per-row spans
anywhere in the pipeline); :func:`set_tracing` / :func:`tracing_disabled`
turn it off for overhead measurement or paranoid production runs.
"""

from __future__ import annotations

import contextlib
import functools
import itertools
import json
import logging
import os
import time
from collections.abc import Callable, Iterable, Iterator, Sequence
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, TypeVar

_F = TypeVar("_F", bound=Callable[..., Any])

logger = logging.getLogger(__name__)


@dataclass
class SpanRecord:
    """One finished span, flat: the tree lives in the parent pointers.

    Attributes
    ----------
    name:
        Dotted stage name (``"fits.unit"``, ``"placebo"``, ...).
    span_id, parent_id:
        Process-unique ids; ``parent_id`` is None for a root span.
    start_unix:
        Absolute start time (``time.time()``), comparable across
        processes.
    duration_s:
        Wall-clock seconds from a monotonic clock.
    attrs:
        Free-form attributes (unit label, donor counts, skip reasons).
    pid:
        Process that recorded the span (workers keep theirs on merge).
    """

    name: str
    span_id: int
    parent_id: int | None
    start_unix: float
    duration_s: float
    attrs: dict[str, Any] = field(default_factory=dict)
    pid: int = field(default_factory=os.getpid)


class Tracer:
    """An append-only buffer of finished spans plus the id source."""

    def __init__(self) -> None:
        self.records: list[SpanRecord] = []
        self.enabled = True
        self._ids = itertools.count(1)

    def next_id(self) -> int:
        """A fresh span id (unique within this process)."""
        return next(self._ids)

    def reset(self) -> None:
        """Drop every recorded span (tests and long-lived services)."""
        self.records.clear()

    def drain(self) -> list[SpanRecord]:
        """Return and clear the recorded spans (worker shipping)."""
        records = list(self.records)
        self.records.clear()
        return records

    def children(self, parent_id: int, name: str | None = None) -> list[SpanRecord]:
        """Recorded direct children of *parent_id*, optionally by name."""
        return [
            r
            for r in self.records
            if r.parent_id == parent_id and (name is None or r.name == name)
        ]


_tracer = Tracer()
_current: ContextVar[int | None] = ContextVar("repro_obs_current_span", default=None)


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _tracer


def current_span_id() -> int | None:
    """The id of the innermost open span in this context, if any."""
    return _current.get()


def set_tracing(enabled: bool) -> bool:
    """Enable/disable span recording; returns the previous setting."""
    previous = _tracer.enabled
    _tracer.enabled = bool(enabled)
    return previous


@contextlib.contextmanager
def tracing_disabled() -> Iterator[None]:
    """Temporarily turn span recording off (overhead measurement)."""
    previous = set_tracing(False)
    try:
        yield
    finally:
        set_tracing(previous)


class _SpanHandle:
    """An open span: times itself, records itself on exit."""

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "start_unix",
        "duration_s",
        "record",
        "_token",
        "_t0",
    )

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.record: SpanRecord | None = None
        self.duration_s = 0.0

    def set(self, **attrs: Any) -> "_SpanHandle":
        """Attach attributes discovered mid-span (donor counts, status)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        self.span_id = _tracer.next_id()
        self.parent_id = _current.get()
        self._token = _current.set(self.span_id)
        self.start_unix = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        _current.reset(self._token)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.record = SpanRecord(
            name=self.name,
            span_id=self.span_id,
            parent_id=self.parent_id,
            start_unix=self.start_unix,
            duration_s=self.duration_s,
            attrs=self.attrs,
        )
        _tracer.records.append(self.record)
        _observe_span_duration(self.name, self.duration_s)
        return False


def _observe_span_duration(name: str, duration_s: float) -> None:
    """The span→histogram bridge: every closed span feeds a latency histogram.

    ``--metrics`` output then carries per-stage latency *distributions*
    (``span_seconds_fits_unit_bucket{le=...}``), not just counters.  The
    bridge rides the tracing kill switch — it only runs from
    ``_SpanHandle.__exit__``, which never executes while tracing is
    disabled — and worker spans feed their *worker's* registry, whose
    histograms merge additively into the parent, so serial and parallel
    runs agree on every bucket's observation count.
    """
    from repro.obs.metrics import get_metrics

    get_metrics().histogram(
        "span_seconds_" + name.replace(".", "_").replace("-", "_"),
        help=f"wall-clock seconds of {name!r} spans",
    ).observe(duration_s)


class _NullSpan:
    """The do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    record = None
    duration_s = 0.0

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()

Span = _SpanHandle | _NullSpan


def span(name: str, **attrs: Any) -> Span:
    """Open a named span: ``with span("fits.unit", unit=label) as sp:``.

    Attributes passed here (or added later via ``sp.set(...)``) land in
    the finished record.  While tracing is disabled this returns a
    shared no-op handle, so instrumented code pays one truthiness check
    and nothing else.
    """
    if not _tracer.enabled:
        return _NULL_SPAN
    return _SpanHandle(name, attrs)


def traced(name: str | None = None, **attrs: Any) -> Callable[[_F], _F]:
    """Decorator form of :func:`span` (name defaults to the qualname).

    The enabled check happens per call, so decorating at import time is
    safe even if tracing is toggled later.
    """

    def decorate(fn: _F) -> _F:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def child_seconds(parent: Span, name: str) -> float | None:
    """Summed duration of *parent*'s finished children named *name*.

    None when no such child was recorded (e.g. tracing was disabled),
    so callers can fall back to their own clocks.
    """
    if isinstance(parent, _NullSpan):
        return None
    total: float | None = None
    for record in _tracer.records:
        if record.parent_id == parent.span_id and record.name == name:
            total = (total or 0.0) + record.duration_s
    return total


def merge_worker_records(
    records: Sequence[SpanRecord], parent_id: int | None = None
) -> None:
    """Graft a worker's span buffer into this process's trace.

    Worker span ids are remapped onto fresh parent-side ids (two
    passes, since post-order buffers list children before parents) and
    the worker's root spans are re-parented under *parent_id* (default:
    the caller's current span).  Records are appended in buffer order,
    so merging one worker buffer per task, in task order, reproduces
    the serial trace's ordering.
    """
    if not _tracer.enabled or not records:
        return
    if parent_id is None:
        parent_id = _current.get()
    mapping = {r.span_id: _tracer.next_id() for r in records}
    for r in records:
        _tracer.records.append(
            SpanRecord(
                name=r.name,
                span_id=mapping[r.span_id],
                parent_id=(
                    mapping[r.parent_id]
                    if r.parent_id in mapping
                    else parent_id
                ),
                start_unix=r.start_unix,
                duration_s=r.duration_s,
                attrs=dict(r.attrs),
                pid=r.pid,
            )
        )


# -- JSONL import/export ------------------------------------------------------


def to_jsonl_lines(records: Iterable[SpanRecord]) -> Iterator[str]:
    """One compact JSON object per record (non-JSON attrs stringified)."""
    for r in records:
        yield json.dumps(
            {
                "name": r.name,
                "span_id": r.span_id,
                "parent_id": r.parent_id,
                "start_unix": r.start_unix,
                "duration_s": r.duration_s,
                "pid": r.pid,
                "attrs": r.attrs,
            },
            default=str,
            separators=(",", ":"),
        )


def export_jsonl(
    path: str | Path, records: Sequence[SpanRecord] | None = None
) -> int:
    """Write a trace (default: everything recorded so far) as JSONL.

    Returns the number of spans written.
    """
    if records is None:
        records = _tracer.records
    with open(path, "w") as f:
        for line in to_jsonl_lines(records):
            f.write(line + "\n")
    return len(records)


def load_jsonl(path: str | Path) -> list[SpanRecord]:
    """Read a JSONL trace back into :class:`SpanRecord` objects.

    A truncated final line — the signature of a writer killed
    mid-append — is dropped with a warning; a malformed line anywhere
    earlier still raises, since that is corruption, not interruption.
    """
    out: list[SpanRecord] = []
    with open(path) as f:
        lines = f.read().split("\n")
    for i, line in enumerate(lines):
        terminated = i < len(lines) - 1
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            if terminated:
                raise
            logger.warning(
                "%s: dropping truncated final trace record: %.60s", path, line
            )
            break
        if not terminated:
            logger.warning(
                "%s: dropping unterminated final trace record: %.60s", path, line
            )
            break
        out.append(
            SpanRecord(
                name=obj["name"],
                span_id=int(obj["span_id"]),
                parent_id=(
                    None if obj["parent_id"] is None else int(obj["parent_id"])
                ),
                start_unix=float(obj["start_unix"]),
                duration_s=float(obj["duration_s"]),
                attrs=dict(obj.get("attrs", {})),
                pid=int(obj.get("pid", 0)),
            )
        )
    return out
