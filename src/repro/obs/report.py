"""Text renderers for traces and metrics.

One renderer serves both the CLI (``--trace`` prints a summary tree at
higher log levels, benchmarks embed trees in their reports) and ad-hoc
analysis of exported JSONL files: :func:`render_trace` rebuilds the
span forest from parent pointers and prints an aligned, indented tree
— names left, durations right, attributes trailing — so the slowest
stage is readable at a glance.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.obs.trace import SpanRecord

_INDENT = "  "


def _attr_text(attrs: dict) -> str:
    return " ".join(f"{k}={v}" for k, v in attrs.items())


def render_trace(
    records: Sequence[SpanRecord],
    max_spans: int | None = None,
    hotspots: int | None = None,
) -> str:
    """An aligned text tree of a span forest.

    Children print under their parent in record order (which both the
    serial path and the order-stable worker merge produce in task
    order).  *max_spans* truncates huge traces, noting how many spans
    were elided — silent truncation would read as full coverage.
    *hotspots* appends a top-K self-time table
    (:func:`repro.obs.profile.format_hotspots`) under the tree.
    """
    if not records:
        return "(empty trace)"
    by_parent: dict[int | None, list[SpanRecord]] = {}
    ids = {r.span_id for r in records}
    for r in records:
        parent = r.parent_id if r.parent_id in ids else None
        by_parent.setdefault(parent, []).append(r)

    # Depth-first, children in record order.
    lines: list[tuple[str, float, str]] = []

    def walk(parent: int | None, depth: int) -> None:
        for r in by_parent.get(parent, []):
            lines.append(
                (f"{_INDENT * depth}{r.name}", r.duration_s, _attr_text(r.attrs))
            )
            walk(r.span_id, depth + 1)

    walk(None, 0)

    elided = 0
    if max_spans is not None and len(lines) > max_spans:
        elided = len(lines) - max_spans
        lines = lines[:max_spans]
    width = max(len(label) for label, _, _ in lines)
    out = [
        f"{label:<{width}}  {duration:>9.3f}s" + (f"  {attrs}" if attrs else "")
        for label, duration, attrs in lines
    ]
    if elided:
        out.append(f"... {elided} more spans elided")
    if hotspots is not None:
        from repro.obs.profile import format_hotspots

        out.append("")
        out.append(f"top {hotspots} hotspots by self time")
        out.append(format_hotspots(records, top=hotspots))
    return "\n".join(out)


def span_counts(records: Sequence[SpanRecord]) -> dict[str, int]:
    """How many spans of each name a trace holds (shape comparisons)."""
    counts: dict[str, int] = {}
    for r in records:
        counts[r.name] = counts.get(r.name, 0) + 1
    return counts
