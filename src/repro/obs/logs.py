"""Structured logging wiring for the ``repro`` package.

Every ``repro`` module logs through a standard per-module logger
(``logging.getLogger(__name__)``); the package root gets a
``NullHandler`` at import (installed by :mod:`repro.__init__` via
:func:`install_null_handler`) so library users see nothing unless they
opt in.  The CLI's ``--log-level`` flag calls :func:`configure_logging`
to attach one stream handler with a timestamped format.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

ROOT_LOGGER_NAME = "repro"
_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: Attribute marking the handler the CLI installed, so repeated
#: configure_logging calls (tests, REPLs) reconfigure instead of stacking.
_CLI_HANDLER_FLAG = "_repro_cli_handler"


def install_null_handler() -> None:
    """Silence the package for library users (stdlib best practice)."""
    logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def configure_logging(level: str | int, stream: IO[str] | None = None) -> logging.Logger:
    """Point the ``repro`` logger at *stream* (default stderr) at *level*.

    Idempotent: the handler installed here is tagged and replaced on
    subsequent calls rather than duplicated.
    """
    if isinstance(level, str):
        level = getattr(logging, level.upper())
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, _CLI_HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    setattr(handler, _CLI_HANDLER_FLAG, True)
    logger.addHandler(handler)
    return logger
