"""Profiling analysis over recorded span trees.

A trace answers "what ran, nested how, for how long"; this module turns
it into the profiler views people actually reach for:

- :func:`self_times` — per-span *self* time (duration minus the summed
  durations of direct children, clamped at zero against clock skew), so
  a parent that merely awaits its children stops dominating the ranking;
- :func:`hotspots` — per-name aggregation of call count, total time,
  and self time, ranked by self time: the top-K table wired into
  :func:`repro.obs.report.render_trace`;
- :func:`critical_path` — the walk from the longest root span down its
  longest child at every level: the chain a latency optimisation has to
  shorten;
- :func:`folded_stacks` / :func:`export_folded` — the
  ``root;child;grandchild <weight>`` folded-stack lines that standard
  flame-graph tooling (Brendan Gregg's ``flamegraph.pl``, speedscope,
  ``inferno``) consumes directly, weighted by self time in microseconds.

Everything here is pure analysis over :class:`~repro.obs.trace.SpanRecord`
sequences — it works identically on a live tracer buffer and on a trace
JSONL loaded back from disk (the CLI ``report`` subcommand does the
latter).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.obs.trace import SpanRecord, get_tracer


def _children_by_parent(
    records: Sequence[SpanRecord],
) -> dict[int | None, list[SpanRecord]]:
    """Record-order children per parent id; orphans root at ``None``.

    Orphan adoption matches :func:`repro.obs.report.render_trace`: a
    record whose parent id is absent (a truncated trace, or worker
    spans exported before merging) is treated as a root.
    """
    ids = {r.span_id for r in records}
    by_parent: dict[int | None, list[SpanRecord]] = {}
    for r in records:
        parent = r.parent_id if r.parent_id in ids else None
        by_parent.setdefault(parent, []).append(r)
    return by_parent


def self_times(records: Sequence[SpanRecord]) -> dict[int, float]:
    """Per-span self time: duration minus direct children, floored at 0.

    The floor matters in practice: a parent's duration comes from one
    ``perf_counter`` pair while its children's come from many, so
    rounding (or a child recorded under a remapped parent) can push the
    difference a few microseconds negative.
    """
    child_sum: dict[int | None, float] = {}
    ids = {r.span_id for r in records}
    for r in records:
        parent = r.parent_id if r.parent_id in ids else None
        child_sum[parent] = child_sum.get(parent, 0.0) + r.duration_s
    return {
        r.span_id: max(0.0, r.duration_s - child_sum.get(r.span_id, 0.0))
        for r in records
    }


@dataclass(frozen=True)
class Hotspot:
    """One span name's aggregate cost across a trace."""

    name: str
    count: int
    total_s: float
    self_s: float


def hotspots(records: Sequence[SpanRecord], top: int | None = None) -> list[Hotspot]:
    """Per-name cost aggregates, ranked by self time (name breaks ties).

    ``total_s`` sums every span's full duration (so nested same-name
    spans double-count by design — it answers "how long were we inside
    this stage"), while ``self_s`` partitions wall-clock exactly once.
    """
    selfs = self_times(records)
    count: dict[str, int] = {}
    total: dict[str, float] = {}
    self_: dict[str, float] = {}
    for r in records:
        count[r.name] = count.get(r.name, 0) + 1
        total[r.name] = total.get(r.name, 0.0) + r.duration_s
        self_[r.name] = self_.get(r.name, 0.0) + selfs[r.span_id]
    ranked = sorted(count, key=lambda name: (-self_[name], name))
    if top is not None:
        ranked = ranked[:top]
    return [Hotspot(name, count[name], total[name], self_[name]) for name in ranked]


def critical_path(
    records: Sequence[SpanRecord],
) -> list[tuple[SpanRecord, float]]:
    """The longest-root, longest-child-at-every-level chain of a trace.

    Returns ``[(record, self_seconds), ...]`` from root to leaf.  Ties
    (identical durations) resolve to the earlier record, keeping the
    path deterministic for a given trace.
    """
    if not records:
        return []
    by_parent = _children_by_parent(records)
    selfs = self_times(records)
    path: list[tuple[SpanRecord, float]] = []
    node = max(by_parent.get(None, []), key=lambda r: r.duration_s, default=None)
    while node is not None:
        path.append((node, selfs[node.span_id]))
        node = max(
            by_parent.get(node.span_id, []),
            key=lambda r: r.duration_s,
            default=None,
        )
    return path


def format_hotspots(records: Sequence[SpanRecord], top: int = 10) -> str:
    """An aligned top-*top* hotspot table (self-time ranked)."""
    spots = hotspots(records, top=top)
    if not spots:
        return "(empty trace)"
    width = max(4, max(len(s.name) for s in spots))
    header = f"{'span':<{width}}  {'count':>7}  {'total':>10}  {'self':>10}"
    lines = [header, "-" * len(header)]
    for s in spots:
        lines.append(
            f"{s.name:<{width}}  {s.count:>7}  {s.total_s:>9.3f}s  {s.self_s:>9.3f}s"
        )
    remaining = len({r.name for r in records}) - len(spots)
    if remaining > 0:
        lines.append(f"... {remaining} more span names below the top {top}")
    return "\n".join(lines)


def format_critical_path(records: Sequence[SpanRecord]) -> str:
    """The critical path as an indented chain with total and self times."""
    path = critical_path(records)
    if not path:
        return "(empty trace)"
    width = max(len("  " * d + r.name) for d, (r, _) in enumerate(path))
    lines = []
    for depth, (r, self_s) in enumerate(path):
        label = "  " * depth + r.name
        lines.append(
            f"{label:<{width}}  {r.duration_s:>9.3f}s total  {self_s:>9.3f}s self"
        )
    return "\n".join(lines)


def folded_stacks(records: Sequence[SpanRecord]) -> dict[str, int]:
    """Semicolon-folded stack lines weighted by self time in microseconds.

    Every span contributes its self time under its full ancestry
    (``study;fits;fits.unit``); same-stack spans (e.g. the hundreds of
    ``placebo`` spans under one unit) accumulate into one line.  Zero
    weights are dropped — flame-graph tools render them as noise.
    """
    by_parent = _children_by_parent(records)
    selfs = self_times(records)
    folded: dict[str, int] = {}

    def walk(parent: int | None, prefix: str) -> None:
        for r in by_parent.get(parent, []):
            stack = f"{prefix};{r.name}" if prefix else r.name
            weight = int(round(selfs[r.span_id] * 1e6))
            if weight > 0:
                folded[stack] = folded.get(stack, 0) + weight
            walk(r.span_id, stack)

    walk(None, "")
    return folded


def export_folded(
    path: str | Path, records: Sequence[SpanRecord] | None = None
) -> int:
    """Write folded stacks (default: the live trace) for flame-graph tools.

    Returns the number of stack lines written.  Lines are sorted so the
    export is byte-stable for a given trace.
    """
    if records is None:
        records = get_tracer().records
    folded = folded_stacks(records)
    with open(path, "w") as f:
        for stack in sorted(folded):
            f.write(f"{stack} {folded[stack]}\n")
    return len(folded)
