"""repro.obs — observability for the study pipeline.

The paper's §4 argues measurements should carry *why they were taken
and under what conditions*; this subsystem applies that standard to
the reproduction's own pipeline:

- :mod:`repro.obs.trace` — hierarchical wall-clock spans
  (``span``/``traced``), JSONL export, and order-stable cross-process
  merge, so a parallel study's trace has the same tree shape as the
  serial one;
- :mod:`repro.obs.metrics` — counters, gauges, timestamped gauge
  series, and fixed-bucket histograms with a Prometheus-style text dump
  and order-deterministic worker-snapshot merging;
- :mod:`repro.obs.capture` — the worker-side shim the executor uses to
  ship spans/metrics/tracebacks home with each result;
- :mod:`repro.obs.report` — aligned text rendering of span trees
  (shared by the CLI and the benchmark harness);
- :mod:`repro.obs.profile` — self-time, hotspot, critical-path, and
  folded-stack (flame graph) analysis over recorded traces;
- :mod:`repro.obs.resources` — a background sampler recording RSS,
  live shared-memory bytes, checkpoint size, executor queue depth, and
  GC pressure into timestamped gauge series;
- :mod:`repro.obs.serve` — the live telemetry endpoint
  (``/metrics``, ``/health``, ``/live``) over a stream's publisher;
- :mod:`repro.obs.logs` — stdlib-logging wiring (`NullHandler` at the
  package root, a ``--log-level`` configurator for the CLI).
"""

from repro.obs.capture import (
    WorkerOutcome,
    WorkerTraceback,
    absorb_outcome,
    run_captured,
)
from repro.obs.logs import configure_logging, install_null_handler
from repro.obs.metrics import (
    COUNT_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    GaugeSeries,
    Histogram,
    MetricsRegistry,
    get_metrics,
    merge_epoch,
    set_metrics,
)
from repro.obs.profile import (
    Hotspot,
    critical_path,
    export_folded,
    folded_stacks,
    format_critical_path,
    format_hotspots,
    hotspots,
    self_times,
)
from repro.obs.report import render_trace, span_counts
from repro.obs.resources import ResourceSample, ResourceSampler, take_resource_sample
from repro.obs.serve import (
    TelemetryMux,
    TelemetryPublisher,
    TelemetryServer,
    fault_load,
)
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    child_seconds,
    current_span_id,
    export_jsonl,
    get_tracer,
    load_jsonl,
    merge_worker_records,
    set_tracing,
    span,
    to_jsonl_lines,
    traced,
    tracing_disabled,
)

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "GaugeSeries",
    "Histogram",
    "Hotspot",
    "MetricsRegistry",
    "ResourceSample",
    "ResourceSampler",
    "SECONDS_BUCKETS",
    "SpanRecord",
    "TelemetryMux",
    "TelemetryPublisher",
    "TelemetryServer",
    "Tracer",
    "WorkerOutcome",
    "WorkerTraceback",
    "absorb_outcome",
    "child_seconds",
    "configure_logging",
    "critical_path",
    "current_span_id",
    "export_folded",
    "export_jsonl",
    "fault_load",
    "folded_stacks",
    "format_critical_path",
    "format_hotspots",
    "get_metrics",
    "get_tracer",
    "hotspots",
    "install_null_handler",
    "load_jsonl",
    "merge_epoch",
    "merge_worker_records",
    "render_trace",
    "run_captured",
    "self_times",
    "set_metrics",
    "set_tracing",
    "span",
    "span_counts",
    "take_resource_sample",
    "to_jsonl_lines",
    "traced",
    "tracing_disabled",
]
