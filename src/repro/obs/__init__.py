"""repro.obs — observability for the study pipeline.

The paper's §4 argues measurements should carry *why they were taken
and under what conditions*; this subsystem applies that standard to
the reproduction's own pipeline:

- :mod:`repro.obs.trace` — hierarchical wall-clock spans
  (``span``/``traced``), JSONL export, and order-stable cross-process
  merge, so a parallel study's trace has the same tree shape as the
  serial one;
- :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms with a Prometheus-style text dump and worker snapshots;
- :mod:`repro.obs.capture` — the worker-side shim the executor uses to
  ship spans/metrics/tracebacks home with each result;
- :mod:`repro.obs.report` — aligned text rendering of span trees
  (shared by the CLI and the benchmark harness);
- :mod:`repro.obs.logs` — stdlib-logging wiring (`NullHandler` at the
  package root, a ``--log-level`` configurator for the CLI).
"""

from repro.obs.capture import (
    WorkerOutcome,
    WorkerTraceback,
    absorb_outcome,
    run_captured,
)
from repro.obs.logs import configure_logging, install_null_handler
from repro.obs.metrics import (
    COUNT_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.report import render_trace, span_counts
from repro.obs.trace import (
    SpanRecord,
    Tracer,
    child_seconds,
    current_span_id,
    export_jsonl,
    get_tracer,
    load_jsonl,
    merge_worker_records,
    set_tracing,
    span,
    to_jsonl_lines,
    traced,
    tracing_disabled,
)

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SECONDS_BUCKETS",
    "SpanRecord",
    "Tracer",
    "WorkerOutcome",
    "WorkerTraceback",
    "absorb_outcome",
    "child_seconds",
    "configure_logging",
    "current_span_id",
    "export_jsonl",
    "get_metrics",
    "get_tracer",
    "install_null_handler",
    "load_jsonl",
    "merge_worker_records",
    "render_trace",
    "run_captured",
    "set_metrics",
    "set_tracing",
    "span",
    "span_counts",
    "to_jsonl_lines",
    "traced",
    "tracing_disabled",
]
