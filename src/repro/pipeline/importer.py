"""Importing real measurement data into the pipeline.

The analysis pipeline runs unchanged on real M-Lab-style exports: this
module validates and normalises a CSV into the measurement-frame schema
that :func:`repro.pipeline.run_ixp_study` consumes, and can derive the
``ixps`` crossing column from raw hop IPs plus a PeeringDB-style prefix
list — the exact evidence chain of the paper.

Expected input columns (M-Lab NDT + traceroute join, simplified):

    asn, city, time_hour, rtt_ms            (required)
    hop_ips                                 ("|"-separated, optional)
    trigger, server_site                    (optional)

Everything else the pipeline needs (``unit``, ``day``, ``ixps``,
``crosses_ixp``) is derived here.
"""

from __future__ import annotations

import logging
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.pipeline.shm import SharedFrameArena

from repro.chaos.runtime import fault_point
from repro.errors import FrameError
from repro.frames.frame import Frame
from repro.frames.io import read_csv_text
from repro.netsim.ids import Prefix
from repro.obs import get_metrics, span

logger = logging.getLogger(__name__)

REQUIRED_COLUMNS = ("asn", "city", "time_hour", "rtt_ms")


def load_ixp_prefixes(records: Mapping[str, Sequence[str]]) -> dict[str, list[Prefix]]:
    """Parse a PeeringDB-style mapping of exchange name to LAN prefixes."""
    out: dict[str, list[Prefix]] = {}
    for name, prefixes in records.items():
        out[name] = [Prefix.parse(p) for p in prefixes]
    return out


def detect_crossings_from_hops(
    hop_ips: str, prefixes: dict[str, list[Prefix]]
) -> list[str]:
    """Exchanges whose LAN contains any of the ``|``-separated hop IPs."""
    seen: list[str] = []
    for ip in str(hop_ips).split("|"):
        ip = ip.strip()
        if not ip:
            continue
        for name, lans in prefixes.items():
            if name in seen:
                continue
            try:
                if any(lan.contains(ip) for lan in lans):
                    seen.append(name)
            except Exception:
                continue  # unparseable hop entries ('*') are skipped
    return seen


def normalise_measurements(
    raw: Frame,
    ixp_prefixes: dict[str, list[Prefix]] | None = None,
) -> Frame:
    """Validate a raw import and derive the pipeline's expected columns.

    Raises :class:`FrameError` with an actionable message when required
    columns are missing or malformed.
    """
    missing = [c for c in REQUIRED_COLUMNS if c not in raw]
    if missing:
        raise FrameError(
            f"measurement import is missing required columns {missing}; "
            f"have {raw.column_names}"
        )
    for col in ("time_hour", "rtt_ms"):
        raw.numeric(col)  # raises when non-numeric

    out = raw.drop_missing(["asn", "city", "time_hour", "rtt_ms"])
    if out.num_rows == 0:
        raise FrameError("no complete measurement rows after dropping missing")

    out = out.derive("unit", lambda r: f"AS{int(r['asn'])}/{r['city']}")
    out = out.derive("day", lambda r: int(float(r["time_hour"]) // 24))

    if "ixps" not in out:
        if ixp_prefixes and "hop_ips" in out:
            out = out.derive(
                "ixps",
                lambda r: ",".join(
                    detect_crossings_from_hops(r.get("hop_ips") or "", ixp_prefixes)
                ),
            )
        else:
            out = out.with_column("ixps", [""] * out.num_rows)
    out = out.derive("crosses_ixp", lambda r: bool(r["ixps"]))

    if "trigger" not in out:
        out = out.with_column("trigger", ["unknown"] * out.num_rows)
    if "server_site" not in out:
        out = out.with_column("server_site", ["default"] * out.num_rows)
    if "as_path" not in out:
        out = out.with_column("as_path", [""] * out.num_rows)
    return out


def read_measurement_csv(
    path: str | Path, arena: "SharedFrameArena | None" = None
) -> Frame:
    """Read a measurement CSV, surviving a truncated final line.

    A crashed or killed writer leaves its last row half-written (no
    trailing newline).  A truncated numeric cell can still parse —
    ``123.4`` cut to ``123`` is a silently wrong measurement — so any
    unterminated final line is dropped with a warning rather than
    trusted.  The raw text also passes through the ``"import.read"``
    fault point, where a chaos plan may truncate or garble it.
    *arena* seals the parsed float columns straight into shared-memory
    blocks (zero-copy hand-off to a pooled study).
    """
    with open(path, newline="") as f:
        text = f.read()
    text = fault_point("import.read", key=str(path), value=text)
    if text and not text.endswith("\n"):
        head, _, tail = text.rpartition("\n")
        logger.warning(
            "%s: dropping truncated final CSV line (%d bytes): %.60s",
            path, len(tail), tail,
        )
        get_metrics().counter(
            "import_rows_dropped_total",
            "truncated trailing CSV lines dropped on import",
        ).inc()
        text = head + "\n" if head else ""
    alloc = arena.column_alloc("import") if arena is not None else None
    return read_csv_text(text, alloc=alloc)


def import_csv(
    path: str | Path,
    ixp_prefixes: dict[str, list[Prefix]] | None = None,
    arena: "SharedFrameArena | None" = None,
) -> Frame:
    """Read and normalise a measurement CSV in one call.

    *arena* passes through to :func:`read_measurement_csv`: the raw
    frame's float columns are sealed into shared-memory blocks as they
    parse.
    """
    with span("import.csv", path=str(path)) as sp:
        frame = normalise_measurements(
            read_measurement_csv(path, arena=arena), ixp_prefixes
        )
        sp.set(rows=frame.num_rows)
    get_metrics().counter(
        "measurements_imported_total", "measurement rows imported from CSV"
    ).inc(frame.num_rows)
    logger.info("imported %d measurement rows from %s", frame.num_rows, path)
    return frame
