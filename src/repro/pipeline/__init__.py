"""Analysis pipeline: raw measurements -> the paper's Table 1.

- :func:`crossing_mask` / :func:`assign_treatment` — IXP-crossing
  detection from traceroute evidence and first-crossing treatment
  timing;
- :func:`daily_median_rtt` / :func:`rtt_panel` — ⟨ASN, city⟩ daily
  median-RTT panels;
- :func:`run_ixp_study` — the end-to-end Table-1 runner with donor
  screening, robust synthetic control, and placebo inference;
- :func:`get_executor` / :func:`parallel_map` — serial and
  process-pool execution backends behind ``n_jobs``, with
  :class:`RetryPolicy` fault tolerance (transient-error retries,
  per-task deadlines, broken-pool recovery);
- :class:`StudyCheckpoint` / :func:`read_jsonl_tolerant` — the
  checkpoint/resume journal behind ``--checkpoint``/``--resume``.
"""

from repro.pipeline.aggregate import (
    completeness,
    daily_median_rtt,
    measurement_volume,
    rtt_panel,
)
from repro.pipeline.importer import (
    detect_crossings_from_hops,
    import_csv,
    load_ixp_prefixes,
    normalise_measurements,
    read_measurement_csv,
)
from repro.pipeline.checkpoint import StudyCheckpoint, read_jsonl_tolerant
from repro.pipeline.crossing import (
    TreatmentAssignment,
    assign_treatment,
    crossing_mask,
)
from repro.pipeline.executor import (
    ProcessPoolBackend,
    RetryPolicy,
    SerialExecutor,
    get_executor,
    parallel_map,
    resolve_n_jobs,
)
from repro.pipeline.study import (
    StudyResult,
    StudyRow,
    StudyTimings,
    parse_unit_label,
    run_ixp_study,
)

__all__ = [
    "ProcessPoolBackend",
    "RetryPolicy",
    "SerialExecutor",
    "StudyCheckpoint",
    "StudyResult",
    "StudyRow",
    "StudyTimings",
    "TreatmentAssignment",
    "assign_treatment",
    "completeness",
    "crossing_mask",
    "daily_median_rtt",
    "detect_crossings_from_hops",
    "get_executor",
    "import_csv",
    "load_ixp_prefixes",
    "measurement_volume",
    "normalise_measurements",
    "parallel_map",
    "parse_unit_label",
    "read_jsonl_tolerant",
    "read_measurement_csv",
    "resolve_n_jobs",
    "rtt_panel",
    "run_ixp_study",
]
