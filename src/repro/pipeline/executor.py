"""Execution backends for the study pipeline.

The Table-1 study is embarrassingly parallel at two grains: treated
units are independent of each other, and within one unit every placebo
refit is independent of the rest.  This module gives both loops a
single, order-stable fan-out primitive:

- :class:`SerialExecutor` — a plain in-process loop (the default, and
  the reference semantics every other backend must reproduce);
- :class:`ProcessPoolBackend` — a ``concurrent.futures`` process pool
  for CPU-bound fits (SVDs and NNLS release no GIL worth sharing).

Both backends expose ``map(fn, items)`` returning results **in input
order**, so a study computed with ``n_jobs=8`` is numerically identical
to the serial run — the work is the same pure function applied to the
same arguments; only the scheduling changes.

Fault tolerance
---------------
Both backends accept a :class:`RetryPolicy`.  A task whose failure is
*transient* (:func:`repro.errors.is_transient`: injected faults, blown
deadlines, dead workers) is re-run up to ``max_attempts`` times with
exponential backoff and deterministic jitter; fatal errors — domain
errors like :class:`~repro.errors.PipelineError` and plain bugs — raise
immediately on the first attempt.  The process pool additionally
survives ``BrokenProcessPool`` (a worker OOM-killed or segfaulted): it
rebuilds the pool and requeues only the unfinished tasks, keeping
results order-stable; without retries (or once they are exhausted) the
breakage surfaces as an :class:`~repro.errors.ExecutionError` naming
the backend and the task index.  Per-task deadlines
(``RetryPolicy.timeout``) treat an overrunning task as transiently
failed and resubmit it.

Both backends are also observability-transparent: the serial loop runs
inside the caller's trace context naturally, and the process pool wraps
every task in :func:`repro.obs.capture.run_captured`, shipping each
worker's spans, metrics, and chaos fault events home with its result
and merging them — in task order, failed attempts included — under the
caller's current span.  Worker exceptions re-raise in the parent with
the worker-side traceback chained on as a
:class:`~repro.obs.capture.WorkerTraceback` cause.  The active
:class:`~repro.chaos.plan.FaultPlan`, if any, ships to workers with
each task so fault injection follows the work.

``n_jobs`` follows the scikit-learn convention: ``1`` (or ``None``)
means serial, ``-1`` means one worker per CPU, and any other positive
integer is an explicit worker count.
"""

from __future__ import annotations

import logging
import os
import time
import traceback
import weakref
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from typing import Any, TypeVar

from repro.chaos.plan import hash01
from repro.chaos.runtime import current_attempt, get_active_plan, task_attempt
from repro.errors import ExecutionError, TaskTimeoutError, is_transient
from repro.obs.capture import (
    WorkerOutcome,
    absorb_outcome,
    merge_outcome_observability,
    run_captured,
)
from repro.obs.metrics import get_metrics, merge_epoch

logger = logging.getLogger(__name__)

_T = TypeVar("_T")
_R = TypeVar("_R")

OnResult = Callable[[int, Any], None]


def _run_captured_payload(payload: tuple) -> WorkerOutcome:
    """Module-level worker entry point (picklable): unpack and capture."""
    fn, item, plan, attempt = payload
    return run_captured(fn, item, plan=plan, attempt=attempt)


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` means ``os.cpu_count()``;
    other positive integers pass through.  Anything else is rejected
    (``0`` is ambiguous and ``-2`` etc. are likely typos).
    """
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ExecutionError(
            f"n_jobs must be a positive integer or -1 (all cores), got {n_jobs}"
        )
    return int(n_jobs)


@dataclass(frozen=True)
class RetryPolicy:
    """How a backend retries transiently failed tasks.

    Attributes
    ----------
    max_attempts:
        Total tries per task (1 = no retries).
    base_delay, max_delay:
        Exponential backoff: attempt *k* waits
        ``min(base_delay * 2**k, max_delay)`` seconds before the retry.
    jitter:
        Fractional jitter on top of the backoff.  The jitter draw is a
        deterministic hash of ``(task_index, attempt)``, so a retried
        run waits the same schedule every time — reproducibility
        extends to the recovery path.
    timeout:
        Per-task deadline in seconds (process pool only).  A task still
        running at its deadline is treated as transiently failed and
        resubmitted; ``None`` disables deadlines.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.1
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExecutionError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ExecutionError("retry delays and jitter must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ExecutionError(f"timeout must be positive, got {self.timeout}")

    def delay(self, attempt: int, task_index: int = 0) -> float:
        """Seconds to wait before re-running *task_index*'s retry *attempt*."""
        base = min(self.base_delay * (2**attempt), self.max_delay)
        return base * (1.0 + self.jitter * hash01("retry", task_index, attempt))


def _count_retry() -> None:
    get_metrics().counter(
        "task_retries_total", "transiently failed tasks re-run by a backend"
    ).inc()


#: Live process-pool backends, for the resource sampler's executor gauges.
#: A WeakSet so a backend that is dropped without ``close()`` (tests,
#: exceptions) never pins itself in memory or reports phantom workers.
_LIVE_BACKENDS: "weakref.WeakSet[ProcessPoolBackend]" = weakref.WeakSet()


def live_executor_stats() -> dict[str, int]:
    """Aggregate queue depth and worker liveness across live pool backends.

    ``queue_depth`` counts tasks submitted but not yet settled (retries
    requeue, so a task mid-retry still counts); ``workers_alive`` counts
    spawned worker processes currently alive.  Serial execution reports
    zeros — there is no queue and no workers to watch.
    """
    queue_depth = 0
    workers_alive = 0
    for backend in list(_LIVE_BACKENDS):
        queue_depth += backend.pending_tasks
        workers_alive += backend.alive_workers()
    return {"queue_depth": queue_depth, "workers_alive": workers_alive}


class SerialExecutor:
    """The reference backend: an ordinary loop in the calling process.

    With a :class:`RetryPolicy`, transient failures re-run in place
    (same attempt semantics as the pool, including the chaos attempt
    number); fatal errors propagate immediately.
    """

    n_jobs = 1

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.retry = retry
        self._sleep = sleep

    def map(
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        on_result: OnResult | None = None,
    ) -> list[_R]:
        """Apply *fn* to every item, in order.

        *on_result* is invoked as ``on_result(index, value)`` the moment
        each task's final value is known (checkpoint appends hook here).
        """
        results: list[_R] = []
        for index, item in enumerate(items):
            value = self._run_one(fn, item, index)
            if on_result is not None:
                on_result(index, value)
            results.append(value)
        return results

    def _run_one(self, fn: Callable[[_T], _R], item: _T, index: int) -> _R:
        max_attempts = self.retry.max_attempts if self.retry else 1
        # Attempt numbers compose across nested fan-outs: a unit task
        # retried at attempt 1 runs its inner placebo loop at attempt
        # 1 too, so a fire_attempts=1 fault anywhere under the task
        # stands down on the retry.
        base_attempt = current_attempt()
        for attempt in range(max_attempts):
            with task_attempt(base_attempt + attempt):
                try:
                    return fn(item)
                except Exception as exc:
                    if not is_transient(exc) or attempt + 1 >= max_attempts:
                        raise
                    _count_retry()
                    assert self.retry is not None
                    pause = self.retry.delay(attempt, index)
                    logger.warning(
                        "task %d failed transiently (%s); retry %d/%d in %.3fs",
                        index, exc, attempt + 1, max_attempts - 1, pause,
                    )
                    self._sleep(pause)
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


class ProcessPoolBackend:
    """Fan work out over a process pool, preserving input order.

    Tasks and results cross process boundaries by pickling, so mapped
    functions must be module-level callables and their arguments
    picklable (the pipeline's task dataclasses and numpy arrays are).
    Worker exceptions propagate to the caller on result collection.

    Each task is submitted as its own future, which is what makes the
    recovery paths possible: a transiently failed or timed-out task is
    resubmitted alone, and when a worker death breaks the pool the
    backend rebuilds it and requeues exactly the unfinished tasks —
    finished results are never recomputed and output order never
    changes.
    """

    def __init__(
        self,
        n_jobs: int,
        retry: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ) -> None:
        if n_jobs < 2:
            raise ExecutionError(
                f"ProcessPoolBackend needs n_jobs >= 2, got {n_jobs}"
            )
        self.n_jobs = n_jobs
        self.retry = retry
        self._sleep = sleep
        self._initializer = initializer
        self._initargs = initargs
        self._pool = self._make_pool()
        #: Tasks submitted to this backend and not yet settled (updated
        #: by the in-flight ``_MapState``; read by the resource sampler).
        self.pending_tasks = 0
        _LIVE_BACKENDS.add(self)

    def alive_workers(self) -> int:
        """How many of this pool's spawned worker processes are alive.

        Workers spawn lazily, so this reads 0 before the first task and
        can dip mid-run when chaos kills a worker — exactly the signal
        the sampler wants.
        """
        processes = getattr(self._pool, "_processes", None) or {}
        return sum(1 for p in list(processes.values()) if p.is_alive())

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.n_jobs,
            initializer=self._initializer,
            initargs=self._initargs,
        )

    def map(
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        on_result: OnResult | None = None,
    ) -> list[_R]:
        """Apply *fn* to every item across the pool; results in input order.

        Every task runs under worker-side observability capture; spans,
        metrics, and fault events merge back here, in input order (the
        failed attempts of retried tasks included), so the parent's
        trace matches what a serial run would have recorded.  A task
        that exhausts its attempts re-raises its last exception with
        the worker traceback chained as the cause.  *on_result* fires
        as each task's final value lands (completion order).
        """
        work: Sequence[_T] = list(items)
        if not work:
            return []
        logger.debug("fanning %d tasks over %d workers", len(work), self.n_jobs)
        state = _MapState(self, fn, work, on_result)
        state.run()
        return state.collect()

    def _rebuild_pool(self) -> None:
        """Replace a broken pool with a fresh one (workers respawn lazily)."""
        get_metrics().counter(
            "pool_rebuilds_total", "process pools rebuilt after a worker death"
        ).inc()
        logger.warning("process pool broke (worker died); rebuilding")
        self._pool.shutdown(wait=False, cancel_futures=True)
        # The replacement pool keeps the initializer, so respawned
        # workers re-attach any shared-memory panel before taking work.
        self._pool = self._make_pool()

    def close(self) -> None:
        """Shut the pool down and reclaim the worker processes."""
        self._pool.shutdown(wait=True)
        self.pending_tasks = 0
        _LIVE_BACKENDS.discard(self)

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.close()
        return False


class _MapState:
    """One ``ProcessPoolBackend.map`` call's bookkeeping.

    Tracks, per task index, every attempt's :class:`WorkerOutcome` (for
    order-stable observability merging) and the final outcome; futures
    map back to indices so completions, timeouts, and pool breakage can
    all requeue precisely the tasks that still owe a result.
    """

    _WAKE_S = 0.05  # poll interval while deadlines are armed

    def __init__(
        self,
        backend: ProcessPoolBackend,
        fn: Callable,
        work: Sequence,
        on_result: OnResult | None,
    ) -> None:
        self.backend = backend
        self.fn = fn
        self.work = work
        self.on_result = on_result
        self.policy = backend.retry
        self.max_attempts = self.policy.max_attempts if self.policy else 1
        self.timeout = self.policy.timeout if self.policy else None
        self.plan = get_active_plan()
        self.base_attempt = current_attempt()  # compose under nesting
        self.attempts = [0] * len(work)
        self.buffers: list[list[WorkerOutcome]] = [[] for _ in work]
        self.final: dict[int, WorkerOutcome] = {}
        self.index_of: dict[Future, int] = {}
        self.deadline: dict[Future, float] = {}

    def run(self) -> None:
        for index in range(len(self.work)):
            self._submit(index)
        while self.index_of:
            wait_s = self._WAKE_S if self.timeout is not None else None
            done, _ = wait(
                set(self.index_of), timeout=wait_s, return_when=FIRST_COMPLETED
            )
            broken: list[int] = []
            for future in done:
                index = self.index_of.pop(future)
                self.deadline.pop(future, None)
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    broken.append(index)
                    continue
                except Exception as exc:  # pool-side submission failures
                    self._settle(
                        index,
                        WorkerOutcome(
                            exception=exc, traceback_text=traceback.format_exc()
                        ),
                    )
                    continue
                self._settle(index, outcome)
            if broken:
                self._handle_breakage(broken)
            if self.timeout is not None:
                self._expire_overdue()
            self.backend.pending_tasks = len(self.index_of)
        self.backend.pending_tasks = 0

    def _submit(self, index: int) -> None:
        payload = (
            self.fn,
            self.work[index],
            self.plan,
            self.base_attempt + self.attempts[index],
        )
        future = self.backend._pool.submit(_run_captured_payload, payload)
        self.index_of[future] = index
        self.backend.pending_tasks = len(self.index_of)
        if self.timeout is not None:
            self.deadline[future] = time.monotonic() + self.timeout

    def _settle(self, index: int, outcome: WorkerOutcome) -> None:
        """Record one attempt's outcome: retry it or make it final."""
        self.buffers[index].append(outcome)
        exc = outcome.exception
        if (
            exc is not None
            and is_transient(exc)
            and self.attempts[index] + 1 < self.max_attempts
        ):
            attempt = self.attempts[index]
            self.attempts[index] += 1
            _count_retry()
            if self.policy is not None:
                pause = self.policy.delay(attempt, index)
                logger.warning(
                    "task %d failed transiently (%s); retry %d/%d in %.3fs",
                    index, exc, attempt + 1, self.max_attempts - 1, pause,
                )
                self.backend._sleep(pause)
            self._submit(index)
            return
        self.final[index] = outcome
        if self.on_result is not None and outcome.exception is None:
            self.on_result(index, outcome.value)

    def _broken_outcome(self, index: int, exc: BaseException) -> WorkerOutcome:
        return WorkerOutcome(
            exception=exc,
            traceback_text=(
                f"worker process died while running task {index} "
                f"(BrokenProcessPool: {exc})"
            ),
        )

    def _handle_breakage(self, broken: Sequence[int]) -> None:
        """A worker died: rebuild the pool, requeue every in-flight task.

        Which task actually killed the worker is unknowable from the
        parent, so every in-flight task is charged one transient
        failure — with retries on they all requeue onto the fresh pool
        (which must exist before :meth:`_settle` resubmits anything);
        without, the first unfinished index surfaces the breakage.
        """
        pending = sorted(self.index_of.values())
        self.index_of.clear()
        self.deadline.clear()
        self.backend._rebuild_pool()
        for index in list(broken) + pending:
            self._settle(
                index,
                self._broken_outcome(
                    index, BrokenProcessPool("worker process died mid-task")
                ),
            )

    def _expire_overdue(self) -> None:
        """Treat tasks past their deadline as transiently failed."""
        now = time.monotonic()
        overdue = [f for f, d in self.deadline.items() if d <= now]
        for future in overdue:
            index = self.index_of.pop(future)
            del self.deadline[future]
            future.cancel()  # a no-op if already running; the result is ignored
            get_metrics().counter(
                "tasks_timed_out_total", "tasks that overran their deadline"
            ).inc()
            assert self.timeout is not None
            self._settle(
                index,
                WorkerOutcome(
                    exception=TaskTimeoutError(
                        f"task {index} exceeded its {self.timeout:g}s deadline"
                    )
                ),
            )

    def collect(self) -> list:
        """Merge observability and assemble results in input order.

        Every merge carries ``task_order=(epoch, index)`` — one merge
        epoch per map call — so the registry's gauge resolution is the
        task-order-maximal write regardless of completion order, and a
        second map's task 0 still outranks the first map's last task.
        Failed attempts of a retried task share the final attempt's
        order; merging them first keeps the final value on top.
        """
        epoch = merge_epoch()
        results: list = []
        for index in range(len(self.work)):
            order = (epoch, index)
            attempts = self.buffers[index]
            for earlier in attempts[:-1]:
                merge_outcome_observability(earlier, task_order=order)
            last = attempts[-1]
            exc = last.exception
            if isinstance(exc, BrokenProcessPool):
                merge_outcome_observability(last, task_order=order)
                raise ExecutionError(
                    f"ProcessPoolBackend: worker process died while running "
                    f"task {index} of {len(self.work)} "
                    f"(attempt {self.attempts[index] + 1}/{self.max_attempts})"
                ) from exc
            if exc is not None and not last.traceback_text:
                # Parent-side synthetic failures (timeouts) have no
                # worker traceback to chain.
                merge_outcome_observability(last, task_order=order)
                raise exc
            if exc is not None:
                logger.error(
                    "worker task %d failed: %r\n%s",
                    index, exc, last.traceback_text,
                )
            results.append(absorb_outcome(last, task_order=order))
        return results


Executor = SerialExecutor | ProcessPoolBackend


def get_executor(
    n_jobs: int | None = 1,
    retry: RetryPolicy | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> Executor:
    """The backend for an ``n_jobs`` request (use as a context manager).

    *initializer*/*initargs* run once per worker process (and again in
    every worker of a rebuilt pool); the serial backend ignores them —
    serial callers already share the parent's address space.
    """
    resolved = resolve_n_jobs(n_jobs)
    if resolved == 1:
        return SerialExecutor(retry=retry)
    return ProcessPoolBackend(
        resolved, retry=retry, initializer=initializer, initargs=initargs
    )


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    n_jobs: int | None = 1,
    retry: RetryPolicy | None = None,
) -> list[_R]:
    """One-shot order-stable map under the requested backend."""
    with get_executor(n_jobs, retry=retry) as executor:
        return executor.map(fn, items)
