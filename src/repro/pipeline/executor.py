"""Execution backends for the study pipeline.

The Table-1 study is embarrassingly parallel at two grains: treated
units are independent of each other, and within one unit every placebo
refit is independent of the rest.  This module gives both loops a
single, order-stable fan-out primitive:

- :class:`SerialExecutor` — a plain in-process loop (the default, and
  the reference semantics every other backend must reproduce);
- :class:`ProcessPoolBackend` — a ``concurrent.futures`` process pool
  for CPU-bound fits (SVDs and NNLS release no GIL worth sharing).

Both backends expose ``map(fn, items)`` returning results **in input
order**, so a study computed with ``n_jobs=8`` is numerically identical
to the serial run — the work is the same pure function applied to the
same arguments; only the scheduling changes.

Both backends are also observability-transparent: the serial loop runs
inside the caller's trace context naturally, and the process pool wraps
every task in :func:`repro.obs.capture.run_captured`, shipping each
worker's spans and metrics home with its result and merging them — in
task order — under the caller's current span.  Worker exceptions
re-raise in the parent with the worker-side traceback chained on as a
:class:`~repro.obs.capture.WorkerTraceback` cause.

``n_jobs`` follows the scikit-learn convention: ``1`` (or ``None``)
means serial, ``-1`` means one worker per CPU, and any other positive
integer is an explicit worker count.
"""

from __future__ import annotations

import logging
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any, TypeVar

from repro.errors import ExecutionError
from repro.obs.capture import WorkerOutcome, absorb_outcome, run_captured

logger = logging.getLogger(__name__)

_T = TypeVar("_T")
_R = TypeVar("_R")


def _run_captured_payload(payload: tuple) -> WorkerOutcome:
    """Module-level worker entry point (picklable): unpack and capture."""
    fn, item = payload
    return run_captured(fn, item)


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` means ``os.cpu_count()``;
    other positive integers pass through.  Anything else is rejected
    (``0`` is ambiguous and ``-2`` etc. are likely typos).
    """
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ExecutionError(
            f"n_jobs must be a positive integer or -1 (all cores), got {n_jobs}"
        )
    return int(n_jobs)


class SerialExecutor:
    """The reference backend: an ordinary loop in the calling process."""

    n_jobs = 1

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        """Apply *fn* to every item, in order."""
        return [fn(item) for item in items]

    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


class ProcessPoolBackend:
    """Fan work out over a process pool, preserving input order.

    Tasks and results cross process boundaries by pickling, so mapped
    functions must be module-level callables and their arguments
    picklable (the pipeline's task dataclasses and numpy arrays are).
    Worker exceptions propagate to the caller on result collection.
    """

    def __init__(self, n_jobs: int) -> None:
        if n_jobs < 2:
            raise ExecutionError(
                f"ProcessPoolBackend needs n_jobs >= 2, got {n_jobs}"
            )
        self.n_jobs = n_jobs
        self._pool = ProcessPoolExecutor(max_workers=n_jobs)

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        """Apply *fn* to every item across the pool; results in input order.

        Every task runs under worker-side observability capture; spans
        and metrics merge back here, in input order, so the parent's
        trace tree matches what a serial run would have recorded.  A
        failing task re-raises its exception with the worker traceback
        chained as the cause.
        """
        work: Sequence[_T] = list(items)
        if not work:
            return []
        logger.debug("fanning %d tasks over %d workers", len(work), self.n_jobs)
        # A few chunks per worker balances dispatch overhead against
        # stragglers (placebo refits have uneven donor-pool shapes).
        chunksize = max(1, len(work) // (self.n_jobs * 4))
        outcomes = list(
            self._pool.map(
                _run_captured_payload,
                [(fn, item) for item in work],
                chunksize=chunksize,
            )
        )
        results: list[_R] = []
        for outcome in outcomes:
            if outcome.exception is not None:
                logger.error(
                    "worker task failed: %r\n%s",
                    outcome.exception,
                    outcome.traceback_text,
                )
            results.append(absorb_outcome(outcome))
        return results

    def close(self) -> None:
        """Shut the pool down and reclaim the worker processes."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ProcessPoolBackend":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.close()
        return False


Executor = SerialExecutor | ProcessPoolBackend


def get_executor(n_jobs: int | None = 1) -> Executor:
    """The backend for an ``n_jobs`` request (use as a context manager)."""
    resolved = resolve_n_jobs(n_jobs)
    if resolved == 1:
        return SerialExecutor()
    return ProcessPoolBackend(resolved)


def parallel_map(
    fn: Callable[[_T], _R], items: Iterable[_T], n_jobs: int | None = 1
) -> list[_R]:
    """One-shot order-stable map under the requested backend."""
    with get_executor(n_jobs) as executor:
        return executor.map(fn, items)
