"""The end-to-end Table-1 runner.

``run_ixp_study`` goes from a raw measurement frame to the paper's
table: detect which ⟨ASN, city⟩ units began crossing the exchange,
build the daily median-RTT panel, fit a robust synthetic control per
treated unit against a never-crossing donor pool, and report the
estimated RTT change with RMSE-ratio and placebo-p diagnostics.

Treated units are analysed independently, so the per-unit work (donor
screening, the robust fit, and every placebo refit) fans out over the
executor backends in :mod:`repro.pipeline.executor`; ``n_jobs=1`` is
the serial reference and any other worker count produces a numerically
identical :class:`StudyResult`.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.pipeline.checkpoint import StudyCheckpoint

from repro.chaos.runtime import fault_point
from repro.errors import DonorPoolError, EstimationError, PipelineError
from repro.frames.frame import Frame
from repro.obs import child_seconds, get_metrics, span
from repro.obs.metrics import COUNT_BUCKETS
from repro.pipeline.aggregate import rtt_panel
from repro.pipeline.crossing import TreatmentAssignment, assign_treatment
from repro.pipeline.executor import RetryPolicy, get_executor, resolve_n_jobs
from repro.pipeline.prefactor import (
    PrefactorSlabs,
    UnitPrefactor,
    clear_active_prefactors,
    get_prefactor,
    prefactor_unit_plan,
    publish_prefactors,
    set_active_prefactors,
)
from repro.pipeline.shm import (
    SharedFrameArena,
    SharedPanelOwner,
    SharedPanelRef,
    attach_shared_panel,
)
from repro.synthcontrol.donor import Panel, select_donors
from repro.synthcontrol.placebo import placebo_test
from repro.synthcontrol.robust import DenoiseCache

logger = logging.getLogger(__name__)


def parse_unit_label(label: object) -> tuple[int, str]:
    """Split an ``"AS<asn>/<city>"`` unit label into its parts.

    Raises :class:`PipelineError` naming the offending label when it
    does not match the expected shape — a malformed label would
    otherwise surface much later as a bare ``ValueError``/``IndexError``
    from :attr:`StudyRow.asn`.
    """
    text = str(label)
    head, sep, city = text.partition("/")
    if not sep or not city or not head.startswith("AS"):
        raise PipelineError(
            f"malformed unit label {text!r}: expected 'AS<asn>/<city>'"
        )
    try:
        asn = int(head[2:])
    except ValueError:
        raise PipelineError(
            f"malformed unit label {text!r}: {head[2:]!r} is not an ASN"
        ) from None
    return asn, city


@dataclass(frozen=True)
class StudyRow:
    """One Table-1 row: a treated unit's estimated RTT change.

    Attributes
    ----------
    unit:
        ``"AS<asn>/<city>"`` label.
    rtt_delta_ms:
        Mean post-treatment gap (observed minus synthetic): the
        estimated causal RTT change.
    rmse_ratio:
        Post/pre fit-error ratio.
    p_value:
        Placebo-based p.
    pre_periods, post_periods, n_donors:
        Analysis-shape diagnostics.
    n_placebos, n_placebos_skipped:
        How many placebo refits entered the p-value's denominator and
        how many failed (and were excluded) — a p computed over few
        surviving placebos deserves suspicion.
    """

    unit: str
    rtt_delta_ms: float
    rmse_ratio: float
    p_value: float
    pre_periods: int
    post_periods: int
    n_donors: int
    n_placebos: int = 0
    n_placebos_skipped: int = 0

    @property
    def asn(self) -> int:
        """ASN parsed back out of the unit label."""
        return parse_unit_label(self.unit)[0]

    @property
    def city(self) -> str:
        """City parsed back out of the unit label."""
        return parse_unit_label(self.unit)[1]


@dataclass(frozen=True)
class StudyTimings:
    """Wall-clock seconds per study stage, for perf observability.

    Re-derived from the study's trace spans (``assignment``, ``panel``,
    ``fits`` under the ``study`` root) when tracing is on, with plain
    perf-counter segments as the fallback — the API is the same either
    way.  ``generation_s`` is ``None`` when the measurements came from
    disk rather than the simulator.  Timings never participate in
    result equality — two runs of the same study are the *same result*
    however long they took.
    """

    assignment_s: float
    panel_s: float
    fits_s: float
    generation_s: float | None = None

    @property
    def total_s(self) -> float:
        """Sum of all recorded stages."""
        return (
            (self.generation_s or 0.0)
            + self.assignment_s
            + self.panel_s
            + self.fits_s
        )

    def format(self) -> str:
        """One line per stage, aligned, slowest readable at a glance."""
        stages = []
        if self.generation_s is not None:
            stages.append(("generation", self.generation_s))
        stages.extend(
            [
                ("assignment", self.assignment_s),
                ("panel", self.panel_s),
                ("fits", self.fits_s),
                ("total", self.total_s),
            ]
        )
        return "\n".join(f"{name:<12} {seconds:>8.3f}s" for name, seconds in stages)


@dataclass(frozen=True)
class StudyResult:
    """The full study output: one row per treated unit plus context."""

    rows: tuple[StudyRow, ...]
    assignment: TreatmentAssignment
    skipped: tuple[tuple[str, str], ...]  # (unit, reason)
    timings: StudyTimings | None = field(default=None, compare=False)

    def to_frame(self) -> Frame:
        """Rows as a frame (for CSV export or further analysis)."""
        return Frame.from_records(
            [
                {
                    "unit": r.unit,
                    "asn": r.asn,
                    "city": r.city,
                    "rtt_delta_ms": r.rtt_delta_ms,
                    "rmse_ratio": r.rmse_ratio,
                    "p_value": r.p_value,
                    "pre_periods": r.pre_periods,
                    "post_periods": r.post_periods,
                    "n_donors": r.n_donors,
                    "n_placebos": r.n_placebos,
                    "n_placebos_skipped": r.n_placebos_skipped,
                }
                for r in self.rows
            ],
            columns=[
                "unit",
                "asn",
                "city",
                "rtt_delta_ms",
                "rmse_ratio",
                "p_value",
                "pre_periods",
                "post_periods",
                "n_donors",
                "n_placebos",
                "n_placebos_skipped",
            ],
        )

    def format_table(self) -> str:
        """Render in the paper's Table-1 layout."""
        lines = [
            f"{'ASN / City':<28}  {'RTT Δ (ms)':>10}  {'RMSE Ratio':>10}  {'p':>6}",
            "-" * 60,
        ]
        for r in self.rows:
            label = f"{r.asn} / {r.city}"
            lines.append(
                f"{label:<28}  {r.rtt_delta_ms:>+10.2f}  {r.rmse_ratio:>10.2f}  {r.p_value:>6.3f}"
            )
        return "\n".join(lines)

    @property
    def consistent_effect(self) -> bool:
        """The paper's headline check: is the RTT drop consistent & robust?

        True only if *every* unit shows a negative delta significant at
        10% — which Table 1 (and this reproduction) shows is not the
        case.  A study with no analysed rows cannot confirm anything,
        so empty rows are False (not vacuously True).
        """
        if not self.rows:
            return False
        return all(r.rtt_delta_ms < 0 and r.p_value < 0.10 for r in self.rows)


@dataclass(frozen=True)
class _UnitTask:
    """One treated unit's fit work, picklable for process-pool workers.

    ``panel`` is a :class:`SharedPanelRef` when a process pool runs the
    task — the pickled payload is then the unit label, a few scalars,
    and a block name, not the panel matrix — and an in-process
    :class:`Panel` on the serial path.  ``fit_kwargs`` is a tuple of
    sorted items (not a dict) so this frozen dataclass is actually
    hashable and workers cannot mutate shared fit parameters.
    """

    unit: str
    pre_periods: int
    post_periods: int
    panel: Panel | SharedPanelRef
    excluded: tuple[str, ...]
    max_donor_missing: float
    method: str
    max_placebos: int | None
    fit_kwargs: tuple[tuple[str, object], ...]


def _analyse_unit(task: _UnitTask) -> StudyRow | tuple[str, str]:
    """Fit one treated unit: a :class:`StudyRow`, or ``(unit, reason)``."""
    metrics = get_metrics()
    panel = (
        task.panel.load() if isinstance(task.panel, SharedPanelRef) else task.panel
    )
    with span("fits.unit", unit=task.unit) as sp:
        fault_point("fits.unit", key=task.unit)
        try:
            donors = select_donors(
                panel,
                task.unit,
                excluded=task.excluded,
                pre_periods=task.pre_periods,
                max_missing=task.max_donor_missing,
            )
            donor_matrix = np.column_stack([panel.series(d) for d in donors])
            # A prefactor computed by the planning pass supplies this
            # unit's SVD work ready-made (bit-identical to computing it
            # here); it is only trusted when its donor selection matches
            # ours exactly — any drift means the panel changed and the
            # fit silently recomputes.
            cache = loo = None
            pf = get_prefactor(task.unit) if task.method == "robust" else None
            if pf is not None and pf.donors == tuple(donors):
                cache = DenoiseCache()
                cache.seed(donor_matrix, pf.fact)
                loo = pf.loo
            summary = placebo_test(
                panel.series(task.unit),
                donor_matrix,
                task.pre_periods,
                treated_name=task.unit,
                donor_names=donors,
                method=task.method,
                max_placebos=task.max_placebos,
                cache=cache,
                loo=loo,
                **dict(task.fit_kwargs),
            )
        except (DonorPoolError, EstimationError) as exc:
            logger.warning("skipping unit %s: %s", task.unit, exc)
            sp.set(status="skipped", reason=str(exc))
            metrics.counter(
                "units_skipped_total", "treated units the study could not fit"
            ).inc()
            return (task.unit, str(exc))
        sp.set(
            status="ok",
            n_donors=len(donors),
            n_placebos=len(summary.placebo_rmse_ratios),
        )
        metrics.counter(
            "units_analysed_total", "treated units with a fitted StudyRow"
        ).inc()
        metrics.histogram(
            "donor_pool_size", COUNT_BUCKETS, "donors surviving the screen, per unit"
        ).observe(len(donors))
        return StudyRow(
            unit=task.unit,
            rtt_delta_ms=summary.fit.effect,
            rmse_ratio=summary.fit.rmse_ratio,
            p_value=summary.p_value,
            pre_periods=task.pre_periods,
            post_periods=task.post_periods,
            n_donors=len(donors),
            n_placebos=len(summary.placebo_rmse_ratios),
            n_placebos_skipped=summary.n_placebos_skipped,
        )


def prepare_unit_plan(
    panel: Panel,
    assignment: TreatmentAssignment,
    *,
    min_pre_periods: int = 7,
    min_post_periods: int = 3,
    max_donor_missing: float = 0.5,
    method: str = "robust",
    max_placebos: int | None = None,
    fit_kwargs: tuple[tuple[str, object], ...] = (),
    task_panel: Panel | SharedPanelRef | None = None,
) -> list[tuple[str, str] | _UnitTask]:
    """Screen treated units into an ordered plan of fits and skips.

    The cheap shape screens (label parse, pre/post-period counts) run
    inline here; every surviving unit becomes a picklable
    :class:`_UnitTask` carrying *task_panel* — the in-process panel by
    default, a :class:`SharedPanelRef` when the fits will fan out.
    Both the batch study and the streaming engine's finalize build
    their plans here, which is what keeps their rows bit-identical:
    given equal panels and assignments, the plans (and therefore every
    downstream fit) are equal.
    """
    if task_panel is None:
        task_panel = panel
    treated = assignment.treated_units
    plan: list[tuple[str, str] | _UnitTask] = []
    for unit in treated:
        parse_unit_label(unit)  # fail loudly on malformed labels
        first_hour = assignment.first_crossing_hour[unit]
        first_day = int(first_hour // 24)
        try:
            pre_periods = _pre_period_count(panel, first_day)
        except EstimationError as exc:
            plan.append((unit, str(exc)))
            continue
        post_periods = panel.n_times - pre_periods
        if pre_periods < min_pre_periods:
            plan.append((unit, f"only {pre_periods} pre-treatment days"))
            continue
        if post_periods < min_post_periods:
            plan.append((unit, f"only {post_periods} post-treatment days"))
            continue
        plan.append(
            _UnitTask(
                unit=unit,
                pre_periods=pre_periods,
                post_periods=post_periods,
                panel=task_panel,
                excluded=tuple(treated),
                max_donor_missing=max_donor_missing,
                method=method,
                max_placebos=max_placebos,
                fit_kwargs=fit_kwargs,
            )
        )
    n_planned_skips = sum(1 for step in plan if not isinstance(step, _UnitTask))
    if n_planned_skips:
        get_metrics().counter(
            "units_skipped_total", "treated units the study could not fit"
        ).inc(n_planned_skips)
    return plan


def _attach_study_state(
    panel_ref: SharedPanelRef | None, slabs: PrefactorSlabs | None
) -> None:
    """Process-pool initializer: map the panel and prefactor slabs.

    Runs once per worker — including the respawned workers of a pool
    rebuilt after ``BrokenProcessPool`` — so both the panel attach and
    the slab attach stay off the task critical path.
    """
    if panel_ref is not None:
        attach_shared_panel(panel_ref)
    if slabs is not None:
        set_active_prefactors(slabs.load())


def execute_unit_plan(
    plan: list[tuple[str, str] | _UnitTask],
    *,
    n_jobs: int | None = 1,
    retry: RetryPolicy | None = None,
    owner: SharedPanelOwner | None = None,
    checkpoint: "StudyCheckpoint | None" = None,
    batch_fits: bool = True,
) -> tuple[list[StudyRow], list[tuple[str, str]]]:
    """Run a unit plan's fits and merge outcomes back into plan order.

    *checkpoint*, when given, is an **open**
    :class:`~repro.pipeline.checkpoint.StudyCheckpoint` (the caller
    owns its lifecycle): units already journaled are served from
    ``checkpoint.completed`` and each fresh outcome is appended the
    moment it lands.  Fan-out follows the batch study's contract —
    order-stable results, shared-memory attach via *owner* — so serial
    and pooled runs return identical rows.

    With *batch_fits* (the default), a planning pass batch-factors
    every robust unit's donor matrix across units first — one stacked
    SVD per matrix shape (:func:`~repro.pipeline.prefactor.prefactor_unit_plan`)
    — and the fits reuse those factorizations: installed directly in
    the serial process, shipped to pooled workers as shared-memory
    slabs.  Rows are bit-identical with the flag on or off; turn it off
    to pin down a suspected batching interaction or to trade peak
    memory (the stacked slabs) for per-unit SVD time.
    """
    fit_units = [step for step in plan if isinstance(step, _UnitTask)]
    completed: dict[str, StudyRow | tuple[str, str]] = (
        checkpoint.completed if checkpoint is not None else {}
    )
    tasks = [t for t in fit_units if t.unit not in completed]

    def _journal(index: int, result: StudyRow | tuple[str, str]) -> None:
        if checkpoint is not None:
            checkpoint.append_result(result)

    rows: list[StudyRow] = []
    skipped: list[tuple[str, str]] = []
    workers = resolve_n_jobs(n_jobs)
    arena: SharedFrameArena | None = None
    with span(
        "fits",
        n_tasks=len(tasks),
        n_jobs=n_jobs,
        n_resumed=len(fit_units) - len(tasks),
    ):
        try:
            prefactors: dict[str, UnitPrefactor] | None = None
            if batch_fits and tasks:
                first = tasks[0].panel
                plan_panel = (
                    owner.panel
                    if owner is not None
                    else first.load()
                    if isinstance(first, SharedPanelRef)
                    else first
                )
                prefactors = prefactor_unit_plan(plan_panel, tasks) or None
            # Workers map the shared blocks at spawn (initializer),
            # including the respawned workers of a pool rebuilt
            # after BrokenProcessPool — the blocks outlive any pool.
            initializer = attach_shared_panel if owner is not None else None
            initargs: tuple = (owner.ref,) if owner is not None else ()
            if prefactors is not None:
                if workers > 1:
                    arena = SharedFrameArena(tag="prefactor")
                    initializer = _attach_study_state
                    initargs = (
                        owner.ref if owner is not None else None,
                        publish_prefactors(prefactors, arena),
                    )
                else:
                    set_active_prefactors(prefactors)
            with get_executor(
                n_jobs,
                retry=retry,
                initializer=initializer,
                initargs=initargs,
            ) as executor:
                outcomes = iter(
                    executor.map(_analyse_unit, tasks, on_result=_journal)
                )
            for step in plan:
                if isinstance(step, _UnitTask):
                    result = completed.get(step.unit)
                    if result is None:
                        result = next(outcomes)
                else:
                    result = step
                if isinstance(result, StudyRow):
                    rows.append(result)
                else:
                    skipped.append(result)
        finally:
            clear_active_prefactors()
            if arena is not None:
                arena.close()
    return rows, skipped


def run_ixp_study(
    measurements: Frame,
    ixp_name: str,
    method: str = "robust",
    min_pre_periods: int = 7,
    min_post_periods: int = 3,
    max_donor_missing: float = 0.5,
    max_placebos: int | None = None,
    energy: float = 0.99,
    ridge: float = 1e-2,
    outcome: str = "rtt_ms",
    n_jobs: int | None = 1,
    generation_seconds: float | None = None,
    retry: RetryPolicy | None = None,
    checkpoint: str | Path | None = None,
    resume: bool = False,
    batch_fits: bool = True,
) -> StudyResult:
    """Run the full IXP case study on a measurement frame.

    Parameters
    ----------
    measurements:
        Frame from :func:`repro.mplatform.measurements_to_frame` (or CSV
        with the same columns).
    ixp_name:
        Exchange whose first crossings define treatment.
    method:
        ``"robust"`` (the paper) or ``"classic"``.
    min_pre_periods, min_post_periods:
        Units with fewer usable days on either side are skipped (with
        the reason recorded) rather than silently mis-fit.
    outcome:
        Measurement column to analyse (default RTT; the paper's Table 1).
        ``"download_mbps"`` runs the throughput variant.
    n_jobs:
        Worker processes for the per-unit fits (``1`` serial, ``-1``
        all cores).  Results are identical across backends: rows stay
        in treatment order and every fit is a pure function of its
        unit's panel slice.
    generation_seconds:
        Wall-clock spent producing *measurements* upstream (simulator or
        CSV import); recorded verbatim in the result's timings.
    retry:
        Retry transiently failed per-unit fits (dead workers, injected
        faults, blown deadlines) under this policy; results are
        unchanged whether or how often retries fire.
    checkpoint:
        JSONL path journaling each finished unit as it completes, so a
        killed run can be resumed.
    resume:
        With *checkpoint*: load previously finished units from the file
        and fit only the rest.  The resumed result is byte-identical to
        an uninterrupted run's.
    batch_fits:
        Batch donor-matrix SVDs across treated units before fitting
        (see :func:`execute_unit_plan`); on by default, bit-identical
        rows either way.
    """
    logger.info(
        "running IXP study on %d measurements (ixp=%s, method=%s, n_jobs=%s)",
        measurements.num_rows,
        ixp_name,
        method,
        n_jobs,
    )
    with span("study", ixp=ixp_name, method=method) as study_sp:
        t0 = time.perf_counter()
        assignment = assign_treatment(measurements, ixp_name)
        assignment = fault_point("study.assignment", key=ixp_name, value=assignment)
        t1 = time.perf_counter()
        # With a process pool ahead, the panel matrix is allocated inside
        # a named shared-memory block and the pivot scatters straight
        # into it; tasks then carry a SharedPanelRef instead of the
        # panel, so the pool pickles O(tasks) bytes, not
        # O(tasks x panel).  Serial runs keep a plain in-process array.
        workers = resolve_n_jobs(n_jobs)
        owner: SharedPanelOwner | None = None

        def _shared_matrix(shape, times, units):
            nonlocal owner
            owner = SharedPanelOwner.allocate(shape, times, units)
            return owner.matrix

        ckpt = None
        rows: list[StudyRow] = []
        skipped: list[tuple[str, str]] = []
        try:
            panel = rtt_panel(
                measurements,
                period="day",
                outcome=outcome,
                matrix_factory=_shared_matrix if workers > 1 else None,
            )
            panel = fault_point("study.panel", key=ixp_name, value=panel)
            if owner is not None and panel.matrix is not owner.matrix:
                # A chaos fault swapped in a corrupted copy; re-publish it
                # so pool workers analyse exactly what a serial run would —
                # fault parity includes the corrupted bytes.
                owner.close()
                owner = SharedPanelOwner.from_panel(panel)
                panel = owner.panel
            t2 = time.perf_counter()

            fit_kwargs: dict[str, object] = {}
            if method == "robust":
                fit_kwargs = {"energy": energy, "ridge": ridge}

            # Cheap shape screens run inline; only real fit work is fanned out.
            plan = prepare_unit_plan(
                panel,
                assignment,
                min_pre_periods=min_pre_periods,
                min_post_periods=min_post_periods,
                max_donor_missing=max_donor_missing,
                method=method,
                max_placebos=max_placebos,
                fit_kwargs=tuple(sorted(fit_kwargs.items())),
                task_panel=owner.ref if owner is not None else panel,
            )

            # Units already journaled in a resumed checkpoint are served from
            # the file; only the remainder is fitted.  The final row order is
            # the plan's either way, so a resumed table is byte-identical.
            if checkpoint is not None:
                from repro.pipeline.checkpoint import StudyCheckpoint

                ckpt = StudyCheckpoint(
                    checkpoint,
                    ixp_name=ixp_name,
                    method=method,
                    outcome=outcome,
                    resume=resume,
                )
            rows, skipped = execute_unit_plan(
                plan,
                n_jobs=n_jobs,
                retry=retry,
                owner=owner,
                checkpoint=ckpt,
                batch_fits=batch_fits,
            )
        finally:
            if ckpt is not None:
                ckpt.close()
            if owner is not None:
                owner.close()
        t3 = time.perf_counter()
        study_sp.set(n_rows=len(rows), n_skipped=len(skipped))

    # Timings re-derive from the trace (the spans the stages recorded);
    # with tracing disabled the perf_counter segments stand in, so the
    # StudyTimings API behaves identically either way.
    timings = StudyTimings(
        assignment_s=_stage_seconds(study_sp, "assignment", t1 - t0),
        panel_s=_stage_seconds(study_sp, "panel", t2 - t1),
        fits_s=_stage_seconds(study_sp, "fits", t3 - t2),
        generation_s=generation_seconds,
    )
    logger.info(
        "study done: %d rows, %d skipped, %.3fs", len(rows), len(skipped), timings.total_s
    )
    return StudyResult(
        rows=tuple(rows),
        assignment=assignment,
        skipped=tuple(skipped),
        timings=timings,
    )


def _stage_seconds(study_sp, name: str, fallback: float) -> float:
    """One stage's duration from the study span's trace, if recorded."""
    recorded = child_seconds(study_sp, name)
    return fallback if recorded is None else recorded


def _pre_period_count(panel: Panel, first_day: int) -> int:
    """Panel rows strictly before the first crossing day."""
    count = sum(1 for t in panel.times if float(t) < first_day)
    if count == 0:
        raise EstimationError("treatment precedes the whole panel")
    return count
