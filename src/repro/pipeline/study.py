"""The end-to-end Table-1 runner.

``run_ixp_study`` goes from a raw measurement frame to the paper's
table: detect which ⟨ASN, city⟩ units began crossing the exchange,
build the daily median-RTT panel, fit a robust synthetic control per
treated unit against a never-crossing donor pool, and report the
estimated RTT change with RMSE-ratio and placebo-p diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DonorPoolError, EstimationError
from repro.frames.frame import Frame
from repro.pipeline.aggregate import rtt_panel
from repro.pipeline.crossing import TreatmentAssignment, assign_treatment
from repro.synthcontrol.donor import Panel, select_donors
from repro.synthcontrol.placebo import placebo_test
from repro.synthcontrol.result import PlaceboSummary


@dataclass(frozen=True)
class StudyRow:
    """One Table-1 row: a treated unit's estimated RTT change.

    Attributes
    ----------
    unit:
        ``"AS<asn>/<city>"`` label.
    rtt_delta_ms:
        Mean post-treatment gap (observed minus synthetic): the
        estimated causal RTT change.
    rmse_ratio:
        Post/pre fit-error ratio.
    p_value:
        Placebo-based p.
    pre_periods, post_periods, n_donors:
        Analysis-shape diagnostics.
    """

    unit: str
    rtt_delta_ms: float
    rmse_ratio: float
    p_value: float
    pre_periods: int
    post_periods: int
    n_donors: int

    @property
    def asn(self) -> int:
        """ASN parsed back out of the unit label."""
        return int(self.unit.split("/")[0][2:])

    @property
    def city(self) -> str:
        """City parsed back out of the unit label."""
        return self.unit.split("/", 1)[1]


@dataclass(frozen=True)
class StudyResult:
    """The full study output: one row per treated unit plus context."""

    rows: tuple[StudyRow, ...]
    assignment: TreatmentAssignment
    skipped: tuple[tuple[str, str], ...]  # (unit, reason)

    def to_frame(self) -> Frame:
        """Rows as a frame (for CSV export or further analysis)."""
        return Frame.from_records(
            [
                {
                    "unit": r.unit,
                    "asn": r.asn,
                    "city": r.city,
                    "rtt_delta_ms": r.rtt_delta_ms,
                    "rmse_ratio": r.rmse_ratio,
                    "p_value": r.p_value,
                    "pre_periods": r.pre_periods,
                    "post_periods": r.post_periods,
                    "n_donors": r.n_donors,
                }
                for r in self.rows
            ],
            columns=[
                "unit",
                "asn",
                "city",
                "rtt_delta_ms",
                "rmse_ratio",
                "p_value",
                "pre_periods",
                "post_periods",
                "n_donors",
            ],
        )

    def format_table(self) -> str:
        """Render in the paper's Table-1 layout."""
        lines = [
            f"{'ASN / City':<28}  {'RTT Δ (ms)':>10}  {'RMSE Ratio':>10}  {'p':>6}",
            "-" * 60,
        ]
        for r in self.rows:
            label = f"{r.asn} / {r.city}"
            lines.append(
                f"{label:<28}  {r.rtt_delta_ms:>+10.2f}  {r.rmse_ratio:>10.0f}  {r.p_value:>6.3f}"
            )
        return "\n".join(lines)

    @property
    def consistent_effect(self) -> bool:
        """The paper's headline check: is the RTT drop consistent & robust?

        True only if *every* unit shows a negative delta significant at
        10% — which Table 1 (and this reproduction) shows is not the case.
        """
        return all(r.rtt_delta_ms < 0 and r.p_value < 0.10 for r in self.rows)


def run_ixp_study(
    measurements: Frame,
    ixp_name: str,
    method: str = "robust",
    min_pre_periods: int = 7,
    min_post_periods: int = 3,
    max_donor_missing: float = 0.5,
    max_placebos: int | None = None,
    energy: float = 0.99,
    ridge: float = 1e-2,
    outcome: str = "rtt_ms",
) -> StudyResult:
    """Run the full IXP case study on a measurement frame.

    Parameters
    ----------
    measurements:
        Frame from :func:`repro.mplatform.measurements_to_frame` (or CSV
        with the same columns).
    ixp_name:
        Exchange whose first crossings define treatment.
    method:
        ``"robust"`` (the paper) or ``"classic"``.
    min_pre_periods, min_post_periods:
        Units with fewer usable days on either side are skipped (with
        the reason recorded) rather than silently mis-fit.
    outcome:
        Measurement column to analyse (default RTT; the paper's Table 1).
        ``"download_mbps"`` runs the throughput variant.
    """
    assignment = assign_treatment(measurements, ixp_name)
    panel = rtt_panel(measurements, period="day", outcome=outcome)
    treated = assignment.treated_units
    rows: list[StudyRow] = []
    skipped: list[tuple[str, str]] = []

    fit_kwargs: dict[str, object] = {}
    if method == "robust":
        fit_kwargs = {"energy": energy, "ridge": ridge}

    for unit in treated:
        first_hour = assignment.first_crossing_hour[unit]
        first_day = int(first_hour // 24)
        try:
            pre_periods = _pre_period_count(panel, first_day)
        except EstimationError as exc:
            skipped.append((unit, str(exc)))
            continue
        post_periods = panel.n_times - pre_periods
        if pre_periods < min_pre_periods:
            skipped.append((unit, f"only {pre_periods} pre-treatment days"))
            continue
        if post_periods < min_post_periods:
            skipped.append((unit, f"only {post_periods} post-treatment days"))
            continue
        try:
            donors = select_donors(
                panel,
                unit,
                excluded=treated,
                pre_periods=pre_periods,
                max_missing=max_donor_missing,
            )
            donor_matrix = np.column_stack([panel.series(d) for d in donors])
            summary: PlaceboSummary = placebo_test(
                panel.series(unit),
                donor_matrix,
                pre_periods,
                treated_name=unit,
                donor_names=donors,
                method=method,
                max_placebos=max_placebos,
                **fit_kwargs,
            )
        except (DonorPoolError, EstimationError) as exc:
            skipped.append((unit, str(exc)))
            continue
        rows.append(
            StudyRow(
                unit=unit,
                rtt_delta_ms=summary.fit.effect,
                rmse_ratio=summary.fit.rmse_ratio,
                p_value=summary.p_value,
                pre_periods=pre_periods,
                post_periods=post_periods,
                n_donors=len(donors),
            )
        )
    return StudyResult(
        rows=tuple(rows), assignment=assignment, skipped=tuple(skipped)
    )


def _pre_period_count(panel: Panel, first_day: int) -> int:
    """Panel rows strictly before the first crossing day."""
    count = sum(1 for t in panel.times if float(t) < first_day)
    if count == 0:
        raise EstimationError("treatment precedes the whole panel")
    return count
