"""Checkpoint/resume for the study pipeline.

``run_ixp_study`` appends every completed per-unit outcome — a fitted
:class:`~repro.pipeline.study.StudyRow` or a fit-stage skip — to a
JSONL checkpoint the moment it lands.  A run killed at any point (power
loss, OOM, ``kill -9``) resumes with ``resume=True``: finished units
load from the file and only the unfinished ones are fitted again, and
because each row round-trips its floats exactly (JSON uses shortest
round-trip ``repr``) the resumed study's table is **byte-identical** to
an uninterrupted run's.

The file format is one JSON object per line::

    {"kind": "header", "ixp": ..., "method": ..., "outcome": ...}
    {"kind": "row", "unit": ..., "rtt_delta_ms": ..., ...}
    {"kind": "skip", "unit": ..., "reason": ...}
    {"kind": "batch", "index": ..., "rows": ...}
    {"kind": "unitfit", "unit": ..., "effect": ..., "donors": [...], ...}
    {"kind": "placebo", "unit": ..., "col": ..., "donor": ..., ...}

``batch`` records are written by the streaming engine
(:class:`repro.stream.StreamStudy`) after each fully ingested
measurement batch; on resume the engine replays journaled batches into
its state layer (skipping their live refits) and validates the row
counts, so a stream killed mid-batch re-ingests exactly the unjournaled
suffix.

``unitfit`` and ``placebo`` records are written by the campaign
scheduler (:mod:`repro.campaign`), which journals at a finer grain than
the batch study: a unit's base fit and each individual placebo refit
land separately, so an adaptive budget run resumes mid-*unit* — already
-journaled refits are served from the file and only the unspent part of
the budget is executed.

A ``kill -9`` can land mid-append, leaving a truncated final line.
:func:`read_jsonl_tolerant` therefore drops a partial **last** record
with a warning (corruption anywhere else raises — that is damage, not
interruption), and :class:`StudyCheckpoint` truncates the file back to
the last complete record before appending, so one interrupted write
never snowballs.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Any

from repro.errors import CheckpointError
from repro.pipeline.study import StudyRow

logger = logging.getLogger(__name__)

#: Paths of journals currently open in this process, for the resource
#: sampler's checkpoint-size gauge.  Registered on open, dropped on
#: close; a path can be re-registered by a resuming run.
_LIVE_JOURNALS: set[Path] = set()


def live_checkpoint_paths() -> tuple[Path, ...]:
    """Paths of checkpoint journals currently open in this process."""
    return tuple(sorted(_LIVE_JOURNALS))


def live_checkpoint_bytes() -> int:
    """Total on-disk bytes of the currently open checkpoint journals.

    Reads sizes from the filesystem (journals are append-and-flush, so
    ``stat`` is accurate to the last flush); a journal deleted out from
    under its writer counts as zero rather than raising.
    """
    total = 0
    for path in list(_LIVE_JOURNALS):
        try:
            total += path.stat().st_size
        except OSError:
            pass
    return total


_ROW_FIELDS = (
    "unit",
    "rtt_delta_ms",
    "rmse_ratio",
    "p_value",
    "pre_periods",
    "post_periods",
    "n_donors",
    "n_placebos",
    "n_placebos_skipped",
)


def read_jsonl_tolerant(path: str | Path) -> tuple[list[dict], int]:
    """Parse a JSONL file, dropping a truncated final record.

    Returns ``(records, good_bytes)`` where *good_bytes* is the byte
    offset just past the last complete record — the truncation point a
    resuming writer should append from.  A final line that is partial
    (no trailing newline, or unparseable) is dropped with a warning; a
    malformed line anywhere *before* the end raises
    :class:`~repro.errors.CheckpointError`, because mid-file corruption
    is not explainable by an interrupted append.
    """
    data = Path(path).read_bytes()
    lines = data.split(b"\n")
    records: list[dict] = []
    good_bytes = 0
    offset = 0
    for i, line in enumerate(lines):
        # Every split element except the last had a newline after it; the
        # last one is unterminated (or empty, when data ends in a newline).
        terminated = i < len(lines) - 1
        text = line.decode("utf-8", errors="replace").strip()
        if text:
            try:
                obj = json.loads(text)
                if not isinstance(obj, dict):
                    raise ValueError("record is not a JSON object")
            except ValueError as exc:
                if terminated:
                    raise CheckpointError(
                        f"{path}: malformed record mid-file "
                        f"(byte {offset}): {exc}"
                    ) from exc
                logger.warning(
                    "%s: dropping truncated final record (%d bytes): %.60s",
                    path, len(line), text,
                )
                break
            if not terminated:
                # Parses, but the writer died before the newline landed —
                # and a truncated longer record can parse as a shorter
                # one, so an unterminated record is never trusted.
                logger.warning(
                    "%s: dropping unterminated final record: %.60s", path, text
                )
                break
            records.append(obj)
            good_bytes = offset + len(line) + 1
        offset += len(line) + (1 if terminated else 0)
    return records, good_bytes


def _row_to_record(row: StudyRow) -> dict:
    record: dict[str, Any] = {"kind": "row"}
    for name in _ROW_FIELDS:
        record[name] = getattr(row, name)
    return record


def _record_to_result(record: dict) -> StudyRow | tuple[str, str]:
    kind = record.get("kind")
    if kind == "row":
        try:
            return StudyRow(
                unit=str(record["unit"]),
                rtt_delta_ms=float(record["rtt_delta_ms"]),
                rmse_ratio=float(record["rmse_ratio"]),
                p_value=float(record["p_value"]),
                pre_periods=int(record["pre_periods"]),
                post_periods=int(record["post_periods"]),
                n_donors=int(record["n_donors"]),
                n_placebos=int(record["n_placebos"]),
                n_placebos_skipped=int(record["n_placebos_skipped"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"unusable row record {record!r}: {exc}") from exc
    if kind == "skip":
        try:
            return (str(record["unit"]), str(record["reason"]))
        except KeyError as exc:
            raise CheckpointError(f"unusable skip record {record!r}") from exc
    raise CheckpointError(f"unknown checkpoint record kind {kind!r}")


class StudyCheckpoint:
    """An append-only JSONL journal of completed per-unit outcomes.

    Open with ``resume=True`` to load prior results (validating the
    header against this run's parameters) and continue appending after
    the last complete record; without it, any existing file is
    restarted from scratch.  Use as a context manager or call
    :meth:`close`.
    """

    def __init__(
        self,
        path: str | Path,
        ixp_name: str,
        method: str,
        outcome: str,
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.completed: dict[str, StudyRow | tuple[str, str]] = {}
        self.completed_batches: dict[int, int] = {}  # batch index -> row count
        # Campaign-grain records: journaled base fits keyed by unit, and
        # journaled placebo refits keyed by (unit, leave-one-out column).
        self.completed_fits: dict[str, dict] = {}
        self.completed_refits: dict[tuple[str, int], tuple[str, float | None, str]] = {}
        header = {
            "kind": "header",
            "ixp": ixp_name,
            "method": method,
            "outcome": outcome,
        }
        if resume and self.path.exists():
            records, good_bytes = read_jsonl_tolerant(self.path)
            self._load(records, header)
            with open(self.path, "r+b") as f:
                f.truncate(good_bytes)
            self._file = open(self.path, "a")
            if not records:
                self._append(header)
        else:
            self._file = open(self.path, "w")
            self._append(header)
        _LIVE_JOURNALS.add(self.path)
        logger.info(
            "checkpoint %s: %d completed units loaded",
            self.path, len(self.completed),
        )

    def _load(self, records: list[dict], header: dict) -> None:
        if records:
            first = records[0]
            if first.get("kind") != "header":
                raise CheckpointError(
                    f"{self.path}: first record is not a header; refusing to "
                    f"resume from an unrecognised file"
                )
            for field in ("ixp", "method", "outcome"):
                if first.get(field) != header[field]:
                    raise CheckpointError(
                        f"{self.path}: checkpoint was written for "
                        f"{field}={first.get(field)!r} but this run uses "
                        f"{header[field]!r}; pass a fresh checkpoint path"
                    )
        for record in records[1:]:
            kind = record.get("kind")
            if kind == "batch":
                try:
                    self.completed_batches[int(record["index"])] = int(record["rows"])
                except (KeyError, TypeError, ValueError) as exc:
                    raise CheckpointError(
                        f"unusable batch record {record!r}"
                    ) from exc
                continue
            if kind == "unitfit":
                try:
                    self.completed_fits[str(record["unit"])] = {
                        "unit": str(record["unit"]),
                        "effect": float(record["effect"]),
                        "rmse_ratio": float(record["rmse_ratio"]),
                        "pre_periods": int(record["pre_periods"]),
                        "post_periods": int(record["post_periods"]),
                        "donors": [str(d) for d in record["donors"]],
                    }
                except (KeyError, TypeError, ValueError) as exc:
                    raise CheckpointError(
                        f"unusable unitfit record {record!r}: {exc}"
                    ) from exc
                continue
            if kind == "placebo":
                try:
                    ratio = record["ratio"]
                    self.completed_refits[
                        (str(record["unit"]), int(record["col"]))
                    ] = (
                        str(record["donor"]),
                        None if ratio is None else float(ratio),
                        str(record.get("reason", "")),
                    )
                except (KeyError, TypeError, ValueError) as exc:
                    raise CheckpointError(
                        f"unusable placebo record {record!r}: {exc}"
                    ) from exc
                continue
            result = _record_to_result(record)
            unit = result.unit if isinstance(result, StudyRow) else result[0]
            self.completed[unit] = result

    def _append(self, record: dict) -> None:
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._file.flush()

    def append_result(self, result: StudyRow | tuple[str, str]) -> None:
        """Journal one finished unit (flushed immediately)."""
        if isinstance(result, StudyRow):
            self._append(_row_to_record(result))
        else:
            unit, reason = result
            self._append({"kind": "skip", "unit": unit, "reason": reason})

    def append_unit_fit(
        self,
        unit: str,
        effect: float,
        rmse_ratio: float,
        pre_periods: int,
        post_periods: int,
        donors: list[str],
    ) -> None:
        """Journal one completed base unit fit (flushed immediately)."""
        record = {
            "kind": "unitfit",
            "unit": unit,
            "effect": float(effect),
            "rmse_ratio": float(rmse_ratio),
            "pre_periods": int(pre_periods),
            "post_periods": int(post_periods),
            "donors": [str(d) for d in donors],
        }
        self._append(record)
        self.completed_fits[unit] = {k: v for k, v in record.items() if k != "kind"}

    def append_placebo(
        self,
        unit: str,
        col: int,
        donor: str,
        ratio: float | None,
        reason: str = "",
    ) -> None:
        """Journal one placebo refit outcome (flushed immediately).

        *ratio* is ``None`` for a skipped refit, with *reason* carrying
        the skip explanation — both round-trip exactly so a resumed
        campaign reproduces the original run's placebo accounting.
        """
        self._append(
            {
                "kind": "placebo",
                "unit": unit,
                "col": int(col),
                "donor": donor,
                "ratio": None if ratio is None else float(ratio),
                "reason": reason,
            }
        )
        self.completed_refits[(unit, int(col))] = (
            donor,
            None if ratio is None else float(ratio),
            reason,
        )

    def append_batch(self, index: int, rows: int) -> None:
        """Journal one fully ingested stream batch (flushed immediately).

        A batch record only lands *after* the state layer has absorbed
        the whole batch, so a kill mid-ingest leaves the batch
        unjournaled and the resuming stream re-ingests it.
        """
        self._append({"kind": "batch", "index": int(index), "rows": int(rows)})
        self.completed_batches[int(index)] = int(rows)

    def close(self) -> None:
        """Flush, fsync, and close the journal file (idempotent).

        ``flush`` alone survives a killed *process* but not a crashed
        *host*: the records would still sit in the page cache.  The
        ``fsync`` makes every journaled unit durable against power loss
        before the descriptor closes.
        """
        _LIVE_JOURNALS.discard(self.path)
        if self._file.closed:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()

    def __enter__(self) -> "StudyCheckpoint":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
