"""Row-wise reference implementations of the pipeline stages.

The pre-vectorization crossing detector, treatment scan, and panel
builder, preserved verbatim: per-row string splits, a fresh O(rows)
boolean mask per unit, and the wide-frame pivot round-trip.  The parity
tests and ``benchmarks/test_bench_analysis.py`` measure and compare the
vectorized pipeline against these; production code never imports them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FrameError
from repro.frames import rowwise
from repro.frames.frame import Frame
from repro.pipeline.crossing import TreatmentAssignment
from repro.synthcontrol.donor import Panel


def crossing_mask(frame: Frame, ixp_name: str) -> np.ndarray:
    """Per-row split/match (the old ``crossing_mask``)."""
    if "ixps" not in frame:
        raise FrameError("frame has no 'ixps' column; is this a measurement frame?")
    ixps = frame.column("ixps").values
    return np.array(
        [ixp_name in str(v).split(",") if v else False for v in ixps], dtype=bool
    )


def assign_treatment(
    frame: Frame,
    ixp_name: str,
    min_crossing_share: float = 0.5,
    window_hours: float = 24.0,
) -> TreatmentAssignment:
    """Per-unit mask rebuild scan (the old ``assign_treatment``)."""
    if not 0 < min_crossing_share <= 1:
        raise FrameError("min_crossing_share must be in (0, 1]")
    crosses = crossing_mask(frame, ixp_name)
    units = frame.column("unit").values
    hours = frame.numeric("time_hour")

    first: dict[str, float] = {}
    never: list[str] = []
    for unit in sorted({str(u) for u in units}):
        sel = np.array([str(u) == unit for u in units])
        unit_hours = hours[sel]
        unit_cross = crosses[sel]
        order = np.argsort(unit_hours)
        unit_hours = unit_hours[order]
        unit_cross = unit_cross[order]
        candidate = None
        for i in np.flatnonzero(unit_cross):
            t0 = unit_hours[i]
            in_window = (unit_hours >= t0) & (unit_hours < t0 + window_hours)
            if in_window.sum() == 0:
                continue
            share = float(unit_cross[in_window].mean())
            if share >= min_crossing_share:
                candidate = float(t0)
                break
        if candidate is None:
            never.append(unit)
        else:
            first[unit] = candidate
    return TreatmentAssignment(
        ixp_name=ixp_name,
        first_crossing_hour=first,
        never_crossed=tuple(never),
    )


def build_panel(
    data: Frame,
    unit: str,
    time: str,
    outcome: str,
    agg: str = "median",
) -> Panel:
    """Wide-frame pivot + re-read (the old ``build_panel``)."""
    wide, unit_keys = rowwise.pivot(data, index=time, columns=unit, values=outcome, agg=agg)
    ordered = wide.sort_by(time)
    times = tuple(ordered.column(time).to_list())
    units = tuple(str(k) for k in unit_keys)
    cols = [ordered.numeric(str(k)) for k in unit_keys]
    matrix = np.column_stack(cols) if cols else np.empty((len(times), 0))
    return Panel(times=times, units=units, matrix=matrix)
