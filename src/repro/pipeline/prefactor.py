"""Cross-unit batched fit planning (the fit half of the batched engine).

``execute_unit_plan`` used to hand each treated unit's task to a worker
that imputed, SVD-factored, and leave-one-out-decomposed its donor
matrix privately — one LAPACK dispatch per unit plus one per placebo
core batch, even though every unit in a study screens the same donor
pool and therefore produces the same ``(T, J)`` matrix shape.  This
module hoists that work into a **planning pass** in the parent:

- :func:`prefactor_unit_plan` re-runs each task's donor selection (with
  tracing off, so the real fits keep recording the canonical spans),
  groups the donor matrices by shape, and feeds them through the
  stacked primitives :func:`~repro.synthcontrol.robust.factor_donor_matrices`
  and :func:`~repro.synthcontrol.robust.denoise_leave_one_out_many` —
  one 3-D gufunc SVD per shape group instead of one 2-D SVD per unit.
- The resulting :class:`UnitPrefactor` table is installed in a
  per-process registry (:func:`set_active_prefactors`) for serial runs,
  or packed into shared-memory slabs (:func:`publish_prefactors`) that
  pooled workers attach zero-copy through a picklable
  :class:`PrefactorSlabs`.

Bit-identity is the invariant that makes this safe to enable by
default: the stacked SVD runs the same LAPACK routine on the same
bytes as the per-unit call, so a fit seeded from a prefactor is
indistinguishable — to the last bit of every
:class:`~repro.pipeline.study.StudyRow` field — from one that factored
its own matrix.  A unit whose donor selection fails, or whose selected
donors disagree with the prefactor's (either means the panel changed
under us), simply falls back to the private factorization.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.errors import DonorPoolError, EstimationError
from repro.obs import tracing_disabled
from repro.pipeline.shm import SharedArrayRef, SharedFrameArena
from repro.synthcontrol.donor import Panel, select_donors
from repro.synthcontrol.robust import (
    DonorFactorization,
    denoise_leave_one_out_many,
    factor_donor_matrices,
)


class _FitTask(Protocol):
    """The slice of :class:`~repro.pipeline.study._UnitTask` we read."""

    unit: str
    pre_periods: int
    excluded: tuple[str, ...]
    max_donor_missing: float
    method: str
    max_placebos: int | None
    fit_kwargs: tuple[tuple[str, object], ...]


@dataclass(frozen=True)
class UnitPrefactor:
    """One unit's pre-computed de-noising work.

    Attributes
    ----------
    donors:
        The donor names the planning pass selected — a fit only uses
        this prefactor if its own selection matches exactly.
    fact:
        The unit's donor-matrix factorization (imputation + thin SVD).
    loo:
        The leave-one-out ``(denoised, rank)`` batch the placebo loop
        needs, or ``None`` when the unit has too few donors (or too
        small a placebo cap) for leave-one-out work to exist.
    """

    donors: tuple[str, ...]
    fact: DonorFactorization
    loo: tuple[tuple[np.ndarray, int], ...] | None


def prefactor_unit_plan(
    panel: Panel, tasks: Sequence[_FitTask]
) -> dict[str, UnitPrefactor]:
    """Batch-factor every robust task's donor matrix across units.

    Runs each task's donor screen exactly as :func:`_analyse_unit`
    will — under :func:`~repro.obs.tracing_disabled`, so the canonical
    ``donors.select`` spans are still recorded (once) by the real
    fits — then stacks same-shaped matrices into single gufunc SVD
    calls.  Units whose screen raises here are left out of the table
    (the real fit records the skip, with tracing on); units with an
    entirely-missing donor column are likewise left to the real fit so
    its error message is the one surfaced.
    """
    entries: list[tuple[_FitTask, tuple[str, ...], np.ndarray]] = []
    with tracing_disabled():
        for task in tasks:
            if task.method != "robust":
                continue
            try:
                donors = select_donors(
                    panel,
                    task.unit,
                    excluded=task.excluded,
                    pre_periods=task.pre_periods,
                    max_missing=task.max_donor_missing,
                )
            except (DonorPoolError, EstimationError):
                continue
            matrix = np.column_stack([panel.series(d) for d in donors])
            if matrix.shape[1] == 0 or not np.isfinite(matrix).any(axis=0).all():
                continue
            entries.append((task, tuple(donors), matrix))
    if not entries:
        return {}
    facts = factor_donor_matrices([matrix for _task, _donors, matrix in entries])
    # Leave-one-out batches group across units too — but only for tasks
    # that would compute one (>= 2 donors and a placebo cap above 1),
    # keyed by the (energy, cap) pair so mixed fit parameters cannot
    # silently share a threshold.
    loos: list[tuple[tuple[np.ndarray, int], ...] | None] = [None] * len(entries)
    loo_groups: dict[tuple[float, int | None], list[int]] = {}
    for i, (task, _donors, matrix) in enumerate(entries):
        j = matrix.shape[1]
        limit = j if task.max_placebos is None else min(int(task.max_placebos), j)
        if j >= 2 and limit > 1:
            energy = float(dict(task.fit_kwargs).get("energy", 0.99))  # type: ignore[arg-type]
            loo_groups.setdefault((energy, task.max_placebos), []).append(i)
    for (energy, max_placebos), members in loo_groups.items():
        batch = denoise_leave_one_out_many(
            [facts[i] for i in members], energy=energy, limit=max_placebos
        )
        for i, loo in zip(members, batch):
            loos[i] = loo
    return {
        task.unit: UnitPrefactor(donors=donors, fact=facts[i], loo=loos[i])
        for i, (task, donors, _matrix) in enumerate(entries)
    }


# --------------------------------------------------------------------------
# Per-process registry: how _analyse_unit finds its unit's prefactor.
# The serial path installs the parent's table directly; pooled workers
# install a table rebuilt from shared-memory slabs in their initializer.

_ACTIVE: dict[str, UnitPrefactor] = {}


def set_active_prefactors(table: dict[str, UnitPrefactor]) -> None:
    """Install *table* as this process's active prefactor registry."""
    _ACTIVE.clear()
    _ACTIVE.update(table)


def clear_active_prefactors() -> None:
    """Empty the registry (idempotent); fits fall back to private SVDs."""
    _ACTIVE.clear()


def get_prefactor(unit: str) -> UnitPrefactor | None:
    """The active prefactor for *unit*, if the planning pass produced one."""
    return _ACTIVE.get(unit)


# --------------------------------------------------------------------------
# Shared-memory transport: the parent packs the table into a few big
# arena blocks (one set per shape group), workers attach them zero-copy.


@dataclass(frozen=True)
class _SlabGroup:
    """One shape group's stacked arrays plus per-unit metadata.

    The float payload lives in arena blocks (:class:`SharedArrayRef`
    fields); only names, shapes, donor tuples, and integer sidecars
    ride in the pickle — a few hundred bytes per group however large
    the panel is.
    """

    units: tuple[str, ...]
    donors: tuple[tuple[str, ...], ...]
    finite_counts: tuple[tuple[int, ...], ...]
    loo_ranks: tuple[tuple[int, ...], ...] | None
    filled: SharedArrayRef
    col_means: SharedArrayRef
    u: SharedArrayRef
    s: SharedArrayRef
    vt: SharedArrayRef
    loo: SharedArrayRef | None


@dataclass(frozen=True)
class PrefactorSlabs:
    """A picklable shared-memory image of a prefactor table."""

    groups: tuple[_SlabGroup, ...]

    def load(self) -> dict[str, UnitPrefactor]:
        """Attach every group's blocks and rebuild the per-unit table.

        Views are zero-copy slices of the slabs (memoised per process
        by the attach cache), so a worker's table costs one attach per
        block, not one array copy per unit.
        """
        table: dict[str, UnitPrefactor] = {}
        for group in self.groups:
            filled = group.filled.load()
            col_means = group.col_means.load()
            u = group.u.load()
            s = group.s.load()
            vt = group.vt.load()
            loo_slab = group.loo.load() if group.loo is not None else None
            for i, unit in enumerate(group.units):
                fact = DonorFactorization(
                    filled=filled[i],
                    col_means=col_means[i],
                    finite_counts=np.array(group.finite_counts[i], dtype=np.int64),
                    u=u[i],
                    s=s[i],
                    vt=vt[i],
                )
                loo: tuple[tuple[np.ndarray, int], ...] | None = None
                if loo_slab is not None and group.loo_ranks is not None:
                    loo = tuple(
                        (loo_slab[i, col], rank)
                        for col, rank in enumerate(group.loo_ranks[i])
                    )
                table[unit] = UnitPrefactor(
                    donors=group.donors[i], fact=fact, loo=loo
                )
        return table


def publish_prefactors(
    table: dict[str, UnitPrefactor], arena: SharedFrameArena
) -> PrefactorSlabs:
    """Pack *table* into arena blocks for zero-copy worker attach.

    Units are regrouped by concrete array shapes — the donor-matrix
    shape and the leave-one-out batch length — and each group's
    factorizations stack into one block per field.  Integer sidecars
    (finite counts, kept ranks) travel in the pickle so the float
    blocks round-trip bit-exact without dtype games.
    """
    groups: dict[tuple[tuple[int, int], int], list[str]] = {}
    for unit, pf in table.items():
        shape = (pf.fact.n_times, pf.fact.n_donors)
        n_loo = len(pf.loo) if pf.loo is not None else 0
        groups.setdefault((shape, n_loo), []).append(unit)
    packed: list[_SlabGroup] = []
    for gi, (((n_times, n_donors), n_loo), units) in enumerate(groups.items()):
        g = len(units)
        k = len(table[units[0]].fact.s)
        filled = arena.allocate(f"prefactor.{gi}.filled", (g, n_times, n_donors))
        col_means = arena.allocate(f"prefactor.{gi}.col_means", (g, n_donors))
        u = arena.allocate(f"prefactor.{gi}.u", (g, n_times, k))
        s = arena.allocate(f"prefactor.{gi}.s", (g, k))
        vt = arena.allocate(f"prefactor.{gi}.vt", (g, k, n_donors))
        loo = (
            arena.allocate(
                f"prefactor.{gi}.loo", (g, n_loo, n_times, n_donors - 1)
            )
            if n_loo
            else None
        )
        donors: list[tuple[str, ...]] = []
        finite_counts: list[tuple[int, ...]] = []
        loo_ranks: list[tuple[int, ...]] = []
        for i, unit in enumerate(units):
            pf = table[unit]
            filled[i] = pf.fact.filled
            col_means[i] = pf.fact.col_means
            u[i] = pf.fact.u
            s[i] = pf.fact.s
            vt[i] = pf.fact.vt
            donors.append(pf.donors)
            finite_counts.append(tuple(int(c) for c in pf.fact.finite_counts))
            if n_loo and pf.loo is not None:
                for col, (denoised, _rank) in enumerate(pf.loo):
                    loo[i, col] = denoised  # type: ignore[index]
                loo_ranks.append(tuple(int(rank) for _d, rank in pf.loo))
        packed.append(
            _SlabGroup(
                units=tuple(units),
                donors=tuple(donors),
                finite_counts=tuple(finite_counts),
                loo_ranks=tuple(loo_ranks) if n_loo else None,
                filled=arena.ref(f"prefactor.{gi}.filled"),
                col_means=arena.ref(f"prefactor.{gi}.col_means"),
                u=arena.ref(f"prefactor.{gi}.u"),
                s=arena.ref(f"prefactor.{gi}.s"),
                vt=arena.ref(f"prefactor.{gi}.vt"),
                loo=arena.ref(f"prefactor.{gi}.loo") if n_loo else None,
            )
        )
    return PrefactorSlabs(groups=tuple(packed))


__all__ = [
    "UnitPrefactor",
    "PrefactorSlabs",
    "prefactor_unit_plan",
    "publish_prefactors",
    "set_active_prefactors",
    "clear_active_prefactors",
    "get_prefactor",
]
