"""Shared-memory storage for zero-copy process-pool fan-out.

The process-pool study used to pickle the full :class:`~repro.synthcontrol.donor.Panel`
into every per-unit task, so the transport cost grew as
``O(tasks x panel_bytes)`` and the parallel study ran *slower* than
serial at CI scale.  This module moves the panel's numeric storage onto
:mod:`multiprocessing.shared_memory` so a task ships only a tiny named
reference:

- :class:`SharedPanelOwner` — the parent-side lifecycle handle.  It
  allocates one named block laid out as ``[meta length][pickled times /
  units / shape][float64 matrix]``, exposes the matrix region as a
  writable numpy view (so :func:`~repro.synthcontrol.donor.build_panel`
  can scatter the pivot directly into the block — no seal-time copy),
  and unlinks the block exactly once however the study exits.
- :class:`SharedPanelRef` — the picklable worker-side reference: just
  the block name.  ``load()`` attaches by name and reconstructs a
  read-only zero-copy :class:`~repro.synthcontrol.donor.Panel` view,
  memoised per process so a pooled worker running hundreds of unit
  tasks attaches (and unpickles the metadata) once.

Lifecycle rules the study pipeline relies on:

- the block is independent of any process pool, so a
  ``BrokenProcessPool`` rebuild needs no re-publication — respawned
  workers attach lazily by name;
- ``unlink`` removes the name immediately while live mappings (the
  parent's panel view, attached workers) stay valid until they are
  dropped, so teardown never races the last fits;
- every created block is tracked in :func:`live_panel_blocks` until it
  is unlinked, which is what the leak tests assert drains to empty.

:class:`SharedFrameArena` generalizes the same contract from one panel
matrix to arbitrary named float64 arrays: measurement-frame columns
(sealed straight out of :meth:`repro.frames.builder.FrameBuilder.build`
via its ``alloc=`` hook, or a CSV import's float columns) and the
batched fit engine's pre-factored slabs all live in arena blocks that
workers attach zero-copy through picklable :class:`SharedArrayRef`\\ s.
The arena follows the panel block's lifecycle rules exactly: leak
tracking (:func:`live_arena_blocks`), idempotent ``BufferError``-safe
close, and attach-by-name that survives ``BrokenProcessPool`` pool
rebuilds.
"""

from __future__ import annotations

import os
import pickle
import secrets
from collections.abc import Callable
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import PipelineError
from repro.synthcontrol.donor import Panel

#: Byte alignment of the matrix region within the block (numpy is happy
#: with any alignment, but 64 keeps the matrix cache-line aligned).
_ALIGN = 64

#: Block-name prefix; also how the leak tests recognise our blocks in
#: ``/dev/shm``.  Kept short: POSIX shm names are limited (NAME_MAX).
NAME_PREFIX = "rpr-panel-"

#: Names created by this process and not yet unlinked, with their block
#: sizes in bytes (``SharedMemory.size``) so the resource sampler can
#: report live ``/dev/shm`` byte totals without stat-ing the filesystem.
_LIVE: dict[str, int] = {}

#: Per-process attach cache: block name -> (mapping, reconstructed panel).
#: Pool workers run many tasks against the same panel; the first task
#: attaches and unpickles the metadata, the rest hit this dict.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, Panel]] = {}

#: Attach-cache capacity.  A single study uses one panel block, but a
#: campaign interleaves many scenarios' tasks on one pool — evicting
#: everything-but-current on each miss (the pre-campaign policy) would
#: re-attach on nearly every task switch.  The cache instead holds the
#: most recent blocks up to this bound and evicts oldest-attached first.
_ATTACH_CAPACITY = 16


def live_panel_blocks() -> tuple[str, ...]:
    """Names of blocks this process created and has not unlinked yet."""
    return tuple(sorted(_LIVE))


def _evict_attached(keep: str | None = None) -> None:
    """Shrink the attach cache below capacity, never dropping *keep*.

    Evicts in insertion (attach) order while the cache is over
    ``_ATTACH_CAPACITY - 1`` entries, leaving room for the incoming
    block; with one panel in play this degenerates to the old
    evict-everything-else behaviour once the bound is hit.  A mapping
    whose panel view is still referenced elsewhere raises
    ``BufferError`` on close; it is kept (closing would invalidate live
    numpy views) and retried on the next eviction.
    """
    for name in list(_ATTACHED):
        if len(_ATTACHED) < _ATTACH_CAPACITY:
            break
        if name == keep:
            continue
        shm, panel = _ATTACHED.pop(name)
        del panel  # drop the cache's own view before closing the mapping
        try:
            shm.close()
        except BufferError:  # a view escaped; the mapping must outlive it
            _ATTACHED[name] = (shm, _panel_from_block(shm))


def _pack_meta(times: tuple, units: tuple[str, ...], shape: tuple[int, int]) -> bytes:
    return pickle.dumps(
        {"times": times, "units": units, "shape": shape},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _matrix_offset(meta_len: int) -> int:
    header = 8 + meta_len
    return header + (-header) % _ALIGN


def _panel_from_block(shm: shared_memory.SharedMemory) -> Panel:
    """Reconstruct the Panel stored in *shm* as a zero-copy view."""
    meta_len = int.from_bytes(bytes(shm.buf[:8]), "little")
    if not 0 < meta_len <= shm.size - 8:
        raise PipelineError(
            f"shared panel block {shm.name!r} has a corrupt header "
            f"(meta_len={meta_len}, size={shm.size})"
        )
    meta = pickle.loads(bytes(shm.buf[8 : 8 + meta_len]))
    shape = tuple(meta["shape"])
    matrix = np.ndarray(
        shape, dtype=np.float64, buffer=shm.buf, offset=_matrix_offset(meta_len)
    )
    return Panel(times=tuple(meta["times"]), units=tuple(meta["units"]), matrix=matrix)


@dataclass(frozen=True)
class SharedPanelRef:
    """A picklable, zero-copy reference to a panel in a named shared block.

    This is all a process-pool task carries: attaching by *name* in the
    worker reconstructs the full panel without copying the matrix.
    """

    name: str

    def load(self) -> Panel:
        """Attach (memoised per process) and return the panel view."""
        hit = _ATTACHED.get(self.name)
        if hit is not None:
            return hit[1]
        _evict_attached(keep=self.name)
        try:
            shm = shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:
            raise PipelineError(
                f"shared panel block {self.name!r} does not exist "
                "(already unlinked, or never published in this host)"
            ) from None
        panel = _panel_from_block(shm)
        _ATTACHED[self.name] = (shm, panel)
        return panel


def attach_shared_panel(ref: SharedPanelRef) -> None:
    """Process-pool initializer: map the shared panel before any task.

    Passed as the pool's ``initializer`` so every worker — including the
    respawned workers of a rebuilt pool after ``BrokenProcessPool`` —
    pays the attach-and-unpickle cost once, off the task critical path.
    """
    ref.load()


class SharedPanelOwner:
    """Parent-side owner of one shared panel block.

    Create with :meth:`allocate` (then fill :attr:`matrix` in place —
    the pivot scatters straight into the block) or :meth:`from_panel`
    (copies an existing matrix in).  Call :meth:`close` exactly once
    per study — it is idempotent — to unlink the name; live views keep
    working until their owners drop them.
    """

    def __init__(
        self, times: tuple, units: tuple[str, ...], shape: tuple[int, int]
    ) -> None:
        n_times, n_units = (int(shape[0]), int(shape[1]))
        if n_times <= 0 or n_units <= 0:
            raise PipelineError(
                f"shared panel needs a non-empty matrix, got shape {shape}"
            )
        if len(times) != n_times or len(units) != n_units:
            raise PipelineError(
                f"panel labels do not match matrix shape {shape}: "
                f"{len(times)} times, {len(units)} units"
            )
        meta = _pack_meta(tuple(times), tuple(units), (n_times, n_units))
        offset = _matrix_offset(len(meta))
        nbytes = offset + n_times * n_units * 8
        name = NAME_PREFIX + secrets.token_hex(8)
        self._shm: shared_memory.SharedMemory | None = shared_memory.SharedMemory(
            name=name, create=True, size=nbytes
        )
        self._shm.buf[:8] = len(meta).to_bytes(8, "little")
        self._shm.buf[8 : 8 + len(meta)] = meta
        self._matrix = np.ndarray(
            (n_times, n_units), dtype=np.float64, buffer=self._shm.buf, offset=offset
        )
        self._panel = Panel(times=tuple(times), units=tuple(units), matrix=self._matrix)
        _LIVE[name] = self._shm.size

    @classmethod
    def allocate(
        cls, shape: tuple[int, int], times: tuple, units: tuple[str, ...]
    ) -> "SharedPanelOwner":
        """A block whose (uninitialised) matrix the caller fills in place."""
        return cls(times=times, units=units, shape=shape)

    @classmethod
    def from_panel(cls, panel: Panel) -> "SharedPanelOwner":
        """Publish an existing panel (one matrix copy into the block)."""
        owner = cls(times=panel.times, units=panel.units, shape=panel.matrix.shape)
        np.copyto(owner.matrix, panel.matrix)
        return owner

    @property
    def name(self) -> str:
        """The block's name (its cross-process address)."""
        if self._shm is None:
            raise PipelineError("shared panel block already closed")
        return self._shm.name

    @property
    def matrix(self) -> np.ndarray:
        """Writable float64 view of the matrix region inside the block."""
        if self._shm is None:
            raise PipelineError("shared panel block already closed")
        return self._matrix

    @property
    def panel(self) -> Panel:
        """The panel, backed zero-copy by the block (parent-side use)."""
        if self._shm is None:
            raise PipelineError("shared panel block already closed")
        return self._panel

    @property
    def ref(self) -> SharedPanelRef:
        """The picklable reference tasks carry instead of the panel."""
        return SharedPanelRef(name=self.name)

    def close(self) -> None:
        """Unlink the block (idempotent); live views stay valid.

        The name disappears immediately — a later attach fails — while
        existing mappings (the parent's panel view, worker caches)
        survive until dropped, exactly the POSIX ``shm_unlink``
        contract the study teardown needs.
        """
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        # Drop our own views first — otherwise the mapping could never
        # be released even when no caller holds one.
        self._matrix = None  # type: ignore[assignment]
        self._panel = None  # type: ignore[assignment]
        _LIVE.pop(shm.name, None)
        hit = _ATTACHED.pop(shm.name, None)
        if hit is not None:
            cached, cached_panel = hit
            del cached_panel
            try:
                cached.close()
            except BufferError:
                # A caller still holds the cached view; keep the mapping
                # alive so the view stays valid (the name goes away below
                # regardless, so nothing outlives this process).
                _ATTACHED[shm.name] = (cached, _panel_from_block(cached))
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass
        try:
            shm.close()
        except BufferError:
            # The study's panel view is usually still alive here; the
            # mapping is released when the last view dies (the name is
            # already gone, so nothing leaks past this process's exit).
            self._zombie = shm

    def __enter__(self) -> "SharedPanelOwner":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False


#: Block-name prefix for arena arrays (distinct from panel blocks so the
#: leak tests can tell the two populations apart in ``/dev/shm``).
ARENA_PREFIX = "rpr-arena-"

#: Arena block names created by this process and not yet unlinked, with
#: their block sizes in bytes (same contract as ``_LIVE`` above).
_LIVE_ARENA: dict[str, int] = {}

#: Per-process attach cache for arena arrays: name -> (mapping, view).
#: A pooled worker touches the same slab blocks on every task; the
#: first load attaches, the rest hit this dict.  Entries die with the
#: worker process (pools are per-study), so no eviction policy is
#: needed beyond the owner-side pop in :meth:`SharedFrameArena.close`.
_ATTACHED_ARRAYS: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}


def live_arena_blocks() -> tuple[str, ...]:
    """Arena block names this process created and has not unlinked yet."""
    return tuple(sorted(_LIVE_ARENA))


def live_shm_bytes() -> int:
    """Total bytes of live panel + arena blocks this process owns.

    This is the byte-exact ``/dev/shm`` footprint of the blocks in
    :func:`live_panel_blocks` / :func:`live_arena_blocks` (each block's
    ``SharedMemory.size``), which the resource sampler records and the
    leak tests cross-check against the filesystem.  The dicts are
    copied before summing: the sampler thread reads while the study
    thread allocates.
    """
    return sum(dict(_LIVE).values()) + sum(dict(_LIVE_ARENA).values())


def live_shm_blocks() -> int:
    """How many live panel + arena blocks this process owns."""
    return len(_LIVE) + len(_LIVE_ARENA)


def _defuse_handle(shm: shared_memory.SharedMemory) -> None:
    """Release a block handle without unmapping under live numpy views.

    ``SharedMemory.close()`` (also run by ``__del__``) unmaps
    unconditionally on interpreters where numpy views hold no buffer
    export — any view still alive would then read freed pages.  Detaching
    the private ``_mmap``/``_buf``/``_fd`` fields makes ``close()`` a
    no-op: the descriptor is closed here, and the ``mmap`` object —
    referenced by every view's ``.base`` — unmaps itself when the last
    view is collected.  Falls back to a plain ``close()`` when the
    fields are absent (a non-CPython layout), accepting the eager unmap.
    """
    if not hasattr(shm, "_mmap"):  # pragma: no cover - unexpected layout
        try:
            shm.close()
        except BufferError:
            pass
        return
    shm._mmap = None
    shm._buf = None
    fd = getattr(shm, "_fd", -1)
    shm._fd = -1
    if fd is not None and fd >= 0:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover - already closed elsewhere
            pass


@dataclass(frozen=True)
class SharedArrayRef:
    """A picklable, zero-copy reference to one float64 array in a named block.

    Unlike the panel block there is no in-band header: the shape rides
    in the (tiny) pickled reference, so the block holds raw float64
    data only and a worker-side :meth:`load` is a bare attach plus an
    ``np.ndarray`` view.
    """

    name: str
    shape: tuple[int, ...]

    def load(self) -> np.ndarray:
        """Attach (memoised per process) and return the array view."""
        hit = _ATTACHED_ARRAYS.get(self.name)
        if hit is not None:
            if hit[1].shape != tuple(self.shape):
                raise PipelineError(
                    f"shared array block {self.name!r} is attached with "
                    f"shape {hit[1].shape} but was requested as {self.shape}"
                )
            return hit[1]
        try:
            shm = shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:
            raise PipelineError(
                f"shared array block {self.name!r} does not exist "
                "(already unlinked, or never published in this host)"
            ) from None
        nbytes = int(np.prod(self.shape, dtype=np.int64)) * 8
        if shm.size < nbytes:
            shm.close()
            raise PipelineError(
                f"shared array block {self.name!r} holds {shm.size} bytes "
                f"but shape {self.shape} needs {nbytes}"
            )
        view = np.ndarray(self.shape, dtype=np.float64, buffer=shm.buf)
        _ATTACHED_ARRAYS[self.name] = (shm, view)
        return view


class SharedFrameArena:
    """Parent-side owner of a set of named float64 shared-memory blocks.

    One arena per pipeline stage (a generated measurement frame, a CSV
    import, a study's pre-factored fit slabs): every
    :meth:`allocate` call creates one named block whose uninitialised
    array view the caller fills in place — frame columns seal straight
    into it through :meth:`column_alloc`, the pivot/fit engines write
    slabs directly.  :meth:`close` unlinks every block exactly once
    (idempotent); live views — the parent's own arrays, attached
    workers — stay valid until dropped, the same POSIX ``shm_unlink``
    contract :class:`SharedPanelOwner` relies on.
    """

    def __init__(self, tag: str = "frame") -> None:
        self._tag = str(tag)
        self._blocks: list[tuple[str, shared_memory.SharedMemory, SharedArrayRef]] = []
        self._closed = False

    def allocate(self, label: str, shape: tuple[int, ...]) -> np.ndarray:
        """A new named block's uninitialised float64 view of *shape*.

        *label* is bookkeeping only (diagnostics and :meth:`ref`
        lookup); the block name is random.  Zero-length arrays are
        valid (the block is padded to one byte — ``shared_memory``
        rejects empty blocks).
        """
        if self._closed:
            raise PipelineError(f"arena {self._tag!r} is already closed")
        shape = tuple(int(n) for n in shape)
        if any(n < 0 for n in shape):
            raise PipelineError(f"arena array {label!r} has negative shape {shape}")
        nbytes = int(np.prod(shape, dtype=np.int64)) * 8
        name = ARENA_PREFIX + secrets.token_hex(8)
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(nbytes, 1))
        _LIVE_ARENA[name] = shm.size
        ref = SharedArrayRef(name=name, shape=shape)
        view = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
        # The parent reads (and fills) through the attach cache too, so
        # a later ref.load() in-process is the same view, not a second
        # mapping of the same block.
        _ATTACHED_ARRAYS[name] = (shm, view)
        self._blocks.append((str(label), shm, ref))
        return view

    def column_alloc(self, tag: str) -> "Callable[[str, int], np.ndarray]":
        """An ``alloc(name, length)`` hook for ``FrameBuilder.build``.

        Each float column the builder seals lands in its own arena
        block labelled ``<tag>.<column>`` — the frame's numeric storage
        then lives in shared memory with no seal-time copy.
        """

        def alloc(name: str, length: int) -> np.ndarray:
            return self.allocate(f"{tag}.{name}", (length,))

        return alloc

    def ref(self, label: str) -> SharedArrayRef:
        """The picklable reference of the first block labelled *label*."""
        for block_label, _shm, ref in self._blocks:
            if block_label == label:
                return ref
        raise PipelineError(f"arena {self._tag!r} has no array labelled {label!r}")

    def refs(self) -> tuple[tuple[str, SharedArrayRef], ...]:
        """Every block's ``(label, ref)``, in allocation order."""
        return tuple((label, ref) for label, _shm, ref in self._blocks)

    @property
    def names(self) -> tuple[str, ...]:
        """Block names still owned by this arena."""
        return tuple(shm.name for _label, shm, _ref in self._blocks)

    def close(self) -> None:
        """Unlink every block (idempotent); live views stay valid.

        Sealed frame columns and prefactor slabs routinely outlive the
        arena (a generated frame is *used* after generation finishes),
        and numpy views do not register buffer exports, so an eager
        ``SharedMemory.close()`` would silently unmap pages under them.
        Instead each handle is *defused*: the name is unlinked (the
        ``/dev/shm`` entry disappears — what the leak tests assert) and
        the descriptor closed, while the mapping itself stays owned by
        the views through their ``ndarray.base -> mmap`` chain and is
        unmapped by the garbage collector when the last view dies.
        """
        if self._closed:
            return
        self._closed = True
        blocks, self._blocks = self._blocks, []
        for _label, shm, _ref in blocks:
            _LIVE_ARENA.pop(shm.name, None)
            hit = _ATTACHED_ARRAYS.pop(shm.name, None)
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink race
                pass
            _defuse_handle(shm)
            if hit is not None and hit[0] is not shm:
                # ref.load() re-attached after a cache eviction: a second,
                # independent mapping of the same block gets the same
                # treatment so its views stay valid too.
                _defuse_handle(hit[0])

    def __enter__(self) -> "SharedFrameArena":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False
