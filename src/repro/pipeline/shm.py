"""Shared-memory panel storage for zero-copy process-pool fan-out.

The process-pool study used to pickle the full :class:`~repro.synthcontrol.donor.Panel`
into every per-unit task, so the transport cost grew as
``O(tasks x panel_bytes)`` and the parallel study ran *slower* than
serial at CI scale.  This module moves the panel's numeric storage onto
:mod:`multiprocessing.shared_memory` so a task ships only a tiny named
reference:

- :class:`SharedPanelOwner` — the parent-side lifecycle handle.  It
  allocates one named block laid out as ``[meta length][pickled times /
  units / shape][float64 matrix]``, exposes the matrix region as a
  writable numpy view (so :func:`~repro.synthcontrol.donor.build_panel`
  can scatter the pivot directly into the block — no seal-time copy),
  and unlinks the block exactly once however the study exits.
- :class:`SharedPanelRef` — the picklable worker-side reference: just
  the block name.  ``load()`` attaches by name and reconstructs a
  read-only zero-copy :class:`~repro.synthcontrol.donor.Panel` view,
  memoised per process so a pooled worker running hundreds of unit
  tasks attaches (and unpickles the metadata) once.

Lifecycle rules the study pipeline relies on:

- the block is independent of any process pool, so a
  ``BrokenProcessPool`` rebuild needs no re-publication — respawned
  workers attach lazily by name;
- ``unlink`` removes the name immediately while live mappings (the
  parent's panel view, attached workers) stay valid until they are
  dropped, so teardown never races the last fits;
- every created block is tracked in :func:`live_panel_blocks` until it
  is unlinked, which is what the leak tests assert drains to empty.
"""

from __future__ import annotations

import pickle
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import PipelineError
from repro.synthcontrol.donor import Panel

#: Byte alignment of the matrix region within the block (numpy is happy
#: with any alignment, but 64 keeps the matrix cache-line aligned).
_ALIGN = 64

#: Block-name prefix; also how the leak tests recognise our blocks in
#: ``/dev/shm``.  Kept short: POSIX shm names are limited (NAME_MAX).
NAME_PREFIX = "rpr-panel-"

#: Names created by this process and not yet unlinked.
_LIVE: set[str] = set()

#: Per-process attach cache: block name -> (mapping, reconstructed panel).
#: Pool workers run many tasks against the same panel; the first task
#: attaches and unpickles the metadata, the rest hit this dict.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, Panel]] = {}


def live_panel_blocks() -> tuple[str, ...]:
    """Names of blocks this process created and has not unlinked yet."""
    return tuple(sorted(_LIVE))


def _evict_attached(keep: str | None = None) -> None:
    """Drop cached attachments other than *keep*.

    Studies use one panel block at a time, so when a worker sees a new
    name the previous study's mapping is dead weight.  A mapping whose
    panel view is still referenced elsewhere raises ``BufferError`` on
    close; it is kept (closing would invalidate live numpy views) and
    retried on the next eviction.
    """
    for name in list(_ATTACHED):
        if name == keep:
            continue
        shm, panel = _ATTACHED.pop(name)
        del panel  # drop the cache's own view before closing the mapping
        try:
            shm.close()
        except BufferError:  # a view escaped; the mapping must outlive it
            _ATTACHED[name] = (shm, _panel_from_block(shm))


def _pack_meta(times: tuple, units: tuple[str, ...], shape: tuple[int, int]) -> bytes:
    return pickle.dumps(
        {"times": times, "units": units, "shape": shape},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def _matrix_offset(meta_len: int) -> int:
    header = 8 + meta_len
    return header + (-header) % _ALIGN


def _panel_from_block(shm: shared_memory.SharedMemory) -> Panel:
    """Reconstruct the Panel stored in *shm* as a zero-copy view."""
    meta_len = int.from_bytes(bytes(shm.buf[:8]), "little")
    if not 0 < meta_len <= shm.size - 8:
        raise PipelineError(
            f"shared panel block {shm.name!r} has a corrupt header "
            f"(meta_len={meta_len}, size={shm.size})"
        )
    meta = pickle.loads(bytes(shm.buf[8 : 8 + meta_len]))
    shape = tuple(meta["shape"])
    matrix = np.ndarray(
        shape, dtype=np.float64, buffer=shm.buf, offset=_matrix_offset(meta_len)
    )
    return Panel(times=tuple(meta["times"]), units=tuple(meta["units"]), matrix=matrix)


@dataclass(frozen=True)
class SharedPanelRef:
    """A picklable, zero-copy reference to a panel in a named shared block.

    This is all a process-pool task carries: attaching by *name* in the
    worker reconstructs the full panel without copying the matrix.
    """

    name: str

    def load(self) -> Panel:
        """Attach (memoised per process) and return the panel view."""
        hit = _ATTACHED.get(self.name)
        if hit is not None:
            return hit[1]
        _evict_attached(keep=self.name)
        try:
            shm = shared_memory.SharedMemory(name=self.name)
        except FileNotFoundError:
            raise PipelineError(
                f"shared panel block {self.name!r} does not exist "
                "(already unlinked, or never published in this host)"
            ) from None
        panel = _panel_from_block(shm)
        _ATTACHED[self.name] = (shm, panel)
        return panel


def attach_shared_panel(ref: SharedPanelRef) -> None:
    """Process-pool initializer: map the shared panel before any task.

    Passed as the pool's ``initializer`` so every worker — including the
    respawned workers of a rebuilt pool after ``BrokenProcessPool`` —
    pays the attach-and-unpickle cost once, off the task critical path.
    """
    ref.load()


class SharedPanelOwner:
    """Parent-side owner of one shared panel block.

    Create with :meth:`allocate` (then fill :attr:`matrix` in place —
    the pivot scatters straight into the block) or :meth:`from_panel`
    (copies an existing matrix in).  Call :meth:`close` exactly once
    per study — it is idempotent — to unlink the name; live views keep
    working until their owners drop them.
    """

    def __init__(
        self, times: tuple, units: tuple[str, ...], shape: tuple[int, int]
    ) -> None:
        n_times, n_units = (int(shape[0]), int(shape[1]))
        if n_times <= 0 or n_units <= 0:
            raise PipelineError(
                f"shared panel needs a non-empty matrix, got shape {shape}"
            )
        if len(times) != n_times or len(units) != n_units:
            raise PipelineError(
                f"panel labels do not match matrix shape {shape}: "
                f"{len(times)} times, {len(units)} units"
            )
        meta = _pack_meta(tuple(times), tuple(units), (n_times, n_units))
        offset = _matrix_offset(len(meta))
        nbytes = offset + n_times * n_units * 8
        name = NAME_PREFIX + secrets.token_hex(8)
        self._shm: shared_memory.SharedMemory | None = shared_memory.SharedMemory(
            name=name, create=True, size=nbytes
        )
        self._shm.buf[:8] = len(meta).to_bytes(8, "little")
        self._shm.buf[8 : 8 + len(meta)] = meta
        self._matrix = np.ndarray(
            (n_times, n_units), dtype=np.float64, buffer=self._shm.buf, offset=offset
        )
        self._panel = Panel(times=tuple(times), units=tuple(units), matrix=self._matrix)
        _LIVE.add(name)

    @classmethod
    def allocate(
        cls, shape: tuple[int, int], times: tuple, units: tuple[str, ...]
    ) -> "SharedPanelOwner":
        """A block whose (uninitialised) matrix the caller fills in place."""
        return cls(times=times, units=units, shape=shape)

    @classmethod
    def from_panel(cls, panel: Panel) -> "SharedPanelOwner":
        """Publish an existing panel (one matrix copy into the block)."""
        owner = cls(times=panel.times, units=panel.units, shape=panel.matrix.shape)
        np.copyto(owner.matrix, panel.matrix)
        return owner

    @property
    def name(self) -> str:
        """The block's name (its cross-process address)."""
        if self._shm is None:
            raise PipelineError("shared panel block already closed")
        return self._shm.name

    @property
    def matrix(self) -> np.ndarray:
        """Writable float64 view of the matrix region inside the block."""
        if self._shm is None:
            raise PipelineError("shared panel block already closed")
        return self._matrix

    @property
    def panel(self) -> Panel:
        """The panel, backed zero-copy by the block (parent-side use)."""
        if self._shm is None:
            raise PipelineError("shared panel block already closed")
        return self._panel

    @property
    def ref(self) -> SharedPanelRef:
        """The picklable reference tasks carry instead of the panel."""
        return SharedPanelRef(name=self.name)

    def close(self) -> None:
        """Unlink the block (idempotent); live views stay valid.

        The name disappears immediately — a later attach fails — while
        existing mappings (the parent's panel view, worker caches)
        survive until dropped, exactly the POSIX ``shm_unlink``
        contract the study teardown needs.
        """
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        # Drop our own views first — otherwise the mapping could never
        # be released even when no caller holds one.
        self._matrix = None  # type: ignore[assignment]
        self._panel = None  # type: ignore[assignment]
        _LIVE.discard(shm.name)
        hit = _ATTACHED.pop(shm.name, None)
        if hit is not None:
            cached, cached_panel = hit
            del cached_panel
            try:
                cached.close()
            except BufferError:
                # A caller still holds the cached view; keep the mapping
                # alive so the view stays valid (the name goes away below
                # regardless, so nothing outlives this process).
                _ATTACHED[shm.name] = (cached, _panel_from_block(cached))
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass
        try:
            shm.close()
        except BufferError:
            # The study's panel view is usually still alive here; the
            # mapping is released when the last view dies (the name is
            # already gone, so nothing leaks past this process's exit).
            self._zombie = shm

    def __enter__(self) -> "SharedPanelOwner":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False
