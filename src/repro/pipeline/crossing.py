"""IXP-crossing detection and treatment timing.

Mirrors the paper's method: a measurement "crosses the IXP" when any
post-test traceroute hop IP matches an address the exchange announces;
a unit's *treatment time* is the first hour at which its measurements
start crossing.  Works from the measurement frame (string-matching the
``ixps`` column) so the logic is identical whether data came from the
simulator or from CSV-imported real measurements.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro.errors import FrameError
from repro.frames.frame import Frame
from repro.obs import span

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class TreatmentAssignment:
    """When (if ever) each unit first crossed the exchange.

    Attributes
    ----------
    ixp_name:
        The exchange analysed.
    first_crossing_hour:
        ``{unit_label: hour}`` for units that ever crossed.
    never_crossed:
        Unit labels that never crossed (the donor-pool candidates).
    """

    ixp_name: str
    first_crossing_hour: dict[str, float]
    never_crossed: tuple[str, ...]

    @property
    def treated_units(self) -> list[str]:
        """Units with a first-crossing time, sorted by that time."""
        return sorted(self.first_crossing_hour, key=lambda u: self.first_crossing_hour[u])

    def is_treated(self, unit: str) -> bool:
        """Whether the unit ever crossed the exchange."""
        return unit in self.first_crossing_hour


def _token_match(value: object, ixp_name: str) -> bool:
    """Whether one comma-joined ``ixps`` cell names the exchange."""
    return ixp_name in str(value).split(",") if value else False


def crossing_mask(frame: Frame, ixp_name: str) -> np.ndarray:
    """Boolean mask of rows whose traceroute crossed *ixp_name*.

    The ``ixps`` column holds comma-joined exchange names (possibly
    empty); exact token matching avoids substring false positives.  The
    column carries few distinct strings, so the rows are factorized once
    and the split/match runs per distinct value, not per row.
    """
    if "ixps" not in frame:
        raise FrameError("frame has no 'ixps' column; is this a measurement frame?")
    column = frame.column("ixps")
    codes, uniques = column.factorize()
    per_unique = np.array(
        [_token_match(v, ixp_name) for v in uniques], dtype=bool
    )
    if not len(uniques):
        return np.zeros(frame.num_rows, dtype=bool)
    return per_unique[codes]


def assign_treatment(
    frame: Frame,
    ixp_name: str,
    min_crossing_share: float = 0.5,
    window_hours: float = 24.0,
) -> TreatmentAssignment:
    """Find each unit's first *sustained* crossing of the exchange.

    A unit counts as treated from the first measurement hour after which
    at least *min_crossing_share* of its measurements in the following
    *window_hours* cross the exchange — a debouncing rule so a single
    transient detour does not flip a unit's status (the paper's "begin
    crossing" is likewise persistent membership, not a one-off).
    """
    if not 0 < min_crossing_share <= 1:
        raise FrameError("min_crossing_share must be in (0, 1]")
    with span("assignment", ixp=ixp_name, rows=frame.num_rows) as sp:
        result = _assign_treatment(frame, ixp_name, min_crossing_share, window_hours)
        sp.set(
            treated=len(result.first_crossing_hour),
            never_crossed=len(result.never_crossed),
        )
    logger.debug(
        "treatment assignment over %d rows: %d treated, %d never crossed %s",
        frame.num_rows,
        len(result.first_crossing_hour),
        len(result.never_crossed),
        ixp_name,
    )
    return result


def _assign_treatment(
    frame: Frame,
    ixp_name: str,
    min_crossing_share: float,
    window_hours: float,
) -> TreatmentAssignment:
    crosses = crossing_mask(frame, ixp_name)
    unit_col = frame.column("unit")
    hours = frame.numeric("time_hour")

    # Factorize units once, merge codes that share a string label (the
    # historical scan compared str(u)), and sort every row by
    # (unit, hour) in one pass — no per-unit O(rows) mask rebuilds.
    codes, uniques = unit_col.factorize()
    labels = [str(u) for u in uniques]
    names = sorted(set(labels))
    gid_of_name = {name: g for g, name in enumerate(names)}
    gid_of_code = np.array([gid_of_name[lab] for lab in labels], dtype=np.int64)
    gids = gid_of_code[codes] if len(codes) else np.empty(0, dtype=np.int64)

    # Radix-sort by unit code (stable argsort on int64), then order each
    # unit's slice by hour separately — cheaper than one global lexsort,
    # and the tie order among equal hours is immaterial: the debounce
    # windows cut on hour *values*, so they always cover whole equal-hour
    # runs and the share test sees the same counts either way.
    order = np.argsort(gids, kind="stable")
    hours_g = hours[order]
    crosses_g = crosses[order]
    bounds = np.searchsorted(
        gids[order], np.arange(len(names) + 1, dtype=np.int64), side="left"
    )

    first: dict[str, float] = {}
    never: list[str] = []
    for g, unit in enumerate(names):
        start, end = bounds[g], bounds[g + 1]
        slice_hours = hours_g[start:end]
        hour_order = np.argsort(slice_hours)
        candidate = _first_sustained_crossing(
            slice_hours[hour_order],
            crosses_g[start:end][hour_order],
            min_crossing_share,
            window_hours,
        )
        if candidate is None:
            never.append(unit)
        else:
            first[unit] = candidate
    return TreatmentAssignment(
        ixp_name=ixp_name,
        first_crossing_hour=first,
        never_crossed=tuple(never),
    )


def _first_sustained_crossing(
    unit_hours: np.ndarray,
    unit_cross: np.ndarray,
    min_crossing_share: float,
    window_hours: float,
) -> float | None:
    """Earliest crossing hour whose forward window clears the share test.

    *unit_hours* must be sorted ascending.  The debounce windows of every
    crossing row are evaluated at once: window edges come from two
    ``searchsorted`` calls and the in-window crossing counts from a
    cumulative sum, replacing the per-candidate mask scans.
    """
    cross_pos = np.flatnonzero(unit_cross)
    if not len(cross_pos):
        return None
    t0 = unit_hours[cross_pos]
    win_start = np.searchsorted(unit_hours, t0, side="left")
    win_end = np.searchsorted(unit_hours, t0 + window_hours, side="left")
    counts = win_end - win_start
    cum = np.cumsum(unit_cross.astype(np.int64))
    in_window = np.where(counts > 0, cum[np.maximum(win_end - 1, 0)], 0) - np.where(
        win_start > 0, cum[np.minimum(win_start, len(cum)) - 1], 0
    )
    valid = counts > 0
    shares = np.divide(
        in_window, counts, out=np.zeros(len(counts)), where=valid
    )
    ok = valid & (shares >= min_crossing_share)
    if not ok.any():
        return None
    return float(t0[int(np.argmax(ok))])
