"""IXP-crossing detection and treatment timing.

Mirrors the paper's method: a measurement "crosses the IXP" when any
post-test traceroute hop IP matches an address the exchange announces;
a unit's *treatment time* is the first hour at which its measurements
start crossing.  Works from the measurement frame (string-matching the
``ixps`` column) so the logic is identical whether data came from the
simulator or from CSV-imported real measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FrameError
from repro.frames.frame import Frame


@dataclass(frozen=True)
class TreatmentAssignment:
    """When (if ever) each unit first crossed the exchange.

    Attributes
    ----------
    ixp_name:
        The exchange analysed.
    first_crossing_hour:
        ``{unit_label: hour}`` for units that ever crossed.
    never_crossed:
        Unit labels that never crossed (the donor-pool candidates).
    """

    ixp_name: str
    first_crossing_hour: dict[str, float]
    never_crossed: tuple[str, ...]

    @property
    def treated_units(self) -> list[str]:
        """Units with a first-crossing time, sorted by that time."""
        return sorted(self.first_crossing_hour, key=lambda u: self.first_crossing_hour[u])

    def is_treated(self, unit: str) -> bool:
        """Whether the unit ever crossed the exchange."""
        return unit in self.first_crossing_hour


def crossing_mask(frame: Frame, ixp_name: str) -> np.ndarray:
    """Boolean mask of rows whose traceroute crossed *ixp_name*.

    The ``ixps`` column holds comma-joined exchange names (possibly
    empty); exact token matching avoids substring false positives.
    """
    if "ixps" not in frame:
        raise FrameError("frame has no 'ixps' column; is this a measurement frame?")
    ixps = frame.column("ixps").values
    return np.array(
        [ixp_name in str(v).split(",") if v else False for v in ixps], dtype=bool
    )


def assign_treatment(
    frame: Frame,
    ixp_name: str,
    min_crossing_share: float = 0.5,
    window_hours: float = 24.0,
) -> TreatmentAssignment:
    """Find each unit's first *sustained* crossing of the exchange.

    A unit counts as treated from the first measurement hour after which
    at least *min_crossing_share* of its measurements in the following
    *window_hours* cross the exchange — a debouncing rule so a single
    transient detour does not flip a unit's status (the paper's "begin
    crossing" is likewise persistent membership, not a one-off).
    """
    if not 0 < min_crossing_share <= 1:
        raise FrameError("min_crossing_share must be in (0, 1]")
    crosses = crossing_mask(frame, ixp_name)
    units = frame.column("unit").values
    hours = frame.numeric("time_hour")

    first: dict[str, float] = {}
    never: list[str] = []
    for unit in sorted({str(u) for u in units}):
        sel = np.array([str(u) == unit for u in units])
        unit_hours = hours[sel]
        unit_cross = crosses[sel]
        order = np.argsort(unit_hours)
        unit_hours = unit_hours[order]
        unit_cross = unit_cross[order]
        candidate = None
        for i in np.flatnonzero(unit_cross):
            t0 = unit_hours[i]
            in_window = (unit_hours >= t0) & (unit_hours < t0 + window_hours)
            if in_window.sum() == 0:
                continue
            share = float(unit_cross[in_window].mean())
            if share >= min_crossing_share:
                candidate = float(t0)
                break
        if candidate is None:
            never.append(unit)
        else:
            first[unit] = candidate
    return TreatmentAssignment(
        ixp_name=ixp_name,
        first_crossing_hour=first,
        never_crossed=tuple(never),
    )
