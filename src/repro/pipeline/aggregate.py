"""Aggregation of raw measurements into analysis panels.

The paper analyses median RTT per ⟨ASN, city⟩ per period.  These
helpers reduce a measurement frame to a long table of per-unit
per-period medians and hand it to
:func:`repro.synthcontrol.build_panel` for pivoting.
"""

from __future__ import annotations

import logging

import numpy as np

from repro.errors import FrameError
from repro.frames.frame import Frame
from repro.frames.groupby import group_by
from repro.obs import span
from repro.synthcontrol.donor import Panel, build_panel

logger = logging.getLogger(__name__)


def daily_median_rtt(frame: Frame) -> Frame:
    """Collapse measurements to per-unit daily median RTT.

    Returns columns ``unit, day, rtt_median, n_tests``.
    """
    for col in ("unit", "day", "rtt_ms"):
        if col not in frame:
            raise FrameError(f"measurement frame is missing column {col!r}")
    return group_by(frame, ["unit", "day"]).aggregate(
        rtt_median=("rtt_ms", "median"),
        n_tests=("rtt_ms", "count"),
    )


def rtt_panel(
    frame: Frame,
    period: str = "day",
    outcome: str = "rtt_ms",
    matrix_factory=None,
) -> Panel:
    """Pivot a measurement frame into a (periods x units) median-outcome panel.

    *outcome* defaults to RTT; pass ``"download_mbps"`` for the
    throughput variant of the analysis.  *matrix_factory* is forwarded
    to :func:`repro.synthcontrol.donor.build_panel` — the parallel
    study uses it to seal the panel matrix directly into a
    shared-memory block.
    """
    if period not in ("day", "time_hour"):
        raise FrameError(f"unknown period column {period!r}")
    if outcome not in frame:
        raise FrameError(f"measurement frame has no outcome column {outcome!r}")
    with span("panel", rows=frame.num_rows, period=period, outcome=outcome) as sp:
        panel = build_panel(
            frame,
            unit="unit",
            time=period,
            outcome=outcome,
            agg="median",
            matrix_factory=matrix_factory,
        )
        sp.set(times=panel.n_times, units=panel.n_units)
    logger.debug(
        "built %s panel: %d times x %d units from %d rows",
        outcome,
        panel.n_times,
        panel.n_units,
        frame.num_rows,
    )
    return panel


def measurement_volume(frame: Frame) -> Frame:
    """Tests per unit (a sampling-bias diagnostic): ``unit, n_tests, days``."""
    return group_by(frame, "unit").aggregate(
        n_tests=("rtt_ms", "count"),
        days=("day", "nunique"),
        rtt_median=("rtt_ms", "median"),
    )


def completeness(panel: Panel) -> dict[str, float]:
    """Share of non-missing cells per unit of a panel."""
    return {
        unit: 1.0 - float(np.mean(~np.isfinite(panel.series(unit))))
        for unit in panel.units
    }
