"""repro — causal inference for Internet measurement.

A full reproduction of "The Internet as Sisyphus: Repeating
Measurements, Missing Causes" (HotNets '25): the causal-inference
toolkit the paper advocates (DAGs, backdoor/frontdoor adjustment,
instrumental variables, synthetic controls, counterfactual SCMs), the
measurement-design machinery of its §4 (causal protocols, planners,
intent tags, conditional triggers, exogenous knobs), and a simulated
Internet + M-Lab-style platform standing in for the live data so that
Table 1 and every boxed example run offline with checkable ground
truth.

Subpackages
-----------
``repro.frames``
    Columnar data substrate (the pandas stand-in).
``repro.graph``
    Causal DAGs, d-separation, identification criteria.
``repro.scm``
    Structural causal models: sampling, do(), counterfactuals.
``repro.estimators``
    Adjustment, IPW, matching, IV, DiD, bootstrap.
``repro.synthcontrol``
    Classic and robust synthetic control with placebo inference.
``repro.netsim``
    The simulated Internet: topology, BGP, congestion, latency, events.
``repro.mplatform``
    Measurement platforms: speed tests, probes, load balancer, §4 knobs.
``repro.pipeline``
    Measurements -> Table 1 (crossing detection, panels, study runner).
``repro.studies``
    The paper's experiments, runnable.
``repro.design``
    Causal protocols, measurement planning, assumption checklists.
``repro.obs``
    Pipeline observability: spans, metrics, structured logging.
"""

from repro.errors import (
    EstimationError,
    FrameError,
    GraphError,
    IdentificationError,
    PipelineError,
    PlatformError,
    ReproError,
    SimulationError,
)
from repro.obs.logs import install_null_handler

# Library hygiene: repro modules log through logging.getLogger(__name__)
# and stay silent unless the application configures handlers.
install_null_handler()

__version__ = "1.0.0"

__all__ = [
    "EstimationError",
    "FrameError",
    "GraphError",
    "IdentificationError",
    "PipelineError",
    "PlatformError",
    "ReproError",
    "SimulationError",
    "__version__",
]
