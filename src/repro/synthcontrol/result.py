"""Result types for synthetic-control analyses."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class SyntheticControlFit:
    """A fitted synthetic control for one treated unit.

    Attributes
    ----------
    treated_name:
        Label of the treated unit.
    donor_names:
        Labels of donor-pool units, aligned with :attr:`weights`.
    weights:
        Donor combination weights.
    pre_periods, post_periods:
        Number of time points before/after the intervention.
    observed:
        The treated unit's full observed series.
    synthetic:
        The synthetic counterfactual series (same length).
    method:
        ``"classic"`` (Abadie simplex weights) or ``"robust"`` (Amjad et
        al. denoised regression).
    """

    treated_name: str
    donor_names: tuple[str, ...]
    weights: np.ndarray = field(repr=False)
    pre_periods: int
    post_periods: int
    observed: np.ndarray = field(repr=False)
    synthetic: np.ndarray = field(repr=False)
    method: str

    @property
    def gaps(self) -> np.ndarray:
        """Observed minus synthetic, over the whole horizon."""
        return self.observed - self.synthetic

    @property
    def pre_gaps(self) -> np.ndarray:
        """Fit error before the intervention."""
        return self.gaps[: self.pre_periods]

    @property
    def post_gaps(self) -> np.ndarray:
        """Estimated per-period effect after the intervention."""
        return self.gaps[self.pre_periods:]

    @property
    def effect(self) -> float:
        """Average post-period gap: the estimated treatment effect."""
        post = self.post_gaps[np.isfinite(self.post_gaps)]
        return float(np.mean(post)) if post.size else float("nan")

    @property
    def pre_rmse(self) -> float:
        """Root-mean-squared pre-period fit error."""
        pre = self.pre_gaps[np.isfinite(self.pre_gaps)]
        return float(np.sqrt(np.mean(pre**2))) if pre.size else float("nan")

    @property
    def post_rmse(self) -> float:
        """Root-mean-squared post-period gap."""
        post = self.post_gaps[np.isfinite(self.post_gaps)]
        return float(np.sqrt(np.mean(post**2))) if post.size else float("nan")

    @property
    def rmse_ratio(self) -> float:
        """Post/pre RMSE ratio — Table 1's divergence diagnostic.

        Large values mean the unit departed from its donor-implied path
        after the event far more than the model misfit before it.
        """
        pre = self.pre_rmse
        if not np.isfinite(pre) or pre == 0:
            return float("inf")
        return self.post_rmse / pre

    def top_donors(self, k: int = 5) -> list[tuple[str, float]]:
        """The *k* largest-|weight| donors as (name, weight) pairs."""
        order = np.argsort(-np.abs(self.weights))[:k]
        return [(self.donor_names[i], float(self.weights[i])) for i in order]

    def __str__(self) -> str:
        return (
            f"SyntheticControl[{self.method}] {self.treated_name}: "
            f"effect={self.effect:+.3f}, pre_rmse={self.pre_rmse:.3f}, "
            f"rmse_ratio={self.rmse_ratio:.3f}, "
            f"{len(self.donor_names)} donors"
        )


@dataclass(frozen=True)
class PlaceboSummary:
    """Placebo-based inference for one treated unit (Table 1 row).

    Attributes
    ----------
    fit:
        The treated unit's synthetic-control fit.
    placebo_rmse_ratios:
        RMSE ratios from refitting each donor as a pseudo-treated unit.
    p_value:
        Share of placebo RMSE ratios at least as large as the treated
        unit's (add-one convention) — the paper's placebo p.
    skipped_placebos:
        ``(donor_name, reason)`` pairs for placebo refits that failed
        (degenerate pre-fit, donor-pool error, ...) and therefore do
        not enter the p-value's denominator.
    """

    fit: SyntheticControlFit
    placebo_rmse_ratios: tuple[float, ...]
    p_value: float
    skipped_placebos: tuple[tuple[str, str], ...] = ()

    @property
    def n_placebos_skipped(self) -> int:
        """How many placebo refits failed and were excluded."""
        return len(self.skipped_placebos)

    @property
    def significant_at_10pct(self) -> bool:
        """Whether the placebo p-value is below 0.10 (the paper's marginal bar)."""
        return self.p_value < 0.10

    def __str__(self) -> str:
        skipped = (
            f", {self.n_placebos_skipped} skipped" if self.skipped_placebos else ""
        )
        return (
            f"{self.fit.treated_name}: effect={self.fit.effect:+.2f}, "
            f"rmse_ratio={self.fit.rmse_ratio:.1f}, p={self.p_value:.3f} "
            f"({len(self.placebo_rmse_ratios)} placebos{skipped})"
        )
