"""Warm-start helpers for streaming robust synthetic control.

The streaming engine refreshes a treated unit's estimate after every
ingestion batch.  A full refresh would re-run
:func:`~repro.synthcontrol.robust.factor_donor_matrix` — an SVD of the
whole ``T x J`` donor matrix — per touched unit per batch.  But a batch
that only *appends* panel rows leaves the old block of the filled
matrix byte-identical, so the new SVD follows from the old one plus the
appended rows via the SVD of a small ``(k + dt) x J`` core::

    [A]   [U  0] [S Vt]
    [B] = [0  I] [ B  ]

where ``A = U S Vt`` is the old thin SVD and ``B`` the new rows.  The
left factor has orthonormal columns, so the SVD of the stacked core
``[S Vt; B]`` yields the SVD of the extended matrix after one
``(T + dt) x k`` product.  The core SVD costs ``O((k + dt)^2 J)``
instead of ``O(T J^2)``, which is what keeps a touched unit's refresh
at millisecond scale however long the stream runs.

Exactness caveat: the identity needs the old block of the *filled*
matrix to be unchanged — no old cell edited, and no old cell imputed
(appending rows shifts column means, which would retroactively change
previously imputed cells).  :func:`extend_factorization` raises
:class:`~repro.errors.EstimationError` in those cases and the caller
falls back to a cold :func:`~repro.synthcontrol.robust.factor_donor_matrix`.

:func:`live_placebo_ratios` is the matching inference loop: the same
math as the batch placebo engine (one batched leave-one-out de-noising,
one ridge refit per pseudo-treated donor, the same skip screens) minus
the per-refit span/metric/fault bookkeeping, which would dominate a
millisecond refresh.  Live rows are advisory — the engine's finalize
pass re-runs the fully instrumented batch loop for the exact table.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DonorPoolError, EstimationError
from repro.synthcontrol.robust import (
    DonorFactorization,
    denoise_leave_one_out,
    fit_from_denoised,
)


def extend_factorization(
    fact: DonorFactorization, new_rows: np.ndarray
) -> DonorFactorization:
    """Warm-start the donor SVD after appending *new_rows* to the panel.

    Returns the :class:`DonorFactorization` of
    ``vstack([fact's matrix, new_rows])``, computed from the existing
    thin SVD plus an SVD of the small stacked core (see module
    docstring).  NaN cells in *new_rows* are mean-imputed like the cold
    path.  Raises :class:`EstimationError` when the warm start would be
    inexact — the old block contains imputed cells, whose fill values
    would shift with the new column means — and :class:`DonorPoolError`
    on shape mismatches or an all-missing new column.
    """
    new_rows = np.atleast_2d(np.asarray(new_rows, dtype=float))
    if new_rows.ndim != 2 or new_rows.shape[1] != fact.n_donors:
        raise DonorPoolError(
            f"new rows must be 2-D with {fact.n_donors} columns, "
            f"got shape {new_rows.shape}"
        )
    if new_rows.shape[0] == 0:
        return fact
    if int(fact.finite_counts.sum()) != fact.n_times * fact.n_donors:
        raise EstimationError(
            "old donor block has imputed cells; appending rows would "
            "retroactively change their fill values — refactor cold"
        )
    finite = np.isfinite(new_rows)
    finite_counts = fact.finite_counts + finite.sum(axis=0)
    # Old block is fully observed, so its sum is recoverable from the
    # old means without touching the raw history.
    sums = fact.col_means * fact.n_times + np.where(finite, new_rows, 0.0).sum(axis=0)
    col_means = sums / finite_counts
    filled_new = np.where(finite, new_rows, col_means)
    core = np.vstack([fact.s[:, None] * fact.vt, filled_new])
    u_core, s, vt = np.linalg.svd(core, full_matrices=False)
    k = fact.u.shape[1]
    u = np.vstack([fact.u @ u_core[:k], u_core[k:]])
    return DonorFactorization(
        filled=np.vstack([fact.filled, filled_new]),
        col_means=col_means,
        finite_counts=np.asarray(finite_counts, dtype=int),
        u=u,
        s=s,
        vt=vt,
    )


def live_placebo_ratios(
    fact: DonorFactorization,
    donors: np.ndarray,
    donor_names: tuple[str, ...],
    pre_periods: int,
    *,
    energy: float = 0.99,
    ridge: float = 1e-2,
    min_pre_rmse: float = 1e-9,
    limit: int | None = None,
) -> tuple[list[float], int]:
    """Span-free placebo RMSE ratios for a live (mid-stream) refresh.

    Mirrors the batch loop's math and skip semantics — estimation
    failures, degenerate pre-fits (``pre_rmse < min_pre_rmse``), and
    non-finite ratios are dropped — without its per-refit span, metric,
    and fault-injection hooks.  Returns ``(ratios, n_skipped)`` with
    ratios in donor order.
    """
    j = donors.shape[1]
    n = j if limit is None else max(0, min(int(limit), j))
    if n == 0 or j < 2:
        return [], 0
    loo = denoise_leave_one_out(fact, energy=energy, limit=n)
    ratios: list[float] = []
    skipped = 0
    for col in range(n):
        denoised, _rank = loo[col]
        rest_names = tuple(nm for i, nm in enumerate(donor_names) if i != col)
        try:
            placebo_fit = fit_from_denoised(
                donors[:, col],
                denoised,
                pre_periods,
                f"placebo:{donor_names[col]}",
                rest_names,
                ridge=ridge,
            )
        except (DonorPoolError, EstimationError):
            skipped += 1
            continue
        if placebo_fit.pre_rmse < min_pre_rmse or not np.isfinite(
            placebo_fit.rmse_ratio
        ):
            skipped += 1
            continue
        ratios.append(float(placebo_fit.rmse_ratio))
    return ratios, skipped
