"""Classic (Abadie-style) synthetic control.

Finds convex donor weights w (w_i >= 0, sum w = 1) minimizing the
pre-intervention fit ``|| y_pre - D_pre w ||_2`` and extrapolates the
weighted donor combination through the post period.  Solved with
``scipy.optimize.nnls`` on an augmented system that (softly) enforces
the sum-to-one constraint, then renormalised — accurate and fast for the
donor-pool sizes the pipeline produces.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.optimize import nnls

from repro.errors import DonorPoolError, EstimationError
from repro.synthcontrol.result import SyntheticControlFit


def _validate_panel(
    treated: np.ndarray, donors: np.ndarray, pre_periods: int
) -> tuple[np.ndarray, np.ndarray]:
    treated = np.asarray(treated, dtype=float)
    donors = np.asarray(donors, dtype=float)
    if donors.ndim != 2:
        raise DonorPoolError(f"donor matrix must be 2-D (T x J), got shape {donors.shape}")
    if treated.ndim != 1 or len(treated) != donors.shape[0]:
        raise DonorPoolError(
            f"treated series length {treated.shape} must match donor rows {donors.shape[0]}"
        )
    if donors.shape[1] == 0:
        raise DonorPoolError("donor pool is empty")
    if not 1 <= pre_periods < len(treated):
        raise EstimationError(
            f"pre_periods must be in [1, {len(treated) - 1}], got {pre_periods}"
        )
    return treated, donors


def fit_simplex_weights(
    y_pre: np.ndarray, donors_pre: np.ndarray, sum_penalty: float = 1e3
) -> np.ndarray:
    """Nonnegative weights approximately summing to one, best pre-fit.

    Solves ``min_w || A w - b ||`` with A the donor pre-matrix augmented
    by a heavily weighted all-ones row (pushing sum(w) -> 1) under
    w >= 0, then renormalises exactly.
    """
    t_pre, j = donors_pre.shape
    finite = np.isfinite(y_pre) & np.all(np.isfinite(donors_pre), axis=1)
    if finite.sum() < 2:
        raise EstimationError("need >= 2 finite pre-period rows to fit weights")
    a = np.vstack([donors_pre[finite], sum_penalty * np.ones((1, j))])
    b = np.concatenate([y_pre[finite], [sum_penalty]])
    weights, _ = nnls(a, b)
    total = weights.sum()
    if total <= 0:
        raise EstimationError("degenerate simplex fit: all weights zero")
    return weights / total


def classic_synthetic_control(
    treated: np.ndarray,
    donors: np.ndarray,
    pre_periods: int,
    treated_name: str = "treated",
    donor_names: Sequence[str] | None = None,
) -> SyntheticControlFit:
    """Fit an Abadie-style synthetic control.

    Parameters
    ----------
    treated:
        The treated unit's outcome series, length T.
    donors:
        T x J matrix of donor outcome series (columns are donors).
    pre_periods:
        Number of leading periods before the intervention.
    """
    treated, donors = _validate_panel(treated, donors, pre_periods)
    names = _donor_names(donor_names, donors.shape[1])
    weights = fit_simplex_weights(treated[:pre_periods], donors[:pre_periods])
    synthetic = _combine(donors, weights)
    return SyntheticControlFit(
        treated_name=treated_name,
        donor_names=names,
        weights=weights,
        pre_periods=pre_periods,
        post_periods=len(treated) - pre_periods,
        observed=treated,
        synthetic=synthetic,
        method="classic",
    )


def _combine(donors: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Weighted donor combination, tolerating missing donor cells.

    Cells where a donor is NaN are dropped for that time step and the
    remaining weights renormalised, so one donor's outage does not
    poison the synthetic series.
    """
    t = donors.shape[0]
    out = np.empty(t)
    for i in range(t):
        row = donors[i]
        ok = np.isfinite(row)
        if not ok.any():
            out[i] = np.nan
            continue
        w = weights[ok]
        total = w.sum()
        out[i] = float(row[ok] @ w / total) if total > 0 else np.nan
    return out


def _donor_names(names: Sequence[str] | None, j: int) -> tuple[str, ...]:
    if names is None:
        return tuple(f"donor_{i}" for i in range(j))
    if len(names) != j:
        raise DonorPoolError(f"{len(names)} donor names for {j} donors")
    return tuple(names)
