"""Fit-quality diagnostics and assumption checks for synthetic control.

The paper lists three conditions (Abadie 2021): no interference within
the donor pool, good pre-change fit, and no coinciding shocks.  These
helpers quantify the second and flag violations of the first two that
are visible in the data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synthcontrol.result import SyntheticControlFit


@dataclass(frozen=True)
class FitDiagnostics:
    """Quantitative fit-quality report for one synthetic-control fit."""

    pre_rmse: float
    post_rmse: float
    rmse_ratio: float
    pre_correlation: float
    pre_relative_rmse: float
    weight_concentration: float
    n_effective_donors: float

    def __str__(self) -> str:
        return (
            f"pre_rmse={self.pre_rmse:.3f} (rel {self.pre_relative_rmse:.2%}), "
            f"rmse_ratio={self.rmse_ratio:.2f}, pre_corr={self.pre_correlation:.3f}, "
            f"effective_donors={self.n_effective_donors:.1f}"
        )


def diagnose(fit: SyntheticControlFit) -> FitDiagnostics:
    """Compute fit diagnostics for a synthetic-control result."""
    pre_obs = fit.observed[: fit.pre_periods]
    pre_syn = fit.synthetic[: fit.pre_periods]
    ok = np.isfinite(pre_obs) & np.isfinite(pre_syn)
    if ok.sum() >= 3 and pre_obs[ok].std() > 0 and pre_syn[ok].std() > 0:
        corr = float(np.corrcoef(pre_obs[ok], pre_syn[ok])[0, 1])
    else:
        corr = float("nan")
    scale = float(np.mean(np.abs(pre_obs[ok]))) if ok.any() else float("nan")
    rel = fit.pre_rmse / scale if scale and np.isfinite(scale) and scale > 0 else float("nan")

    w = np.abs(fit.weights)
    total = w.sum()
    if total > 0:
        shares = w / total
        concentration = float(np.max(shares))
        n_eff = float(1.0 / np.sum(shares**2))
    else:
        concentration = float("nan")
        n_eff = 0.0
    return FitDiagnostics(
        pre_rmse=fit.pre_rmse,
        post_rmse=fit.post_rmse,
        rmse_ratio=fit.rmse_ratio,
        pre_correlation=corr,
        pre_relative_rmse=rel,
        weight_concentration=concentration,
        n_effective_donors=n_eff,
    )


def check_assumptions(
    fit: SyntheticControlFit,
    max_pre_relative_rmse: float = 0.15,
    min_pre_correlation: float = 0.5,
    max_weight_concentration: float = 0.9,
) -> list[str]:
    """Return human-readable warnings for violated preconditions.

    Empty list means no red flags.  Thresholds are deliberately loose
    defaults; studies should tighten them to taste.
    """
    diag = diagnose(fit)
    warnings: list[str] = []
    if np.isfinite(diag.pre_relative_rmse) and diag.pre_relative_rmse > max_pre_relative_rmse:
        warnings.append(
            f"poor pre-change fit: relative pre-RMSE {diag.pre_relative_rmse:.1%} "
            f"exceeds {max_pre_relative_rmse:.0%} — the synthetic path does not "
            "track the treated path before the event"
        )
    if np.isfinite(diag.pre_correlation) and diag.pre_correlation < min_pre_correlation:
        warnings.append(
            f"weak pre-period correlation ({diag.pre_correlation:.2f} < "
            f"{min_pre_correlation}) between observed and synthetic series"
        )
    if np.isfinite(diag.weight_concentration) and (
        diag.weight_concentration > max_weight_concentration
    ):
        warnings.append(
            f"synthetic control is dominated by a single donor "
            f"(top weight share {diag.weight_concentration:.0%}); interference "
            "with that one donor would invalidate the counterfactual"
        )
    if fit.post_periods == 0:
        warnings.append("no post-intervention periods: effect is undefined")
    return warnings
