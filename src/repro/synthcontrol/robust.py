"""Robust synthetic control (Amjad, Shah & Shen, JMLR 2018).

The method the paper's Table 1 uses.  Two stages:

1. **De-noising**: stack the donor panel into a matrix, impute missing
   cells with zero (after centring), take its SVD, and keep only the
   singular values above a threshold — recovering a low-rank estimate of
   the latent signal under noise and missingness.
2. **Regression**: fit the treated unit's pre-period on the *denoised*
   donor pre-matrix with ridge-regularized least squares (weights are
   unconstrained — no simplex restriction).

The counterfactual is the denoised donor panel projected through the
learned weights.  Compared to the classic method it tolerates noisy and
partially missing donor series, which is why the paper picks it for
M-Lab's irregular user-initiated sampling.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import DonorPoolError, EstimationError
from repro.synthcontrol.classic import _donor_names, _validate_panel
from repro.synthcontrol.result import SyntheticControlFit


def singular_value_threshold(
    matrix: np.ndarray, energy: float = 0.99, min_rank: int = 1
) -> tuple[np.ndarray, int]:
    """Hard-threshold the SVD of *matrix*, keeping *energy* of the spectrum.

    Missing (NaN) cells are filled with the column mean before the SVD —
    the standard mean-imputation step of robust synthetic control.
    Returns ``(denoised_matrix, rank_kept)``.
    """
    if not 0 < energy <= 1:
        raise EstimationError(f"energy must be in (0, 1], got {energy}")
    filled = matrix.copy().astype(float)
    col_means = np.zeros(filled.shape[1])
    for j in range(filled.shape[1]):
        col = filled[:, j]
        ok = np.isfinite(col)
        if not ok.any():
            raise DonorPoolError(f"donor column {j} is entirely missing")
        col_means[j] = col[ok].mean()
        col[~ok] = col_means[j]
    # Proportion of observed entries rescales the spectrum (Amjad et al. §3).
    p_obs = float(np.isfinite(matrix).mean())
    u, s, vt = np.linalg.svd(filled, full_matrices=False)
    if s.sum() == 0:
        return filled, 0
    cum = np.cumsum(s**2) / np.sum(s**2)
    rank = int(np.searchsorted(cum, energy) + 1)
    rank = max(rank, min_rank)
    rank = min(rank, len(s))
    denoised = (u[:, :rank] * s[:rank]) @ vt[:rank]
    if 0 < p_obs < 1:
        # Rescale to undo the shrinkage mean-filling introduces.
        denoised = col_means + (denoised - col_means) / p_obs
    return denoised, rank


def ridge_weights(
    y_pre: np.ndarray, donors_pre: np.ndarray, ridge: float = 1e-2
) -> np.ndarray:
    """Unconstrained ridge-regularized regression weights on the pre-period."""
    finite = np.isfinite(y_pre)
    if finite.sum() < 2:
        raise EstimationError("need >= 2 finite pre-period treated values")
    a = donors_pre[finite]
    b = y_pre[finite]
    j = a.shape[1]
    lhs = a.T @ a + ridge * np.eye(j)
    rhs = a.T @ b
    try:
        return np.linalg.solve(lhs, rhs)
    except np.linalg.LinAlgError:  # pragma: no cover - ridge should prevent this
        return np.linalg.lstsq(a, b, rcond=None)[0]


def robust_synthetic_control(
    treated: np.ndarray,
    donors: np.ndarray,
    pre_periods: int,
    treated_name: str = "treated",
    donor_names: Sequence[str] | None = None,
    energy: float = 0.99,
    ridge: float = 1e-2,
) -> SyntheticControlFit:
    """Fit robust synthetic control on a T x J donor panel.

    Parameters
    ----------
    treated, donors, pre_periods:
        As in :func:`~repro.synthcontrol.classic.classic_synthetic_control`;
        donor cells may be NaN.
    energy:
        Fraction of squared singular-value mass retained by the
        hard-threshold de-noising step.
    ridge:
        L2 penalty of the second-stage regression.
    """
    treated, donors = _validate_panel(treated, donors, pre_periods)
    names = _donor_names(donor_names, donors.shape[1])
    denoised, rank = singular_value_threshold(donors, energy=energy)
    weights = ridge_weights(treated[:pre_periods], denoised[:pre_periods], ridge=ridge)
    synthetic = denoised @ weights
    fit = SyntheticControlFit(
        treated_name=treated_name,
        donor_names=names,
        weights=weights,
        pre_periods=pre_periods,
        post_periods=len(treated) - pre_periods,
        observed=treated,
        synthetic=synthetic,
        method="robust",
    )
    return fit
