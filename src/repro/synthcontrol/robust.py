"""Robust synthetic control (Amjad, Shah & Shen, JMLR 2018).

The method the paper's Table 1 uses.  Two stages:

1. **De-noising**: stack the donor panel into a matrix, impute missing
   cells with the column mean, take its SVD, and keep only the
   singular values above a threshold — recovering a low-rank estimate of
   the latent signal under noise and missingness.
2. **Regression**: fit the treated unit's pre-period on the *denoised*
   donor pre-matrix with ridge-regularized least squares (weights are
   unconstrained — no simplex restriction).

The counterfactual is the denoised donor panel projected through the
learned weights.  Compared to the classic method it tolerates noisy and
partially missing donor series, which is why the paper picks it for
M-Lab's irregular user-initiated sampling.

The de-noising is factored so its expensive part — the SVD of the
filled donor matrix — can be computed once and reused:
:func:`factor_donor_matrix` captures imputation and spectrum,
:func:`denoise_from_factorization` thresholds it, and
:func:`denoise_without_column` produces the leave-one-donor-out
denoised panel the placebo engine needs by *downdating* the shared
factorization (an SVD of the small ``k x (J-1)`` core instead of the
full ``T x (J-1)`` matrix).  :class:`DenoiseCache` memoises both within
a study run.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DonorPoolError, EstimationError
from repro.synthcontrol.classic import _donor_names, _validate_panel
from repro.synthcontrol.result import SyntheticControlFit

# Absolute slack when comparing the cumulative spectrum against the
# energy target: cumulative shares are ratios of floating-point sums,
# so a mathematically exact hit can land a few ulps *below* the target
# and would otherwise keep one singular value too many.
_ENERGY_TOL = 1e-12


@dataclass(frozen=True)
class DonorFactorization:
    """The reusable part of donor-matrix de-noising.

    Everything here is energy-independent: the mean-imputed matrix, the
    imputation statistics, and the thin SVD.  Thresholding at any
    ``energy`` — with or without a donor column — derives from this
    without touching the raw panel again.

    Attributes
    ----------
    filled:
        The donor matrix with NaN cells replaced by column means.
    col_means:
        Per-column imputation means (length J).
    finite_counts:
        Per-column count of observed (finite) cells (length J).
    u, s, vt:
        Thin SVD of :attr:`filled` (``filled = u @ diag(s) @ vt``).
    """

    filled: np.ndarray = field(repr=False)
    col_means: np.ndarray = field(repr=False)
    finite_counts: np.ndarray = field(repr=False)
    u: np.ndarray = field(repr=False)
    s: np.ndarray = field(repr=False)
    vt: np.ndarray = field(repr=False)

    @property
    def n_times(self) -> int:
        """Number of panel rows (time points)."""
        return self.filled.shape[0]

    @property
    def n_donors(self) -> int:
        """Number of panel columns (donors)."""
        return self.filled.shape[1]


def _validate_donor_matrix(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[1] == 0:
        raise DonorPoolError(
            f"donor matrix must be 2-D with >= 1 column, got shape {matrix.shape}"
        )
    return matrix


def _impute_columns(
    matrix: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mean-impute a donor matrix: ``(filled, col_means, finite_counts)``.

    Bit-identical to the historical per-column Python loop.  Fully
    observed columns reduce in one vectorized pass: summing each row of
    the C-contiguous transpose applies numpy's pairwise summation to the
    same contiguous values, in the same order, as ``col[ok].mean()`` did
    per column.  Columns *with* missing cells keep a gather per column —
    the masked gather is exactly the array the old loop averaged, and
    any shortcut that sums zeros in place of the NaNs would change the
    pairwise rounding.
    """
    filled = matrix.copy()
    mask = np.isfinite(filled)
    finite_counts = mask.sum(axis=0)
    if not finite_counts.all():
        j_bad = int(np.flatnonzero(finite_counts == 0)[0])
        raise DonorPoolError(f"donor column {j_bad} is entirely missing")
    n_times = filled.shape[0]
    ft = np.ascontiguousarray(filled.T)
    col_means = np.empty(filled.shape[1])
    complete = finite_counts == n_times
    if complete.any():
        col_means[complete] = ft[complete].sum(axis=1) / n_times
    for j in np.flatnonzero(~complete):
        col_means[j] = ft[j][mask[:, j]].mean()
    if not complete.all():
        miss_r, miss_c = np.nonzero(~mask)
        filled[miss_r, miss_c] = col_means[miss_c]
    return filled, col_means, finite_counts


def factor_donor_matrix(matrix: np.ndarray) -> DonorFactorization:
    """Impute and factor a donor matrix once, for repeated de-noising."""
    matrix = _validate_donor_matrix(matrix)
    filled, col_means, finite_counts = _impute_columns(matrix)
    u, s, vt = np.linalg.svd(filled, full_matrices=False)
    return DonorFactorization(
        filled=filled,
        col_means=col_means,
        finite_counts=finite_counts,
        u=u,
        s=s,
        vt=vt,
    )


def factor_donor_matrices(
    matrices: Sequence[np.ndarray],
) -> list[DonorFactorization]:
    """Factor many donor matrices with one stacked SVD per shape group.

    The cross-unit half of the batched fit engine: donor matrices from
    different treated units usually share one ``(T, J)`` shape (every
    unit screens the same donor pool), so their mean-imputed panels
    stack into a ``(G, T, J)`` array that a single
    :func:`numpy.linalg.svd` call decomposes in one gufunc sweep —
    LAPACK runs once per matrix either way, on the same bytes, so each
    returned factorization is bit-identical to
    :func:`factor_donor_matrix` on the same matrix.  Mixed shapes are
    grouped; a group of one degenerates to the single-matrix call.
    """
    mats = [_validate_donor_matrix(m) for m in matrices]
    imputed = [_impute_columns(m) for m in mats]
    facts: list[DonorFactorization | None] = [None] * len(mats)
    groups: dict[tuple[int, int], list[int]] = {}
    for i, m in enumerate(mats):
        groups.setdefault(m.shape, []).append(i)
    for shape, members in groups.items():
        stack = np.empty((len(members), *shape))
        for pos, i in enumerate(members):
            stack[pos] = imputed[i][0]
        u, s, vt = np.linalg.svd(stack, full_matrices=False)
        for pos, i in enumerate(members):
            filled, col_means, finite_counts = imputed[i]
            facts[i] = DonorFactorization(
                filled=filled,
                col_means=col_means,
                finite_counts=finite_counts,
                u=u[pos],
                s=s[pos],
                vt=vt[pos],
            )
    return [fact for fact in facts if fact is not None]


def _rank_for_energy(s: np.ndarray, energy: float, min_rank: int) -> int:
    """Smallest rank whose squared singular values reach *energy*.

    An exact hit keeps exactly that many values: the comparison allows
    :data:`_ENERGY_TOL` of float dust so ``cum[r-1] == energy`` up to
    rounding never keeps an extra component.
    """
    cum = np.cumsum(s**2) / np.sum(s**2)
    rank = int(np.searchsorted(cum, energy - _ENERGY_TOL, side="left")) + 1
    rank = max(rank, min_rank)
    return min(rank, len(s))


def _rescale_denoised(
    denoised: np.ndarray, col_means: np.ndarray, p_obs: float
) -> np.ndarray:
    """Undo the spectral shrinkage mean-filling introduces (Amjad et al. §3)."""
    if 0 < p_obs < 1:
        return col_means + (denoised - col_means) / p_obs
    return denoised


def _check_energy(energy: float) -> None:
    if not 0 < energy <= 1:
        raise EstimationError(f"energy must be in (0, 1], got {energy}")


def denoise_from_factorization(
    fact: DonorFactorization, energy: float = 0.99, min_rank: int = 1
) -> tuple[np.ndarray, int]:
    """Hard-threshold a pre-computed factorization at *energy*.

    Equivalent to :func:`singular_value_threshold` on the same matrix,
    without repeating imputation or the SVD.
    """
    _check_energy(energy)
    if fact.s.sum() == 0:
        return fact.filled, 0
    rank = _rank_for_energy(fact.s, energy, min_rank)
    denoised = (fact.u[:, :rank] * fact.s[:rank]) @ fact.vt[:rank]
    p_obs = float(fact.finite_counts.sum()) / fact.filled.size
    return _rescale_denoised(denoised, fact.col_means, p_obs), rank


def denoise_without_column(
    fact: DonorFactorization, col: int, energy: float = 0.99, min_rank: int = 1
) -> tuple[np.ndarray, int]:
    """De-noise the donor matrix with column *col* deleted, by downdating.

    Deleting a column of ``A = U S Vt`` leaves ``A' = U (S Vt')`` with
    ``Vt'`` the corresponding column of ``Vt`` removed, so the SVD of
    ``A'`` follows from the SVD of the small ``k x (J-1)`` core
    ``S Vt'`` — the shared ``T x J`` SVD is never recomputed.  The
    placebo loop calls this once per donor instead of running a full
    de-noise per leave-one-out matrix.
    """
    _check_energy(energy)
    j = fact.n_donors
    if not 0 <= col < j:
        raise DonorPoolError(f"column {col} out of range for {j} donors")
    if j < 2:
        raise DonorPoolError("cannot delete the only donor column")
    col_means = np.delete(fact.col_means, col)
    if fact.s.sum() == 0:
        return np.delete(fact.filled, col, axis=1), 0
    core = fact.s[:, None] * np.delete(fact.vt, col, axis=1)
    u_core, s_sub, vt_sub = np.linalg.svd(core, full_matrices=False)
    if s_sub.sum() == 0:
        return np.delete(fact.filled, col, axis=1), 0
    rank = _rank_for_energy(s_sub, energy, min_rank)
    u_sub = fact.u @ u_core[:, :rank]
    denoised = (u_sub * s_sub[:rank]) @ vt_sub[:rank]
    observed = int(fact.finite_counts.sum() - fact.finite_counts[col])
    p_obs = observed / (fact.n_times * (j - 1))
    return _rescale_denoised(denoised, col_means, p_obs), rank


def _loo_count(fact: DonorFactorization, limit: int | None) -> int:
    """How many leading leave-one-out columns the caller wants."""
    j = fact.n_donors
    if j < 2:
        raise DonorPoolError("cannot delete the only donor column")
    return j if limit is None else max(0, min(int(limit), j))


def _loo_cores(fact: DonorFactorization, n: int) -> np.ndarray:
    """The first *n* leave-one-out cores ``S Vt'`` as one ``(n, k, J-1)`` fill.

    One fancy-index gather replaces the historical
    ``np.stack([np.delete(svt, col, axis=1) ...])`` loop — the same
    values land in the same positions without J Python-level copies.
    """
    svt = fact.s[:, None] * fact.vt
    j = fact.n_donors
    cols = np.arange(n)[:, None]
    keep = np.arange(j - 1)[None, :]
    # Row c keeps columns [0..c-1, c+1..J-1]: shift indices >= c up by one.
    return np.ascontiguousarray(svt[:, keep + (keep >= cols)].swapaxes(0, 1))


def _loo_finalize(
    fact: DonorFactorization,
    u_cores: np.ndarray,
    s_subs: np.ndarray,
    vt_subs: np.ndarray,
    n: int,
    energy: float,
    min_rank: int,
) -> tuple[tuple[np.ndarray, int], ...]:
    """Threshold and rescale each decomposed core back to a denoised panel."""
    j = fact.n_donors
    total_observed = float(fact.finite_counts.sum())
    out: list[tuple[np.ndarray, int]] = []
    for col in range(n):
        col_means = np.delete(fact.col_means, col)
        s_sub = s_subs[col]
        if s_sub.sum() == 0:
            out.append((np.delete(fact.filled, col, axis=1), 0))
            continue
        rank = _rank_for_energy(s_sub, energy, min_rank)
        u_sub = fact.u @ u_cores[col][:, :rank]
        denoised = (u_sub * s_sub[:rank]) @ vt_subs[col][:rank]
        observed = int(total_observed - fact.finite_counts[col])
        p_obs = observed / (fact.n_times * (j - 1))
        out.append((_rescale_denoised(denoised, col_means, p_obs), rank))
    return tuple(out)


def denoise_leave_one_out(
    fact: DonorFactorization,
    energy: float = 0.99,
    min_rank: int = 1,
    limit: int | None = None,
) -> tuple[tuple[np.ndarray, int], ...]:
    """Every leave-one-donor-out de-noising from **one** batched SVD.

    The placebo loop needs the denoised panel with column *j* deleted,
    for every *j*.  Each of those reduces to the SVD of the small
    ``k x (J-1)`` core ``S Vt'`` (see :func:`denoise_without_column`) —
    and the cores all share one shape, so they stack into a
    ``(J, k, J-1)`` array that a single :func:`numpy.linalg.svd` call
    decomposes in one LAPACK sweep instead of J Python-level calls.
    Per-matrix results are bit-identical to the one-at-a-time downdate
    (the gufunc runs the same routine on the same bytes), so serial and
    fanned-out placebo loops keep agreeing exactly.

    Returns ``(denoised, rank)`` per column, for the first *limit*
    columns (all of them when ``None``).
    """
    _check_energy(energy)
    n = _loo_count(fact, limit)
    if n == 0:
        return ()
    if fact.s.sum() == 0:
        return tuple(
            (np.delete(fact.filled, col, axis=1), 0) for col in range(n)
        )
    cores = _loo_cores(fact, n)
    u_cores, s_subs, vt_subs = np.linalg.svd(cores, full_matrices=False)
    return _loo_finalize(fact, u_cores, s_subs, vt_subs, n, energy, min_rank)


def denoise_leave_one_out_many(
    facts: Sequence[DonorFactorization],
    energy: float = 0.99,
    min_rank: int = 1,
    limit: int | None = None,
) -> list[tuple[tuple[np.ndarray, int], ...]]:
    """Leave-one-out de-noisings for many units from one SVD per core shape.

    The cross-unit extension of :func:`denoise_leave_one_out`: units
    whose cores share a ``(k, J-1)`` shape concatenate into one tall
    stack for a single gufunc :func:`numpy.linalg.svd` call, and each
    unit's slice finalizes exactly as the within-unit batch would —
    per-unit results are bit-identical to calling
    :func:`denoise_leave_one_out` once per factorization.  Units with a
    zero spectrum take the same no-SVD fallback as the single-unit
    path.
    """
    _check_energy(energy)
    counts = [_loo_count(fact, limit) for fact in facts]
    results: list[tuple[tuple[np.ndarray, int], ...] | None] = [None] * len(facts)
    groups: dict[tuple[int, int], list[int]] = {}
    for i, (fact, n) in enumerate(zip(facts, counts)):
        if n == 0:
            results[i] = ()
        elif fact.s.sum() == 0:
            results[i] = tuple(
                (np.delete(fact.filled, col, axis=1), 0) for col in range(n)
            )
        else:
            core_shape = (len(fact.s), fact.n_donors - 1)
            groups.setdefault(core_shape, []).append(i)
    for shape, members in groups.items():
        stack = np.empty((sum(counts[i] for i in members), *shape))
        offset = 0
        for i in members:
            stack[offset : offset + counts[i]] = _loo_cores(facts[i], counts[i])
            offset += counts[i]
        u_cores, s_subs, vt_subs = np.linalg.svd(stack, full_matrices=False)
        offset = 0
        for i in members:
            n = counts[i]
            results[i] = _loo_finalize(
                facts[i],
                u_cores[offset : offset + n],
                s_subs[offset : offset + n],
                vt_subs[offset : offset + n],
                n,
                energy,
                min_rank,
            )
            offset += n
    return [r for r in results if r is not None]


def singular_value_threshold(
    matrix: np.ndarray, energy: float = 0.99, min_rank: int = 1
) -> tuple[np.ndarray, int]:
    """Hard-threshold the SVD of *matrix*, keeping *energy* of the spectrum.

    Missing (NaN) cells are filled with the column mean before the SVD —
    the standard mean-imputation step of robust synthetic control.
    Returns ``(denoised_matrix, rank_kept)``.
    """
    _check_energy(energy)
    return denoise_from_factorization(
        factor_donor_matrix(matrix), energy=energy, min_rank=min_rank
    )


class DenoiseCache:
    """Memoised de-noising within one study run.

    The treated-unit fit and every placebo refit of the same donor
    matrix share imputation and the full SVD; repeated fits at the same
    energy (robustness sweeps, ablations) reuse the denoised panel
    itself.  Keys combine the matrix shape, the requested energy, and a
    content digest, so equal-shaped but different panels never collide.
    Cached arrays are shared — treat them as read-only.
    """

    def __init__(self) -> None:
        self._factorizations: dict[tuple, DonorFactorization] = {}
        self._denoised: dict[tuple, tuple[np.ndarray, int]] = {}

    @staticmethod
    def _key(matrix: np.ndarray) -> tuple:
        matrix = np.ascontiguousarray(matrix, dtype=float)
        digest = hashlib.sha1(matrix.tobytes()).hexdigest()
        return (matrix.shape, digest)

    def factorization(self, matrix: np.ndarray) -> DonorFactorization:
        """The (cached) factorization of *matrix*."""
        key = self._key(matrix)
        fact = self._factorizations.get(key)
        if fact is None:
            fact = factor_donor_matrix(matrix)
            self._factorizations[key] = fact
        return fact

    def seed(self, matrix: np.ndarray, fact: DonorFactorization) -> None:
        """Pre-load *matrix*'s factorization (e.g. from a batched sweep).

        The batched fit engine factors every unit's donor matrix up
        front (:func:`factor_donor_matrices`); seeding the cache lets
        :func:`robust_synthetic_control` and the placebo loop reuse
        those SVDs through the existing cache lookups, no new code path.
        """
        self._factorizations[self._key(matrix)] = fact

    def denoise(
        self, matrix: np.ndarray, energy: float = 0.99, min_rank: int = 1
    ) -> tuple[np.ndarray, int]:
        """The (cached) denoised panel of *matrix* at *energy*."""
        key = (*self._key(matrix), float(energy), int(min_rank))
        hit = self._denoised.get(key)
        if hit is None:
            hit = denoise_from_factorization(
                self.factorization(matrix), energy=energy, min_rank=min_rank
            )
            self._denoised[key] = hit
        return hit


def ridge_weights(
    y_pre: np.ndarray, donors_pre: np.ndarray, ridge: float = 1e-2
) -> np.ndarray:
    """Unconstrained ridge-regularized regression weights on the pre-period."""
    finite = np.isfinite(y_pre)
    if finite.sum() < 2:
        raise EstimationError("need >= 2 finite pre-period treated values")
    a = donors_pre[finite]
    b = y_pre[finite]
    j = a.shape[1]
    lhs = a.T @ a + ridge * np.eye(j)
    rhs = a.T @ b
    try:
        return np.linalg.solve(lhs, rhs)
    except np.linalg.LinAlgError:  # pragma: no cover - ridge should prevent this
        return np.linalg.lstsq(a, b, rcond=None)[0]


def fit_from_denoised(
    treated: np.ndarray,
    denoised: np.ndarray,
    pre_periods: int,
    treated_name: str,
    donor_names: tuple[str, ...],
    ridge: float = 1e-2,
) -> SyntheticControlFit:
    """The regression stage alone, on an already-denoised donor panel."""
    weights = ridge_weights(treated[:pre_periods], denoised[:pre_periods], ridge=ridge)
    synthetic = denoised @ weights
    return SyntheticControlFit(
        treated_name=treated_name,
        donor_names=donor_names,
        weights=weights,
        pre_periods=pre_periods,
        post_periods=len(treated) - pre_periods,
        observed=treated,
        synthetic=synthetic,
        method="robust",
    )


def robust_synthetic_control(
    treated: np.ndarray,
    donors: np.ndarray,
    pre_periods: int,
    treated_name: str = "treated",
    donor_names: Sequence[str] | None = None,
    energy: float = 0.99,
    ridge: float = 1e-2,
    cache: DenoiseCache | None = None,
) -> SyntheticControlFit:
    """Fit robust synthetic control on a T x J donor panel.

    Parameters
    ----------
    treated, donors, pre_periods:
        As in :func:`~repro.synthcontrol.classic.classic_synthetic_control`;
        donor cells may be NaN.
    energy:
        Fraction of squared singular-value mass retained by the
        hard-threshold de-noising step.
    ridge:
        L2 penalty of the second-stage regression.
    cache:
        Optional :class:`DenoiseCache`; repeated fits of the same donor
        matrix within a study run then share the de-noising work.
    """
    treated, donors = _validate_panel(treated, donors, pre_periods)
    names = _donor_names(donor_names, donors.shape[1])
    if cache is not None:
        denoised, _rank = cache.denoise(donors, energy=energy)
    else:
        denoised, _rank = singular_value_threshold(donors, energy=energy)
    return fit_from_denoised(
        treated, denoised, pre_periods, treated_name, names, ridge=ridge
    )
