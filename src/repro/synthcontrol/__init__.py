"""Synthetic control: the paper's counterfactual engine for Table 1.

- :func:`classic_synthetic_control` — Abadie convex-weight method;
- :func:`robust_synthetic_control` — Amjad/Shah/Shen de-noised
  regression (what the paper uses on M-Lab data);
- :func:`build_panel` / :func:`select_donors` — panels and donor pools
  from long-format measurement frames;
- :func:`placebo_test` — RMSE-ratio placebo inference (the p column);
- :func:`diagnose` / :func:`check_assumptions` — pre-fit quality and
  assumption warnings.
"""

from repro.synthcontrol.classic import classic_synthetic_control, fit_simplex_weights
from repro.synthcontrol.diagnostics import FitDiagnostics, check_assumptions, diagnose
from repro.synthcontrol.donor import Panel, PanelUpdate, build_panel, select_donors
from repro.synthcontrol.incremental import extend_factorization, live_placebo_ratios
from repro.synthcontrol.placebo import (
    PlaceboRatios,
    placebo_rmse_ratios,
    placebo_test,
)
from repro.synthcontrol.result import PlaceboSummary, SyntheticControlFit
from repro.synthcontrol.robustness import (
    RobustnessSummary,
    in_time_placebo,
    leave_one_donor_out,
    robustness_summary,
)
from repro.synthcontrol.robust import (
    DenoiseCache,
    DonorFactorization,
    denoise_from_factorization,
    denoise_without_column,
    factor_donor_matrix,
    fit_from_denoised,
    ridge_weights,
    robust_synthetic_control,
    singular_value_threshold,
)

__all__ = [
    "DenoiseCache",
    "DonorFactorization",
    "FitDiagnostics",
    "Panel",
    "PanelUpdate",
    "PlaceboRatios",
    "PlaceboSummary",
    "RobustnessSummary",
    "SyntheticControlFit",
    "build_panel",
    "check_assumptions",
    "classic_synthetic_control",
    "denoise_from_factorization",
    "denoise_without_column",
    "diagnose",
    "extend_factorization",
    "factor_donor_matrix",
    "fit_from_denoised",
    "fit_simplex_weights",
    "in_time_placebo",
    "leave_one_donor_out",
    "live_placebo_ratios",
    "placebo_rmse_ratios",
    "placebo_test",
    "ridge_weights",
    "robust_synthetic_control",
    "robustness_summary",
    "select_donors",
    "singular_value_threshold",
]
