"""Donor-pool construction from long-format measurement panels.

The paper's conditions: donors must (a) not receive the treatment
themselves (no path through the IXP), and (b) track the treated unit's
pre-change behaviour.  :func:`build_panel` pivots a long frame into an
aligned unit x time matrix; :func:`select_donors` applies the
eligibility and correlation screens.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from functools import cached_property
from typing import Any

import numpy as np

from repro.errors import DonorPoolError
from repro.frames.frame import Frame
from repro.frames.groupby import pivot_grid
from repro.obs import span

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class Panel:
    """An aligned outcome panel: times x units.

    Attributes
    ----------
    times:
        Sorted distinct time keys (rows of :attr:`matrix`).
    units:
        Unit labels (columns of :attr:`matrix`).
    matrix:
        float matrix of outcomes; NaN marks missing cells.
    """

    times: tuple[Any, ...]
    units: tuple[str, ...]
    matrix: np.ndarray = field(repr=False)

    @cached_property
    def _unit_index(self) -> dict[str, int]:
        """unit -> column position, built once per panel.

        ``series`` is called inside every placebo refit; a linear
        ``tuple.index`` scan per call dominated at large donor counts.
        (``cached_property`` stores into ``__dict__`` directly, so it
        works on this frozen dataclass.)
        """
        return {u: j for j, u in enumerate(self.units)}

    def series(self, unit: str) -> np.ndarray:
        """The outcome series of one unit."""
        j = self._unit_index.get(unit)
        if j is None:
            raise DonorPoolError(f"unknown unit {unit!r}")
        return self.matrix[:, j]

    def without(self, units: Sequence[str]) -> "Panel":
        """Drop the named units (used to exclude treated units from donors)."""
        index = self._unit_index
        drop = {index[u] for u in units if u in index}
        keep = [j for j in range(len(self.units)) if j not in drop]
        return Panel(
            times=self.times,
            units=tuple(self.units[j] for j in keep),
            matrix=self.matrix[:, keep],
        )

    def missing_fraction(self, unit: str) -> float:
        """Share of missing cells in one unit's series."""
        s = self.series(unit)
        return float(np.mean(~np.isfinite(s)))

    @property
    def n_times(self) -> int:
        """Number of time points."""
        return len(self.times)

    @property
    def n_units(self) -> int:
        """Number of units."""
        return len(self.units)

    def apply_batch(self, update: "PanelUpdate") -> "Panel":
        """Extended panel with *update*'s cells scattered in — no rebuild.

        The old matrix block-copies into its (possibly shifted) row
        positions on the new axes, then the dirty cells land with one
        flat-index scatter — the same idiom :func:`pivot_grid` uses, on
        a batch-sized cell list instead of the whole history.  Existing
        units must keep their column positions (new units append on the
        right) and every existing time must survive into the new axis;
        cells not named by the update keep their old value, new cells
        default to NaN.
        """
        if tuple(update.units[: self.n_units]) != self.units:
            raise DonorPoolError(
                "apply_batch: existing units must keep their column positions"
            )
        n_times, n_units = len(update.times), len(update.units)
        matrix = np.full((n_times, n_units), np.nan)
        if self.n_times:
            position = {t: i for i, t in enumerate(update.times)}
            try:
                old_rows = np.array([position[t] for t in self.times], dtype=np.int64)
            except KeyError as exc:
                raise DonorPoolError(
                    f"apply_batch: time {exc.args[0]!r} missing from the new axis"
                ) from None
            matrix[old_rows[:, None], np.arange(self.n_units)] = self.matrix
        if len(update.row_index):
            flat = (
                np.asarray(update.row_index, dtype=np.int64) * n_units
                + np.asarray(update.col_index, dtype=np.int64)
            )
            matrix.flat[flat] = update.cells
        return Panel(times=tuple(update.times), units=tuple(update.units), matrix=matrix)


@dataclass(frozen=True)
class PanelUpdate:
    """One ingestion batch's worth of panel changes.

    Produced by the streaming state layer
    (:class:`repro.stream.PanelAccumulator`) and consumed by
    :meth:`Panel.apply_batch`: the full new axes plus the dirty
    ⟨time, unit⟩ cells with their recomputed aggregates.

    Attributes
    ----------
    times:
        The complete new time axis, sorted.
    units:
        The complete new unit axis; a superset of the old one with the
        old prefix unchanged.
    row_index, col_index, cells:
        Parallel arrays naming each dirty cell's position on the new
        axes and its new value.
    """

    times: tuple[Any, ...]
    units: tuple[str, ...]
    row_index: np.ndarray = field(repr=False)
    col_index: np.ndarray = field(repr=False)
    cells: np.ndarray = field(repr=False)

    @property
    def n_dirty(self) -> int:
        """Number of cells this update rewrites."""
        return len(self.cells)


def build_panel(
    data: Frame,
    unit: str,
    time: str,
    outcome: str,
    agg: str = "median",
    matrix_factory: "Callable[[tuple[int, int], tuple[Any, ...], tuple[str, ...]], np.ndarray] | None" = None,
) -> Panel:
    """Pivot long-format rows into a times x units panel.

    Multiple measurements per (unit, time) cell are reduced with *agg*
    (default median, matching the paper's median-RTT outcome).  The
    grouped-median grid from :func:`repro.frames.groupby.pivot_grid` is
    used directly, with the time sort folded into the scatter
    (``sort_index=True``) so there is no final row-gather copy.

    *matrix_factory*, when given, allocates the panel matrix:
    ``factory(shape, times, units)`` receives the final sorted time
    keys and stringified unit labels and must return a float64 array of
    ``shape`` for the pivot to scatter into.  The study pipeline passes
    a shared-memory allocator here so the panel seals directly into the
    block process-pool workers attach to.
    """
    units: tuple[str, ...] = ()

    def _grid_factory(shape, row_keys, col_keys):
        nonlocal units
        units = tuple(str(k) for k in col_keys)
        return matrix_factory(shape, tuple(row_keys), units)

    time_keys, unit_keys, grid = pivot_grid(
        data,
        index=time,
        columns=unit,
        values=outcome,
        agg=agg,
        sort_index=True,
        grid_factory=_grid_factory if matrix_factory is not None else None,
    )
    if not units:
        units = tuple(str(k) for k in unit_keys)
    return Panel(times=tuple(time_keys), units=units, matrix=grid)


def select_donors(
    panel: Panel,
    treated_unit: str,
    excluded: Sequence[str] = (),
    pre_periods: int | None = None,
    max_missing: float = 0.5,
    min_correlation: float | None = None,
    max_donors: int | None = None,
) -> list[str]:
    """Screen panel units into a donor pool for one treated unit.

    Filters, in order: the treated unit itself and *excluded* units
    (other treated units — SUTVA hygiene); units missing more than
    *max_missing* of their cells; units whose pre-period correlation
    with the treated series falls below *min_correlation*.  When
    *max_donors* is set, the best-correlated survivors are kept.
    """
    with span("donors.select", treated=treated_unit) as sp:
        treated_series = panel.series(treated_unit)
        pre = pre_periods if pre_periods is not None else panel.n_times
        banned = set(excluded) | {treated_unit}

        candidates: list[tuple[str, float]] = []
        for u in panel.units:
            if u in banned:
                continue
            if panel.missing_fraction(u) > max_missing:
                continue
            corr = _pre_correlation(treated_series[:pre], panel.series(u)[:pre])
            if min_correlation is not None and (
                not np.isfinite(corr) or corr < min_correlation
            ):
                continue
            candidates.append((u, corr))
        sp.set(candidates=panel.n_units - len(banned), selected=len(candidates))
        if not candidates:
            raise DonorPoolError(
                f"no eligible donors for {treated_unit!r} "
                f"(excluded={len(banned) - 1}, max_missing={max_missing})"
            )
        candidates.sort(
            key=lambda pair: (-(pair[1] if np.isfinite(pair[1]) else -2), pair[0])
        )
        if max_donors is not None:
            candidates = candidates[:max_donors]
            sp.set(selected=len(candidates))
        logger.debug(
            "donor screen for %s: %d selected of %d candidates",
            treated_unit,
            len(candidates),
            panel.n_units - len(banned),
        )
        return [u for u, _ in candidates]


def _pre_correlation(a: np.ndarray, b: np.ndarray) -> float:
    ok = np.isfinite(a) & np.isfinite(b)
    if ok.sum() < 3:
        return float("nan")
    av = a[ok]
    bv = b[ok]
    if av.std() == 0 or bv.std() == 0:
        return float("nan")
    return float(np.corrcoef(av, bv)[0, 1])
