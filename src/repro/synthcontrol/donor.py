"""Donor-pool construction from long-format measurement panels.

The paper's conditions: donors must (a) not receive the treatment
themselves (no path through the IXP), and (b) track the treated unit's
pre-change behaviour.  :func:`build_panel` pivots a long frame into an
aligned unit x time matrix; :func:`select_donors` applies the
eligibility and correlation screens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.errors import DonorPoolError
from repro.frames.frame import Frame
from repro.frames.groupby import pivot


@dataclass(frozen=True)
class Panel:
    """An aligned outcome panel: times x units.

    Attributes
    ----------
    times:
        Sorted distinct time keys (rows of :attr:`matrix`).
    units:
        Unit labels (columns of :attr:`matrix`).
    matrix:
        float matrix of outcomes; NaN marks missing cells.
    """

    times: tuple[Any, ...]
    units: tuple[str, ...]
    matrix: np.ndarray = field(repr=False)

    def series(self, unit: str) -> np.ndarray:
        """The outcome series of one unit."""
        try:
            j = self.units.index(unit)
        except ValueError:
            raise DonorPoolError(f"unknown unit {unit!r}") from None
        return self.matrix[:, j]

    def without(self, units: Sequence[str]) -> "Panel":
        """Drop the named units (used to exclude treated units from donors)."""
        drop = set(units)
        keep = [j for j, u in enumerate(self.units) if u not in drop]
        return Panel(
            times=self.times,
            units=tuple(self.units[j] for j in keep),
            matrix=self.matrix[:, keep],
        )

    def missing_fraction(self, unit: str) -> float:
        """Share of missing cells in one unit's series."""
        s = self.series(unit)
        return float(np.mean(~np.isfinite(s)))

    @property
    def n_times(self) -> int:
        """Number of time points."""
        return len(self.times)

    @property
    def n_units(self) -> int:
        """Number of units."""
        return len(self.units)


def build_panel(
    data: Frame,
    unit: str,
    time: str,
    outcome: str,
    agg: str = "median",
) -> Panel:
    """Pivot long-format rows into a times x units panel.

    Multiple measurements per (unit, time) cell are reduced with *agg*
    (default median, matching the paper's median-RTT outcome).
    """
    wide, unit_keys = pivot(data, index=time, columns=unit, values=outcome, agg=agg)
    ordered = wide.sort_by(time)
    times = tuple(ordered.column(time).to_list())
    units = tuple(str(k) for k in unit_keys)
    cols = [ordered.numeric(str(k)) for k in unit_keys]
    matrix = np.column_stack(cols) if cols else np.empty((len(times), 0))
    return Panel(times=times, units=units, matrix=matrix)


def select_donors(
    panel: Panel,
    treated_unit: str,
    excluded: Sequence[str] = (),
    pre_periods: int | None = None,
    max_missing: float = 0.5,
    min_correlation: float | None = None,
    max_donors: int | None = None,
) -> list[str]:
    """Screen panel units into a donor pool for one treated unit.

    Filters, in order: the treated unit itself and *excluded* units
    (other treated units — SUTVA hygiene); units missing more than
    *max_missing* of their cells; units whose pre-period correlation
    with the treated series falls below *min_correlation*.  When
    *max_donors* is set, the best-correlated survivors are kept.
    """
    treated_series = panel.series(treated_unit)
    pre = pre_periods if pre_periods is not None else panel.n_times
    banned = set(excluded) | {treated_unit}

    candidates: list[tuple[str, float]] = []
    for u in panel.units:
        if u in banned:
            continue
        if panel.missing_fraction(u) > max_missing:
            continue
        corr = _pre_correlation(treated_series[:pre], panel.series(u)[:pre])
        if min_correlation is not None and (
            not np.isfinite(corr) or corr < min_correlation
        ):
            continue
        candidates.append((u, corr))
    if not candidates:
        raise DonorPoolError(
            f"no eligible donors for {treated_unit!r} "
            f"(excluded={len(banned) - 1}, max_missing={max_missing})"
        )
    candidates.sort(key=lambda pair: (-(pair[1] if np.isfinite(pair[1]) else -2), pair[0]))
    if max_donors is not None:
        candidates = candidates[:max_donors]
    return [u for u, _ in candidates]


def _pre_correlation(a: np.ndarray, b: np.ndarray) -> float:
    ok = np.isfinite(a) & np.isfinite(b)
    if ok.sum() < 3:
        return float("nan")
    av = a[ok]
    bv = b[ok]
    if av.std() == 0 or bv.std() == 0:
        return float("nan")
    return float(np.corrcoef(av, bv)[0, 1])
