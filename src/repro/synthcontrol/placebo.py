"""Placebo inference for synthetic control (Table 1's p column).

Each donor is refit as a pseudo-treated unit at the same intervention
time.  The treated unit's post/pre RMSE ratio is then ranked against the
placebo ratios: if paths that did *not* receive the treatment diverge
from their synthetic controls as much as the treated path did, the
observed shift "could arise from model noise alone".
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import DonorPoolError
from repro.estimators.bootstrap import permutation_p_value
from repro.synthcontrol.classic import classic_synthetic_control
from repro.synthcontrol.result import PlaceboSummary, SyntheticControlFit
from repro.synthcontrol.robust import robust_synthetic_control

FitFunction = Callable[..., SyntheticControlFit]


def _fitter(method: str) -> FitFunction:
    if method == "robust":
        return robust_synthetic_control
    if method == "classic":
        return classic_synthetic_control
    raise DonorPoolError(f"unknown synthetic-control method {method!r}")


def placebo_rmse_ratios(
    donors: np.ndarray,
    pre_periods: int,
    donor_names: Sequence[str],
    method: str = "robust",
    max_placebos: int | None = None,
    min_pre_rmse: float = 1e-9,
    **fit_kwargs: object,
) -> list[tuple[str, float]]:
    """RMSE ratios from treating each donor as a pseudo-treated unit.

    Returns ``(donor_name, rmse_ratio)`` pairs; donors whose placebo fit
    fails (degenerate pre-fit) are skipped.  *max_placebos* caps the
    count (taking the first k donors, which are correlation-ranked by
    :func:`~repro.synthcontrol.donor.select_donors`).
    """
    fit = _fitter(method)
    j = donors.shape[1]
    limit = j if max_placebos is None else min(max_placebos, j)
    out: list[tuple[str, float]] = []
    for col in range(limit):
        pseudo = donors[:, col]
        rest = np.delete(donors, col, axis=1)
        rest_names = [donor_names[i] for i in range(j) if i != col]
        if rest.shape[1] == 0:
            continue
        try:
            placebo_fit = fit(
                pseudo,
                rest,
                pre_periods,
                treated_name=f"placebo:{donor_names[col]}",
                donor_names=rest_names,
                **fit_kwargs,
            )
        except Exception:
            continue
        ratio = placebo_fit.rmse_ratio
        if placebo_fit.pre_rmse < min_pre_rmse or not np.isfinite(ratio):
            continue
        out.append((donor_names[col], float(ratio)))
    return out


def placebo_test(
    treated: np.ndarray,
    donors: np.ndarray,
    pre_periods: int,
    treated_name: str = "treated",
    donor_names: Sequence[str] | None = None,
    method: str = "robust",
    max_placebos: int | None = None,
    **fit_kwargs: object,
) -> PlaceboSummary:
    """Fit the treated unit and compute its placebo-based p-value.

    The p-value is the add-one share of placebo RMSE ratios greater than
    or equal to the treated unit's ratio (``alternative="greater"``):
    small p means few untreated paths diverged as sharply.
    """
    if donor_names is None:
        donor_names = [f"donor_{i}" for i in range(donors.shape[1])]
    fit = _fitter(method)(
        treated,
        donors,
        pre_periods,
        treated_name=treated_name,
        donor_names=donor_names,
        **fit_kwargs,
    )
    ratios = placebo_rmse_ratios(
        donors,
        pre_periods,
        list(donor_names),
        method=method,
        max_placebos=max_placebos,
        **fit_kwargs,
    )
    if not ratios:
        raise DonorPoolError(
            f"no placebo fits succeeded for {treated_name!r}; donor pool too small"
        )
    ratio_values = np.asarray([r for _, r in ratios])
    p = permutation_p_value(fit.rmse_ratio, ratio_values, alternative="greater")
    return PlaceboSummary(
        fit=fit,
        placebo_rmse_ratios=tuple(float(r) for _, r in ratios),
        p_value=float(p),
    )
