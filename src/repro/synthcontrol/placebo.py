"""Placebo inference for synthetic control (Table 1's p column).

Each donor is refit as a pseudo-treated unit at the same intervention
time.  The treated unit's post/pre RMSE ratio is then ranked against the
placebo ratios: if paths that did *not* receive the treatment diverge
from their synthetic controls as much as the treated path did, the
observed shift "could arise from model noise alone".

Two performance properties matter at study scale:

- placebo refits are independent, so :func:`placebo_rmse_ratios` fans
  them out over an executor backend (``n_jobs``) with order-stable,
  backend-independent results;
- for the robust method, every leave-one-donor-out refit shares the
  donor matrix's imputation and SVD through
  :func:`~repro.synthcontrol.robust.denoise_without_column`, so the
  expensive factorization happens once per unit, not once per donor.
"""

from __future__ import annotations

import functools
import logging
import time
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.pipeline.executor import RetryPolicy

import numpy as np

from repro.chaos.runtime import fault_point
from repro.errors import DonorPoolError, EstimationError
from repro.estimators.bootstrap import permutation_p_value
from repro.obs import get_metrics, span
from repro.synthcontrol.classic import classic_synthetic_control
from repro.synthcontrol.result import PlaceboSummary, SyntheticControlFit
from repro.synthcontrol.robust import (
    DenoiseCache,
    DonorFactorization,
    denoise_leave_one_out,
    denoise_without_column,
    factor_donor_matrix,
    fit_from_denoised,
    robust_synthetic_control,
)

logger = logging.getLogger(__name__)

FitFunction = Callable[..., SyntheticControlFit]


def _fitter(method: str) -> FitFunction:
    if method == "robust":
        return robust_synthetic_control
    if method == "classic":
        return classic_synthetic_control
    raise DonorPoolError(f"unknown synthetic-control method {method!r}")


def _robust_params(**fit_kwargs: object) -> tuple[float, float]:
    """Split robust-method fit kwargs, rejecting unknown names loudly."""

    def accept(energy: float = 0.99, ridge: float = 1e-2) -> tuple[float, float]:
        return float(energy), float(ridge)

    return accept(**fit_kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class PlaceboRatios(Sequence):
    """Placebo RMSE ratios plus an account of the refits that failed.

    Behaves as a sequence of ``(donor_name, rmse_ratio)`` pairs (the
    successful refits, in donor order), so older callers that iterate
    or take ``len`` keep working; :attr:`skipped` records each failed
    placebo as ``(donor_name, reason)``.
    """

    ratios: tuple[tuple[str, float], ...]
    skipped: tuple[tuple[str, str], ...] = ()

    def __len__(self) -> int:
        return len(self.ratios)

    def __getitem__(self, index):  # type: ignore[override]
        return self.ratios[index]

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(self.ratios)

    @property
    def n_skipped(self) -> int:
        """How many placebo refits failed."""
        return len(self.skipped)

    @property
    def values(self) -> tuple[float, ...]:
        """The ratios alone, donor order preserved."""
        return tuple(r for _, r in self.ratios)


@dataclass(frozen=True)
class _PlaceboContext:
    """Everything one placebo refit needs (picklable for process pools)."""

    donors: np.ndarray
    donor_names: tuple[str, ...]
    pre_periods: int
    min_pre_rmse: float
    method: str
    fit_kwargs: dict
    fact: DonorFactorization | None
    energy: float
    ridge: float
    loo: tuple[tuple[np.ndarray, int], ...] | None = None


def _placebo_refit(ctx: _PlaceboContext, col: int) -> tuple[str, float | None, str]:
    """Refit donor *col* as pseudo-treated: ``(name, ratio | None, reason)``.

    Only estimation failures (:class:`DonorPoolError` /
    :class:`EstimationError`) are converted into a skip record;
    programming errors propagate to the caller.  Each refit records one
    ``placebo`` span (``ok`` attribute marks survivors) and bumps the
    placebo counters, whichever process it runs in.
    """
    with span("placebo", donor=ctx.donor_names[col]) as sp:
        fault_point("placebo.refit", key=ctx.donor_names[col])
        name, ratio, reason = _placebo_refit_inner(ctx, col)
        sp.set(ok=ratio is not None)
        metrics = get_metrics()
        metrics.counter("placebos_total", "placebo refits attempted").inc()
        if ratio is None:
            sp.set(reason=reason)
            metrics.counter(
                "placebos_skipped_total", "placebo refits that failed estimation"
            ).inc()
            logger.debug("placebo %s skipped: %s", name, reason)
    return name, ratio, reason


def _placebo_refit_inner(
    ctx: _PlaceboContext, col: int
) -> tuple[str, float | None, str]:
    name = ctx.donor_names[col]
    pseudo = ctx.donors[:, col]
    try:
        if ctx.method == "robust":
            assert ctx.fact is not None
            if ctx.loo is not None:
                denoised, _rank = ctx.loo[col]
            else:
                denoised, _rank = denoise_without_column(
                    ctx.fact, col, energy=ctx.energy
                )
            rest_names = tuple(
                n for i, n in enumerate(ctx.donor_names) if i != col
            )
            placebo_fit = fit_from_denoised(
                pseudo,
                denoised,
                ctx.pre_periods,
                f"placebo:{name}",
                rest_names,
                ridge=ctx.ridge,
            )
        else:
            rest = np.delete(ctx.donors, col, axis=1)
            rest_names = tuple(
                n for i, n in enumerate(ctx.donor_names) if i != col
            )
            placebo_fit = classic_synthetic_control(
                pseudo,
                rest,
                ctx.pre_periods,
                treated_name=f"placebo:{name}",
                donor_names=rest_names,
                **ctx.fit_kwargs,
            )
    except (DonorPoolError, EstimationError) as exc:
        return name, None, str(exc) or type(exc).__name__
    if placebo_fit.pre_rmse < ctx.min_pre_rmse:
        return name, None, (
            f"degenerate pre-fit (pre_rmse={placebo_fit.pre_rmse:.3g} "
            f"< {ctx.min_pre_rmse:.3g})"
        )
    ratio = placebo_fit.rmse_ratio
    if not np.isfinite(ratio):
        return name, None, "non-finite RMSE ratio"
    return name, float(ratio), ""


def placebo_rmse_ratios(
    donors: np.ndarray,
    pre_periods: int,
    donor_names: Sequence[str],
    method: str = "robust",
    max_placebos: int | None = None,
    min_pre_rmse: float = 1e-9,
    n_jobs: int | None = 1,
    cache: DenoiseCache | None = None,
    retry: "RetryPolicy | None" = None,
    loo: tuple[tuple[np.ndarray, int], ...] | None = None,
    **fit_kwargs: object,
) -> PlaceboRatios:
    """RMSE ratios from treating each donor as a pseudo-treated unit.

    Returns a :class:`PlaceboRatios`: a sequence of ``(donor_name,
    rmse_ratio)`` pairs whose :attr:`~PlaceboRatios.skipped` attribute
    names each donor whose refit failed and why.  Only estimation
    failures are skipped — unexpected exceptions propagate.
    *max_placebos* caps the count (taking the first k donors, which are
    correlation-ranked by :func:`~repro.synthcontrol.donor.select_donors`).
    *n_jobs* fans refits out over a process pool (results are identical
    to the serial run, in donor order).  For the robust method, the
    donor matrix is imputed and factored once — optionally through a
    shared *cache* — and every refit reuses that SVD.  A caller that
    already holds the leave-one-out de-noisings (the cross-unit batched
    fit engine) passes them as *loo* — bit-identical values skip the
    per-study SVD entirely; ignored for the classic method.
    """
    _fitter(method)  # reject unknown methods before any work
    donors = np.asarray(donors, dtype=float)
    if donors.ndim != 2:
        raise DonorPoolError(
            f"donor matrix must be 2-D (T x J), got shape {donors.shape}"
        )
    j = donors.shape[1]
    limit = j if max_placebos is None else min(max_placebos, j)

    fact: DonorFactorization | None = None
    energy, ridge = 0.99, 1e-2
    classic_kwargs: dict = dict(fit_kwargs)
    if method == "robust":
        energy, ridge = _robust_params(**fit_kwargs)
        classic_kwargs = {}
        if limit > 0:
            fact = (
                cache.factorization(donors)
                if cache is not None
                else factor_donor_matrix(donors)
            )

    from repro.pipeline.executor import get_executor, resolve_n_jobs

    # Serial refits batch every leave-one-out SVD into a single 3-D
    # numpy.linalg.svd call (bit-identical to the per-column downdate,
    # one LAPACK sweep instead of J).  Fanned-out refits keep the
    # per-column path: shipping the full denoised stack to each worker
    # would cost more in pickling than the batched SVD saves.  A
    # caller-provided batch (already computed, possibly shared-memory
    # backed) is used as-is on either path.
    if fact is None or limit <= 1:
        loo = None
    elif loo is not None:
        loo = tuple(loo[:limit])
    elif resolve_n_jobs(n_jobs) == 1:
        loo = denoise_leave_one_out(fact, energy=energy, limit=limit)
    else:
        loo = None

    ctx = _PlaceboContext(
        donors=donors,
        donor_names=tuple(donor_names),
        pre_periods=pre_periods,
        min_pre_rmse=min_pre_rmse,
        method=method,
        fit_kwargs=classic_kwargs,
        fact=fact,
        energy=energy,
        ridge=ridge,
        loo=loo,
    )

    with get_executor(n_jobs, retry=retry) as executor:
        outcomes = executor.map(
            functools.partial(_placebo_refit, ctx), range(limit)
        )

    ratios: list[tuple[str, float]] = []
    skipped: list[tuple[str, str]] = []
    for name, ratio, reason in outcomes:
        if ratio is None:
            skipped.append((name, reason))
        else:
            ratios.append((name, ratio))
    return PlaceboRatios(ratios=tuple(ratios), skipped=tuple(skipped))


def placebo_test(
    treated: np.ndarray,
    donors: np.ndarray,
    pre_periods: int,
    treated_name: str = "treated",
    donor_names: Sequence[str] | None = None,
    method: str = "robust",
    max_placebos: int | None = None,
    min_pre_rmse: float = 1e-9,
    n_jobs: int | None = 1,
    cache: DenoiseCache | None = None,
    retry: "RetryPolicy | None" = None,
    loo: tuple[tuple[np.ndarray, int], ...] | None = None,
    **fit_kwargs: object,
) -> PlaceboSummary:
    """Fit the treated unit and compute its placebo-based p-value.

    The p-value is the add-one share of placebo RMSE ratios greater than
    or equal to the treated unit's ratio (``alternative="greater"``):
    small p means few untreated paths diverged as sharply.  *n_jobs*
    parallelises the placebo refits; *cache* (created per call when
    omitted) lets the treated fit and every placebo share the donor
    matrix's de-noising work; *loo*, when the caller pre-computed the
    leave-one-out batch (the cross-unit fit engine), removes the last
    per-unit SVD from this call entirely.
    """
    if donor_names is None:
        donor_names = [f"donor_{i}" for i in range(donors.shape[1])]
    fitter = _fitter(method)
    t_fit = time.perf_counter()
    with span("fit", treated=treated_name, method=method):
        if method == "robust":
            if cache is None:
                cache = DenoiseCache()
            fit = fitter(
                treated,
                donors,
                pre_periods,
                treated_name=treated_name,
                donor_names=donor_names,
                cache=cache,
                **fit_kwargs,
            )
        else:
            fit = fitter(
                treated,
                donors,
                pre_periods,
                treated_name=treated_name,
                donor_names=donor_names,
                **fit_kwargs,
            )
    get_metrics().histogram(
        "fit_seconds", help="wall-clock seconds per treated-unit fit"
    ).observe(time.perf_counter() - t_fit)
    ratios = placebo_rmse_ratios(
        donors,
        pre_periods,
        list(donor_names),
        method=method,
        max_placebos=max_placebos,
        min_pre_rmse=min_pre_rmse,
        n_jobs=n_jobs,
        cache=cache,
        retry=retry,
        loo=loo,
        **fit_kwargs,
    )
    if not ratios:
        raise DonorPoolError(
            f"no placebo fits succeeded for {treated_name!r} "
            f"({ratios.n_skipped} skipped); donor pool too small"
        )
    p = permutation_p_value(
        fit.rmse_ratio, np.asarray(ratios.values), alternative="greater"
    )
    return PlaceboSummary(
        fit=fit,
        placebo_rmse_ratios=ratios.values,
        p_value=float(p),
        skipped_placebos=ratios.skipped,
    )
