"""Robustness checks for synthetic-control estimates.

The paper cites Zeitler et al. [53] on identifiability and sensitivity
of synthetic control models; these are the practical checks an analyst
runs before trusting a Table-1 row:

- :func:`leave_one_donor_out` — refit dropping each donor in turn; an
  effect that swings with a single donor rests on that donor's
  idiosyncrasies (the "no interference with donors" caveat made
  measurable);
- :func:`in_time_placebo` — backdate the treatment to a pre-period
  time; a method that "finds" effects before anything happened is
  overfitting;
- :func:`robustness_summary` — both checks plus verdicts in one object.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import DonorPoolError, EstimationError
from repro.synthcontrol.classic import classic_synthetic_control
from repro.synthcontrol.robust import robust_synthetic_control
from repro.synthcontrol.result import SyntheticControlFit


def _fitter(method: str):
    if method == "robust":
        return robust_synthetic_control
    if method == "classic":
        return classic_synthetic_control
    raise DonorPoolError(f"unknown synthetic-control method {method!r}")


def leave_one_donor_out(
    treated: np.ndarray,
    donors: np.ndarray,
    pre_periods: int,
    donor_names: Sequence[str] | None = None,
    method: str = "robust",
    **fit_kwargs: object,
) -> dict[str, float]:
    """Effect estimate with each donor excluded, keyed by donor name.

    Donors whose exclusion makes the fit fail are reported as NaN.
    """
    j = donors.shape[1]
    if j < 2:
        raise DonorPoolError("need >= 2 donors for leave-one-out")
    names = list(donor_names) if donor_names is not None else [
        f"donor_{i}" for i in range(j)
    ]
    fit = _fitter(method)
    out: dict[str, float] = {}
    for col in range(j):
        rest = np.delete(donors, col, axis=1)
        try:
            refit = fit(treated, rest, pre_periods, **fit_kwargs)
            out[names[col]] = float(refit.effect)
        except Exception:
            out[names[col]] = float("nan")
    return out


def in_time_placebo(
    treated: np.ndarray,
    donors: np.ndarray,
    pre_periods: int,
    backdate_by: int,
    method: str = "robust",
    **fit_kwargs: object,
) -> SyntheticControlFit:
    """Refit pretending treatment happened *backdate_by* periods early.

    Only pre-treatment data enters the refit (everything from the real
    treatment onward is dropped), so any 'effect' found is spurious by
    construction.
    """
    if backdate_by <= 0:
        raise EstimationError("backdate_by must be positive")
    fake_pre = pre_periods - backdate_by
    if fake_pre < 2:
        raise EstimationError(
            f"backdating by {backdate_by} leaves only {fake_pre} pre periods"
        )
    fit = _fitter(method)
    return fit(
        treated[:pre_periods],
        donors[:pre_periods],
        fake_pre,
        treated_name="in_time_placebo",
        **fit_kwargs,
    )


@dataclass(frozen=True)
class RobustnessSummary:
    """Combined robustness verdict for one synthetic-control estimate.

    Attributes
    ----------
    effect:
        The estimate under scrutiny.
    loo_effects:
        Leave-one-donor-out effect per donor.
    loo_range:
        (min, max) over the leave-one-out effects.
    max_single_donor_shift:
        Largest |change| from dropping one donor.
    placebo_effect:
        The in-time placebo's spurious 'effect' (should be ~0).
    """

    effect: float
    loo_effects: dict[str, float]
    loo_range: tuple[float, float]
    max_single_donor_shift: float
    placebo_effect: float

    def fragile(self, shift_tolerance_fraction: float = 0.5) -> bool:
        """Whether one donor moves the estimate by more than the tolerance.

        The tolerance is a fraction of |effect| (with a 0.5 ms floor so
        near-zero effects are not flagged for trivial wobbles).
        """
        floor = max(abs(self.effect) * shift_tolerance_fraction, 0.5)
        return self.max_single_donor_shift > floor

    def format_report(self) -> str:
        """Readable robustness report."""
        lo, hi = self.loo_range
        worst = max(
            self.loo_effects, key=lambda k: abs(self.loo_effects[k] - self.effect)
        )
        return "\n".join(
            [
                f"effect: {self.effect:+.3f}",
                f"leave-one-donor-out range: [{lo:+.3f}, {hi:+.3f}] "
                f"(worst single-donor shift {self.max_single_donor_shift:.3f}, "
                f"dropping {worst!r})",
                f"in-time placebo effect: {self.placebo_effect:+.3f} "
                f"({'ok: ~0' if abs(self.placebo_effect) < max(abs(self.effect), 1.0) else 'WARNING: method finds effects before treatment'})",
                f"verdict: {'FRAGILE (single-donor dependent)' if self.fragile() else 'stable across donors'}",
            ]
        )


def robustness_summary(
    treated: np.ndarray,
    donors: np.ndarray,
    pre_periods: int,
    donor_names: Sequence[str] | None = None,
    method: str = "robust",
    backdate_by: int | None = None,
    **fit_kwargs: object,
) -> RobustnessSummary:
    """Run both robustness checks for one treated unit."""
    base = _fitter(method)(treated, donors, pre_periods, **fit_kwargs)
    loo = leave_one_donor_out(
        treated, donors, pre_periods, donor_names, method, **fit_kwargs
    )
    finite = [v for v in loo.values() if np.isfinite(v)]
    if not finite:
        raise DonorPoolError("every leave-one-out refit failed")
    if backdate_by is None:
        backdate_by = max(pre_periods // 3, 1)
    placebo = in_time_placebo(
        treated, donors, pre_periods, backdate_by, method, **fit_kwargs
    )
    return RobustnessSummary(
        effect=float(base.effect),
        loo_effects=loo,
        loo_range=(float(min(finite)), float(max(finite))),
        max_single_donor_shift=float(
            max(abs(v - base.effect) for v in finite)
        ),
        placebo_effect=float(placebo.effect),
    )
