#!/usr/bin/env python3
"""Attacking your own estimate: the full robustness battery (§4).

The paper asks studies to "validate assumptions and report uncertainty
in causal estimates".  This example runs every attack the library
provides against one analysis — first a healthy adjusted estimate, then
a deliberately broken one — so the reader sees both what passing and
failing look like:

1. DoWhy-style refuters: placebo treatment, random common cause,
   subset stability, dummy outcome;
2. Cinelli-Hazlett sensitivity: how strong must an *unmeasured*
   confounder be to kill the conclusion?
3. synthetic-control robustness on a Table-1 unit: leave-one-donor-out
   and the in-time placebo.

Run:  python examples/robustness_audit.py
"""

import numpy as np

from repro.estimators import (
    naive_difference,
    refute_all,
    regression_adjustment,
    sensitivity_report,
)
from repro.pipeline import rtt_panel
from repro.scm import (
    BernoulliMechanism,
    GaussianNoise,
    LinearMechanism,
    StructuralCausalModel,
    UniformNoise,
)
from repro.studies import run_table1_experiment
from repro.synthcontrol import robustness_summary, select_donors


def confounded_world():
    return StructuralCausalModel(
        {
            "congestion": (LinearMechanism({}), GaussianNoise(1.0)),
            "rerouted": (BernoulliMechanism({"congestion": 1.4}), UniformNoise()),
            "latency": (
                LinearMechanism({"congestion": 6.0, "rerouted": 9.0}, intercept=45.0),
                GaussianNoise(2.0),
            ),
        }
    )


def adjusted(data, t, y, adj):
    return regression_adjustment(data, t, y, list(adj))


def naive(data, t, y, adj):
    return naive_difference(data, t, y)


def main() -> None:
    data = confounded_world().sample(6000, rng=0)

    print("== refutation battery, adjusted estimator (should PASS) ==")
    for check in refute_all(data, "rerouted", "latency", ["congestion"], adjusted, rng=0):
        print(f"  {check}")
    print()

    print("== the same battery, naive (confounded) estimator ==")
    for check in refute_all(data, "rerouted", "latency", [], naive, rng=0):
        print(f"  {check}")
    naive_est = naive_difference(data, "rerouted", "latency")
    adj_est = regression_adjustment(data, "rerouted", "latency", ["congestion"])
    print(
        f"  NOTE: every check passes, yet the naive estimate "
        f"({naive_est.effect:+.1f}) and the adjusted one ({adj_est.effect:+.1f}) "
        "cannot both be right."
    )
    print(
        "  refuters catch procedural instability, not confounding — a stably "
        "wrong analysis sails through. Only the DAG (and sensitivity "
        "analysis) address omitted-variable bias."
    )
    print()

    print("== a spurious 'effect' (noise treatment) — the battery catches this ==")
    rng = np.random.default_rng(7)
    spurious = data.with_column(
        "rerouted", (rng.random(data.num_rows) < 0.5).astype(float)
    )
    for check in refute_all(
        spurious, "rerouted", "latency", ["congestion"], adjusted, rng=0
    ):
        print(f"  {check}")
    print()

    print("== sensitivity to unobserved confounding ==")
    report = sensitivity_report(data, "rerouted", "latency", ["congestion"])
    print("  " + report.format_report().replace("\n", "\n  "))
    print()

    print("== synthetic-control robustness for one Table-1 unit ==")
    output = run_table1_experiment(
        n_donor_ases=15, duration_days=24, join_day=12, seed=2
    )
    panel = rtt_panel(output.measurements)
    row = output.result.rows[0]
    treated_labels = [f"AS{a}/{c}" for a, c in output.scenario.treated_units]
    first_day = int(
        output.result.assignment.first_crossing_hour[row.unit] // 24
    )
    pre = sum(1 for t in panel.times if float(t) < first_day)
    donors = select_donors(panel, row.unit, excluded=treated_labels, pre_periods=pre)
    matrix = np.column_stack([panel.series(d) for d in donors])
    summary = robustness_summary(
        panel.series(row.unit), matrix, pre, donor_names=donors
    )
    print(f"  unit: {row.unit}")
    print("  " + summary.format_report().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
