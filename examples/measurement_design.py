#!/usr/bin/env python3
"""Measurement design for causal analysis (§4, end to end).

Shows the paper's proposed workflow as executable steps:

1. pre-register a causal protocol (question + DAG + identification);
2. ask the planner which measurements buy identification — "more data"
   becomes "these variables";
3. fire §4.1 conditional activation: probe bursts around the timeline's
   IXP-join events, and compare the event coverage fixed-interval
   probing achieves with the same probe budget;
4. validate the DAG's testable implications against generated data.

Run:  python examples/measurement_design.py
"""

from repro.design import CausalProtocol, plan_measurements
from repro.graph import parse_dag, validate_against_data
from repro.mplatform import BurstPlan, ConditionalTrigger, ProbePlatform, ProbeSchedule
from repro.netsim import build_table1_scenario
from repro.scm import GaussianNoise, LinearMechanism, StructuralCausalModel


def main() -> None:
    dag = parse_dag(
        """
        dag {
            traffic_load -> ixp_member
            traffic_load -> rtt
            ixp_member -> route_via_ixp
            route_via_ixp -> rtt
            regulator_mandate -> ixp_member
        }
        """
    )
    protocol = CausalProtocol(
        question="does IXP membership cause lower RTT?",
        dag=dag,
        treatment="ixp_member",
        outcome="rtt",
    )

    print("step 1 — the protocol:")
    print(protocol.preregistration())
    print()

    print("step 2 — measurement planning:")
    for observed in ({"ixp_member", "rtt"}, {"ixp_member", "rtt", "traffic_load"}):
        plan = plan_measurements(protocol, observed)
        print(f"  observing {sorted(observed)}: {plan.summary()}")
    print()

    print("step 3 — conditional activation (§4.1):")
    scenario = build_table1_scenario(
        n_donor_ases=10, duration_days=16, join_day=8, seed=0
    )
    vantages = [(3741, "East London")]
    trigger = ConditionalTrigger(
        scenario,
        signal="ixp_join",
        plan=BurstPlan(lead_hours=12.0, trail_hours=24.0, interval_hours=1.0),
        vantages=vantages,
    )
    burst = trigger.run(rng=0)
    # Spend the same probe budget on a fixed-interval schedule instead.
    fixed_interval = scenario.duration_hours / max(len(burst), 1)
    fixed = ProbePlatform(scenario, vantages).run(
        ProbeSchedule(interval_hours=fixed_interval), rng=0
    )

    def within_day_of_join(ms):
        join = scenario.join_hours[3741]
        return sum(1 for m in ms if abs(m.time_hour - join) <= 12.0)

    print(f"  probes fired: conditional={len(burst)}, fixed-interval={len(fixed)}")
    print(
        f"  probes within ±12 h of AS3741's join: "
        f"conditional={within_day_of_join(burst)}, "
        f"fixed-interval={within_day_of_join(fixed)}"
    )
    print("  the same budget, concentrated where the natural experiment is.")
    print()

    print("step 4 — validating the DAG against data:")
    model = StructuralCausalModel(
        {
            "traffic_load": (LinearMechanism({}), GaussianNoise(1.0)),
            "regulator_mandate": (LinearMechanism({}), GaussianNoise(1.0)),
            "ixp_member": (
                LinearMechanism({"traffic_load": 0.8, "regulator_mandate": 1.0}),
                GaussianNoise(0.5),
            ),
            "route_via_ixp": (
                LinearMechanism({"ixp_member": 1.0}),
                GaussianNoise(0.3),
            ),
            "rtt": (
                LinearMechanism({"traffic_load": 5.0, "route_via_ixp": -2.0}),
                GaussianNoise(1.0),
            ),
        },
        dag=dag,
    )
    data = model.sample(5_000, rng=1)
    for result in validate_against_data(dag, data, alpha=0.001):
        print(f"  {result}")


if __name__ == "__main__":
    main()
