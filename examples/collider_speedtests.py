#!/usr/bin/env python3
"""Collider bias in user-initiated speed tests (§3's selection example).

Two demonstrations:

1. **Minimal SCM** — route changes and bad latency each make users more
   likely to run a test, while the true route-change -> latency effect
   is exactly zero.  Analysing only the tests that were run manufactures
   a spurious association out of nothing.
2. **Platform data with intent tags (§4.2)** — the simulated M-Lab
   platform tags every test with why it fired (baseline / performance /
   route_change).  Keeping only baseline-triggered tests removes the
   conditioning on the collider; pooling everything keeps the bias.

Run:  python examples/collider_speedtests.py
"""

from repro.graph import to_ascii
from repro.mplatform import measurements_frame
from repro.netsim import build_table1_scenario
from repro.studies import (
    run_collider_experiment,
    speedtest_dag,
    tag_based_correction,
)


def main() -> None:
    print("the collider, structurally:")
    print(to_ascii(speedtest_dag()))
    print()

    out = run_collider_experiment(n_samples=60_000, seed=0)
    print(out.format_report())
    print()

    print("the same effect on the simulated measurement platform:")
    scenario = build_table1_scenario(
        n_donor_ases=15, duration_days=24, join_day=12, seed=0
    )
    frame = measurements_frame(scenario, rng=1)
    contrasts = tag_based_correction(frame, scenario.ixp_name)
    print(
        f"  crossing-vs-not RTT contrast, pooled tests:        "
        f"{contrasts['pooled']:+.2f} ms"
    )
    print(
        f"  contrast among baseline-triggered tests only:      "
        f"{contrasts['baseline_only']:+.2f} ms"
    )
    print(
        f"  contrast among reaction-triggered tests only:      "
        f"{contrasts['reactive_only']:+.2f} ms"
    )
    print()
    print(
        "intent tags (the paper's §4.2 proposal) let the analyst separate "
        "what the network did from why the measurement happened."
    )


if __name__ == "__main__":
    main()
