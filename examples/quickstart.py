#!/usr/bin/env python3
"""Quickstart: the causal workflow on the paper's running example.

Walks the full loop the paper recommends:

1. write the causal assumptions down as a DAG (congestion confounds
   routing and latency);
2. let the library check identifiability and pick an adjustment set;
3. generate observational data from a structural causal model;
4. contrast the naive association with the backdoor-adjusted estimate
   and the true interventional effect;
5. climb the third rung: a unit-level counterfactual.

Run:  python examples/quickstart.py
"""

from repro.design import CausalProtocol
from repro.estimators import naive_difference, regression_adjustment
from repro.graph import parse_dag
from repro.scm import (
    BernoulliMechanism,
    GaussianNoise,
    Ladder,
    LinearMechanism,
    StructuralCausalModel,
    UniformNoise,
)

TRUE_EFFECT = 12.0  # ms added by the backup route, by construction


def main() -> None:
    # 1. Structural assumptions, in the dagitty-like text format.
    dag = parse_dag(
        """
        dag {
            congestion -> route_changed
            congestion -> latency
            route_changed -> latency
        }
        """
    )

    # 2. Identification: what must be measured, and how to estimate.
    protocol = CausalProtocol(
        question="How do route changes affect user-observed latency?",
        dag=dag,
        treatment="route_changed",
        outcome="latency",
        assumptions=["route changes are comparable events (SUTVA)"],
    )
    print(protocol.preregistration())
    print()

    # 3. A world consistent with the DAG (true effect = +12 ms).
    model = StructuralCausalModel(
        {
            "congestion": (LinearMechanism({}), GaussianNoise(1.0)),
            "route_changed": (
                BernoulliMechanism({"congestion": 1.2}),
                UniformNoise(),
            ),
            "latency": (
                LinearMechanism(
                    {"congestion": 8.0, "route_changed": TRUE_EFFECT},
                    intercept=40.0,
                ),
                GaussianNoise(2.0),
            ),
        },
        dag=dag,
    )
    data = model.sample(20_000, rng=0)

    # 4. Naive vs adjusted vs truth.
    naive = naive_difference(data, "route_changed", "latency")
    adjusted = regression_adjustment(
        data, "route_changed", "latency", dag=dag
    )
    print(f"true effect of the route change:  {TRUE_EFFECT:+.2f} ms")
    print(f"naive association:                {naive.effect:+.2f} ms  (confounded)")
    print(f"backdoor-adjusted estimate:       {adjusted.effect:+.2f} ms")
    print()

    # 5. Rung three: one specific user's counterfactual.
    ladder = Ladder(model, n_samples=20_000, seed=1)
    unlucky = next(
        row for row in data.head(200).iter_rows() if row["route_changed"] == 1.0
    )
    result = ladder.counterfact(unlucky, {"route_changed": 0.0})
    print("counterfactual for one affected user:")
    print("  " + result.summary("latency"))


if __name__ == "__main__":
    main()
