#!/usr/bin/env python3
"""What data can and cannot tell you about a DAG (the PC algorithm).

The paper insists DAGs "are not learned from data alone; they require
domain insight, protocol knowledge, and operational experience".  This
example makes that statement precise:

1. generate data from a known routing world;
2. run constraint-based discovery (PC): it recovers the skeleton and
   every v-structure — and leaves the rest *provably* undirected,
   because observationally equivalent DAGs exist;
3. show the consistency check a study should run: is my hand-drawn DAG
   inside the data's equivalence class?  A wrong orientation passes no
   data test; a wrong adjacency fails one;
4. run a power-analysis teaser: what effect size could this study even
   detect with its donor pool? (§4's planning-before-probing.)

Run:  python examples/causal_discovery.py
"""

from repro.design import design_feasibility, placebo_power
from repro.graph import CausalDag, cpdag_consistent_with, pc_algorithm
from repro.scm import GaussianNoise, LinearMechanism, StructuralCausalModel


def routing_world() -> StructuralCausalModel:
    """demand -> load -> latency, route_change -> latency, load -> route_change."""
    return StructuralCausalModel(
        {
            "demand": (LinearMechanism({}), GaussianNoise(1.0)),
            "load": (LinearMechanism({"demand": 1.2}), GaussianNoise(0.4)),
            "route_change": (LinearMechanism({"load": 0.8}), GaussianNoise(0.5)),
            "latency": (
                LinearMechanism({"load": 5.0, "route_change": 3.0}),
                GaussianNoise(1.0),
            ),
        }
    )


def main() -> None:
    model = routing_world()
    data = model.sample(8000, rng=0)

    print("running PC discovery on 8000 observational samples...")
    result = pc_algorithm(data)
    print(f"({result.n_tests} conditional-independence tests)")
    print()
    print("recovered equivalence class (CPDAG):")
    print(result.cpdag.edge_summary())
    undirected = len(result.cpdag.undirected)
    print()
    if undirected:
        print(
            f"{undirected} edge(s) remain undirected: the data cannot "
            "orient them — that orientation is exactly the 'domain insight' "
            "the paper says a DAG encodes beyond what measurement provides."
        )
    print()

    print("consistency check, true DAG:")
    conflicts = cpdag_consistent_with(result, model.dag)
    print("  " + ("no conflicts — inside the equivalence class" if not conflicts
                  else "\n  ".join(conflicts)))
    print()

    wrong = CausalDag(
        [
            ("demand", "load"),
            ("load", "route_change"),
            ("route_change", "latency"),
            # wrong claims: demand hits latency directly, and the
            # load -> latency mechanism is omitted.
            ("demand", "latency"),
        ]
    )
    print("consistency check, a DAG with the wrong adjacencies:")
    for conflict in cpdag_consistent_with(result, wrong):
        print(f"  {conflict}")
    print()

    print("design feasibility for the follow-up IXP study (§4 planning):")
    for donors in (5, 20):
        feasible, why = design_feasibility(donors, alpha=0.10)
        print(f"  {donors} donors: {why}")
    estimate = placebo_power(4.0, n_donors=20, n_simulations=20, rng=1)
    print(f"  {estimate}")


if __name__ == "__main__":
    main()
